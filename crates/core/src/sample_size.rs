//! Sample-size bound for the adaptive partitioner.
//!
//! "Shen and Ding show how to determine the sample size required for a
//! guaranteed bound on accuracy by modeling the estimation as a multinomial
//! proportion estimation problem. In this work, we use a threshold of 10,000
//! samples, which guarantees with 95% confidence that the CDF is 99%
//! accurate."
//!
//! This module computes that bound: the worst-case (p = 1/2) normal
//! approximation for a simultaneous proportion estimate,
//! `n ≥ z²_{(1+c)/2} / (4·d²)`, which for confidence c = 0.95 and error
//! d = 0.01 gives n ≈ 9 604 — the paper rounds this to 10 000.

/// The paper's default threshold (10 000 samples).
pub const PAPER_SAMPLE_THRESHOLD: usize = 10_000;

/// Number of samples required so that, with probability `confidence`, every
/// estimated cumulative proportion is within `accuracy` of the truth.
///
/// # Panics
/// Panics unless `0 < confidence < 1` and `0 < accuracy < 1`.
pub fn required_samples(confidence: f64, accuracy: f64) -> usize {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    assert!(
        accuracy > 0.0 && accuracy < 1.0,
        "accuracy must be in (0, 1)"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    ((z * z) / (4.0 * accuracy * accuracy)).ceil() as usize
}

/// Quantile (inverse CDF) of the standard normal distribution, via the
/// Acklam rational approximation (absolute error below 1.15e-9 — far more
/// precision than the sampling bound needs).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-4);
        assert!((normal_quantile(0.841_344_75) - 1.0).abs() < 1e-4);
        // Symmetry.
        assert!((normal_quantile(0.25) + normal_quantile(0.75)).abs() < 1e-9);
    }

    #[test]
    fn paper_parameters_give_about_ten_thousand() {
        let n = required_samples(0.95, 0.01);
        assert!(
            (9_000..=PAPER_SAMPLE_THRESHOLD).contains(&n),
            "expected ~9604, got {n}"
        );
    }

    #[test]
    fn tighter_accuracy_needs_more_samples() {
        assert!(required_samples(0.95, 0.005) > required_samples(0.95, 0.01));
        assert!(required_samples(0.99, 0.01) > required_samples(0.95, 0.01));
        assert!(required_samples(0.9, 0.05) < 300);
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn invalid_confidence_is_rejected() {
        required_samples(1.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "accuracy must be in")]
    fn invalid_accuracy_is_rejected() {
        required_samples(0.95, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn quantile_rejects_out_of_range() {
        normal_quantile(0.0);
    }
}
