//! Equal-width histograms over the transaction-key space.
//!
//! Step (b) of the paper's Figure 2: "Sample Items into Cells" — the adaptive
//! partitioner counts sampled keys in ranges of equal width before turning
//! the counts into a cumulative distribution estimate.

use crate::key::{KeyBounds, TxnKey};

/// Default number of histogram cells used by the adaptive scheduler. Enough
/// resolution to split a 16-bit key space across 16 workers accurately while
/// keeping the per-adaptation cost trivial.
pub const DEFAULT_CELLS: usize = 256;

/// An equal-width histogram over a bounded key space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: KeyBounds,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram with `cells` equal-width cells.
    ///
    /// # Panics
    /// Panics when `cells` is zero.
    pub fn new(bounds: KeyBounds, cells: usize) -> Self {
        assert!(cells > 0, "histogram needs at least one cell");
        // Never use more cells than there are distinct keys: every cell then
        // covers at least one key, which keeps `cell_range` well defined.
        let cells = cells.min(bounds.width().min(usize::MAX as u64) as usize);
        Histogram {
            bounds,
            counts: vec![0; cells],
            total: 0,
        }
    }

    /// Create a histogram with the default cell count.
    pub fn with_default_cells(bounds: KeyBounds) -> Self {
        Self::new(bounds, DEFAULT_CELLS)
    }

    /// Build a histogram directly from a batch of samples.
    pub fn from_samples(bounds: KeyBounds, cells: usize, samples: &[TxnKey]) -> Self {
        let mut h = Self::new(bounds, cells);
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// The key bounds this histogram covers.
    pub fn bounds(&self) -> KeyBounds {
        self.bounds
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-cell counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Index of the cell a key falls into (keys outside the bounds are
    /// clamped into the first/last cell).
    pub fn cell_of(&self, key: TxnKey) -> usize {
        let key = self.bounds.clamp(key);
        let offset = key - self.bounds.min;
        let width = self.bounds.width();
        let cells = self.counts.len() as u64;
        // cell = floor(offset * cells / width), safe because offset < width.
        let idx = offset.saturating_mul(cells) / width;
        (idx as usize).min(self.counts.len() - 1)
    }

    /// Inclusive key range covered by a cell.
    pub fn cell_range(&self, cell: usize) -> (TxnKey, TxnKey) {
        assert!(cell < self.counts.len());
        let width = self.bounds.width();
        let cells = self.counts.len() as u64;
        let lo = self.bounds.min + (cell as u64 * width) / cells;
        let hi = if cell + 1 == self.counts.len() {
            self.bounds.max
        } else {
            self.bounds.min + ((cell as u64 + 1) * width) / cells - 1
        };
        (lo, hi)
    }

    /// Record one sample.
    pub fn record(&mut self, key: TxnKey) {
        self.record_many(key, 1);
    }

    /// Record `count` samples at the same key in one step — used by the
    /// adaptation plane to fold weighted STM abort telemetry into the key
    /// histogram before repartitioning.
    pub fn record_many(&mut self, key: TxnKey, count: u64) {
        let cell = self.cell_of(key);
        self.counts[cell] += count;
        self.total += count;
    }

    /// Merge another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics when bounds or cell counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        assert_eq!(self.counts.len(), other.counts.len(), "cell counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Reset all counts to zero.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// Cumulative counts: entry `i` is the number of samples in cells
    /// `0..=i`. (Step (c) of the paper's Figure 2.)
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> KeyBounds {
        KeyBounds::new(0, 99)
    }

    #[test]
    fn cells_partition_the_space() {
        let h = Histogram::new(bounds(), 10);
        // Every key maps to exactly one cell and ranges tile the space.
        let mut covered = 0u64;
        for cell in 0..10 {
            let (lo, hi) = h.cell_range(cell);
            assert!(lo <= hi);
            covered += hi - lo + 1;
            for k in lo..=hi {
                assert_eq!(h.cell_of(k), cell, "key {k}");
            }
        }
        assert_eq!(covered, bounds().width());
    }

    #[test]
    fn record_and_total() {
        let mut h = Histogram::new(bounds(), 10);
        for k in 0..100 {
            h.record(k);
        }
        assert_eq!(h.total(), 100);
        assert!(h.counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn out_of_range_keys_are_clamped() {
        let mut h = Histogram::new(KeyBounds::new(10, 19), 2);
        h.record(0);
        h.record(100);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_end_at_total() {
        let mut h = Histogram::new(bounds(), 5);
        for k in [1u64, 1, 2, 50, 99, 99, 99] {
            h.record(k);
        }
        let cum = h.cumulative();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cum.last().unwrap(), h.total());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_samples(bounds(), 4, &[1, 2, 3]);
        let b = Histogram::from_samples(bounds(), 4, &[97, 98, 99]);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.counts()[0], 3);
        assert_eq!(a.counts()[3], 3);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(KeyBounds::new(0, 9), 2);
        let b = Histogram::new(KeyBounds::new(0, 19), 2);
        a.merge(&b);
    }

    #[test]
    fn clear_resets_counts() {
        let mut h = Histogram::from_samples(bounds(), 4, &[5, 6, 7]);
        h.clear();
        assert_eq!(h.total(), 0);
        assert!(h.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn single_cell_histogram_works() {
        let mut h = Histogram::new(bounds(), 1);
        h.record(0);
        h.record(99);
        assert_eq!(h.counts(), &[2]);
        assert_eq!(h.cell_range(0), (0, 99));
    }
}
