//! Per-worker counters and load-balance metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters maintained by one worker thread.
///
/// The paper's worker "increment\[s\] the local counter of complete
/// transactions"; the driver collects these after stopping the test.
///
/// Completions are attributed by *where the task came from*, not just who
/// ran it: [`completed`](WorkerCounters::completed) counts tasks drained
/// from the worker's own queue (the load the scheduler routed to it),
/// [`stolen`](WorkerCounters::stolen) counts tasks executed after stealing
/// them from an active peer, and [`adopted`](WorkerCounters::adopted) counts
/// tasks drained from a retired worker's residual queue. Keeping the three
/// apart keeps imbalance math honest: a steal credits the *victim's* route,
/// so an idle worker that rescues a hot queue no longer inflates its own
/// apparent load right when it is the under-loaded one.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    completed: AtomicU64,
    retries: AtomicU64,
    idle_polls: AtomicU64,
    busy_wakeups: AtomicU64,
    parks: AtomicU64,
    park_nanos: AtomicU64,
    stolen: AtomicU64,
    adopted: AtomicU64,
    commit_wait_nanos: AtomicU64,
}

impl WorkerCounters {
    /// Allocate a zeroed set of counters for `workers` workers.
    pub fn for_workers(workers: usize) -> Arc<Vec<WorkerCounters>> {
        Arc::new((0..workers).map(|_| WorkerCounters::default()).collect())
    }

    /// Record a completed transaction from the worker's own queue (after
    /// however many attempts).
    pub fn record_completed(&self, attempts: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if attempts > 1 {
            self.retries.fetch_add(attempts - 1, Ordering::Relaxed);
        }
    }

    /// Record a poll that found the task queue empty.
    pub fn record_idle_poll(&self) {
        self.idle_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a wakeup that found work (one per drained batch, whatever
    /// its origin). Idle and busy wakeups are the same unit of scheduling
    /// opportunity, so their ratio is the honest utilization signal the
    /// elastic controller shrinks on — unlike per-task completions, which
    /// dwarf the rate-limited idle polls even on a mostly-idle pool.
    pub fn record_busy_wakeup(&self) {
        self.busy_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one condvar park of `nanos` measured duration: the worker
    /// gave up polling and blocked until an enqueue (or shutdown/resize)
    /// woke it. The busy-wakeup counterpart of burning backoff sleeps — a
    /// parked worker costs zero CPU. The duration matters: one park covers
    /// the idle time of dozens of backoff polls, so idle-fraction math must
    /// weight parked time, not count park events (see
    /// [`crate::drift::PoolSample::park_nanos`]).
    pub fn record_park(&self, nanos: u64) {
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.park_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record wall-clock spent blocked on group-commit durability waits
    /// while executing tasks. A distinct stall category from parks and
    /// idle polls: the worker held work the whole time, it was the log's
    /// fsync it was waiting for — folding this into generic idle time
    /// would make durable-mode latency cost unattributable.
    pub fn record_commit_wait(&self, nanos: u64) {
        self.commit_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record a task stolen from another worker's queue.
    pub fn record_steal(&self) {
        self.stolen.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a batch of tasks stolen (and executed) from an active peer's
    /// queue. Counted separately from
    /// [`WorkerCounters::record_completed`] so stolen work is never credited
    /// to the stealer's routed load.
    pub fn record_stolen_batch(&self, count: u64) {
        self.stolen.fetch_add(count, Ordering::Relaxed);
    }

    /// Record a batch of tasks adopted (and executed) from a retired
    /// worker's residual queue — the elastic pool's hand-off path.
    pub fn record_adopted_batch(&self, count: u64) {
        self.adopted.fetch_add(count, Ordering::Relaxed);
    }

    /// Completed transactions drained from the worker's own queue.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Extra attempts caused by aborts.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Polls that found no work.
    pub fn idle_polls(&self) -> u64 {
        self.idle_polls.load(Ordering::Relaxed)
    }

    /// Wakeups that found work.
    pub fn busy_wakeups(&self) -> u64 {
        self.busy_wakeups.load(Ordering::Relaxed)
    }

    /// Condvar parks (idle blocks waiting for an enqueue).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent parked.
    pub fn park_nanos(&self) -> u64 {
        self.park_nanos.load(Ordering::Relaxed)
    }

    /// Tasks executed after stealing them from an active peer's queue.
    pub fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Tasks executed after adopting them from a retired worker's queue.
    pub fn adopted(&self) -> u64 {
        self.adopted.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent blocked on group-commit durability waits.
    pub fn commit_wait_nanos(&self) -> u64 {
        self.commit_wait_nanos.load(Ordering::Relaxed)
    }

    /// Every task this worker executed, regardless of origin.
    pub fn executed(&self) -> u64 {
        self.completed() + self.stolen() + self.adopted()
    }
}

/// Load-balance summary across workers — the paper argues adaptivity by
/// showing the fixed partition leaves some workers with "50% too many"
/// transactions while the adaptive partition evens them out.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalance {
    /// Completed-transaction count per worker.
    pub per_worker: Vec<u64>,
}

impl LoadBalance {
    /// Build from per-worker completion counts.
    pub fn new(per_worker: Vec<u64>) -> Self {
        LoadBalance { per_worker }
    }

    /// Total completed transactions.
    pub fn total(&self) -> u64 {
        self.per_worker.iter().sum()
    }

    /// Mean completions per worker.
    pub fn mean(&self) -> f64 {
        if self.per_worker.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.per_worker.len() as f64
        }
    }

    /// Maximum over mean — 1.0 is perfect balance; the paper's fixed
    /// partition under the modulo key map sits around 1.5 ("50% too many").
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 1.0;
        }
        let max = self.per_worker.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Population coefficient of variation (std-dev / mean).
    pub fn coefficient_of_variation(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 || self.per_worker.is_empty() {
            return 0.0;
        }
        let var = self
            .per_worker
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.per_worker.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = WorkerCounters::default();
        c.record_completed(1);
        c.record_completed(3);
        c.record_idle_poll();
        c.record_steal();
        c.record_park(25_000_000);
        c.record_commit_wait(1_500);
        c.record_commit_wait(500);
        assert_eq!(c.completed(), 2);
        assert_eq!(c.commit_wait_nanos(), 2_000);
        assert_eq!(c.retries(), 2);
        assert_eq!(c.idle_polls(), 1);
        assert_eq!(c.stolen(), 1);
        assert_eq!(c.parks(), 1);
        assert_eq!(c.park_nanos(), 25_000_000);
    }

    #[test]
    fn batch_counters_accumulate() {
        let c = WorkerCounters::default();
        c.record_stolen_batch(4);
        c.record_stolen_batch(3);
        c.record_adopted_batch(2);
        assert_eq!(c.stolen(), 7);
        assert_eq!(c.adopted(), 2);
        assert_eq!(c.completed(), 0, "steals never credit routed load");
        assert_eq!(c.executed(), 9);
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn for_workers_allocates_one_each() {
        let counters = WorkerCounters::for_workers(5);
        assert_eq!(counters.len(), 5);
        counters[2].record_completed(1);
        assert_eq!(counters[2].completed(), 1);
        assert_eq!(counters[0].completed(), 0);
    }

    #[test]
    fn perfect_balance_has_imbalance_one() {
        let lb = LoadBalance::new(vec![100, 100, 100, 100]);
        assert_eq!(lb.total(), 400);
        assert!((lb.imbalance() - 1.0).abs() < 1e-12);
        assert!(lb.coefficient_of_variation() < 1e-12);
    }

    #[test]
    fn skewed_balance_is_detected() {
        let lb = LoadBalance::new(vec![300, 100, 100, 100]);
        assert!((lb.imbalance() - 2.0).abs() < 1e-12);
        assert!(lb.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn empty_and_zero_cases() {
        let lb = LoadBalance::new(vec![]);
        assert_eq!(lb.total(), 0);
        assert_eq!(lb.mean(), 0.0);
        assert_eq!(lb.imbalance(), 1.0);
        let zeros = LoadBalance::new(vec![0, 0]);
        assert_eq!(zeros.imbalance(), 1.0);
    }
}
