//! The key-based adaptive scheduler (the paper's contribution).
//!
//! "During the early part of program execution, the scheduler assigns
//! transactions into worker queues according to a fixed partition. At the
//! same time, it collects the distribution of key values. Once the number of
//! transactions exceeds a predetermined confidence threshold, the scheduler
//! switches to an adaptive partition in which the key ranges assigned to each
//! worker are no longer of equal width, but contain roughly equal numbers of
//! transactions."
//!
//! The adaptive partition is the PD-partition of Shen & Ding: histogram →
//! cumulative counts → piecewise-linear CDF → equal-probability buckets
//! (Figure 2 of the paper). The sampling threshold defaults to the paper's
//! 10 000 samples (95% confidence of a 99%-accurate CDF, see
//! [`crate::sample_size`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::cdf::PiecewiseCdf;
use crate::histogram::{Histogram, DEFAULT_CELLS};
use crate::key::{KeyBounds, TxnKey};
use crate::partition::KeyPartition;
use crate::sample_size::PAPER_SAMPLE_THRESHOLD;
use crate::scheduler::Scheduler;

/// Adaptive key-based scheduler.
///
/// Dispatch is wait-free in the common case: after adaptation the hot path is
/// a read-locked lookup into the current partition. During the sampling phase
/// keys are recorded into a histogram behind a mutex (bounded to the
/// configured threshold, after which the lock is no longer touched unless
/// periodic re-adaptation is enabled).
pub struct AdaptiveKeyScheduler {
    workers: usize,
    bounds: KeyBounds,
    /// Partition currently used for dispatch. Starts as the equal-width
    /// (fixed) partition and is replaced by the PD-partition once enough
    /// samples have been collected.
    partition: RwLock<KeyPartition>,
    /// Histogram of sampled keys for the next adaptation.
    samples: Mutex<Histogram>,
    /// Number of keys observed so far (cheap, lock-free check on the hot
    /// path so we stop touching the sample lock once adapted).
    observed: AtomicU64,
    /// Number of adaptations performed.
    adaptations: AtomicUsize,
    /// Samples required before the first adaptation.
    sample_threshold: u64,
    /// When `Some(n)`, keep sampling after the first adaptation and
    /// recompute the partition every additional `n` observations (extension
    /// for drifting workloads; the paper adapts once).
    re_adapt_every: Option<u64>,
    /// Number of histogram cells.
    cells: usize,
}

impl AdaptiveKeyScheduler {
    /// Create an adaptive scheduler with the paper's defaults (10 000-sample
    /// threshold, one-shot adaptation).
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(workers: usize, bounds: KeyBounds) -> Self {
        assert!(workers > 0, "need at least one worker");
        AdaptiveKeyScheduler {
            workers,
            bounds,
            partition: RwLock::new(KeyPartition::equal_width(bounds, workers)),
            samples: Mutex::new(Histogram::new(bounds, DEFAULT_CELLS)),
            observed: AtomicU64::new(0),
            adaptations: AtomicUsize::new(0),
            sample_threshold: PAPER_SAMPLE_THRESHOLD as u64,
            re_adapt_every: None,
            cells: DEFAULT_CELLS,
        }
    }

    /// Override the number of samples collected before adapting.
    pub fn with_sample_threshold(mut self, threshold: usize) -> Self {
        self.sample_threshold = threshold.max(1) as u64;
        self
    }

    /// Enable periodic re-adaptation every `n` additional observations.
    pub fn with_re_adaptation(mut self, every: u64) -> Self {
        self.re_adapt_every = Some(every.max(1));
        self
    }

    /// Override the histogram resolution.
    pub fn with_cells(mut self, cells: usize) -> Self {
        assert!(cells > 0, "need at least one histogram cell");
        self.cells = cells;
        *self.samples.lock() = Histogram::new(self.bounds, cells);
        self
    }

    /// True once the scheduler has switched from the fixed to the adaptive
    /// partition.
    pub fn is_adapted(&self) -> bool {
        self.adaptations.load(Ordering::Acquire) > 0
    }

    /// Number of adaptations performed so far.
    pub fn adaptations(&self) -> usize {
        self.adaptations.load(Ordering::Acquire)
    }

    /// Number of keys observed so far.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// The partition currently in effect.
    pub fn current_partition(&self) -> KeyPartition {
        self.partition.read().clone()
    }

    /// Record a key observation and adapt when the threshold is reached.
    fn observe(&self, key: TxnKey) {
        let seen = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        let adapted = self.is_adapted();

        if adapted && self.re_adapt_every.is_none() {
            // Steady state: sampling is finished, nothing more to record.
            return;
        }

        let threshold_reached = {
            let mut hist = self.samples.lock();
            hist.record(key);
            if !adapted {
                hist.total() >= self.sample_threshold
            } else {
                // Periodic re-adaptation (extension).
                match self.re_adapt_every {
                    Some(every) => hist.total() >= every,
                    None => false,
                }
            }
        };
        let _ = seen;

        if threshold_reached {
            self.adapt();
        }
    }

    /// Batch counterpart of [`AdaptiveKeyScheduler::observe`]: records the
    /// whole slice under (at most) one samples-lock acquisition per
    /// adaptation event instead of one per key, while reproducing the
    /// per-task protocol exactly — each key is sampled exactly once, the
    /// threshold is checked after every sample, and sampling stops at the
    /// same key it would have stopped at under per-task dispatch. The
    /// resulting partitions are therefore bit-identical between batched and
    /// per-task submission of the same key sequence.
    fn observe_batch(&self, keys: &[TxnKey]) {
        self.observed
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut index = 0;
        while index < keys.len() {
            let adapted = self.is_adapted();
            if adapted && self.re_adapt_every.is_none() {
                // Steady state: sampling is finished, nothing more to record.
                return;
            }
            let threshold_reached = {
                let mut hist = self.samples.lock();
                let mut reached = false;
                while index < keys.len() {
                    hist.record(keys[index]);
                    index += 1;
                    let total = hist.total();
                    reached = if !adapted {
                        total >= self.sample_threshold
                    } else {
                        matches!(self.re_adapt_every, Some(every) if total >= every)
                    };
                    if reached {
                        break;
                    }
                }
                reached
            };
            if !threshold_reached {
                return;
            }
            self.adapt();
        }
    }

    /// Recompute the PD-partition from the collected samples.
    fn adapt(&self) {
        let hist_snapshot = {
            let mut hist = self.samples.lock();
            if hist.total() == 0 {
                return;
            }
            let snapshot = hist.clone();
            if self.re_adapt_every.is_some() {
                hist.clear();
            }
            snapshot
        };
        let cdf = PiecewiseCdf::from_histogram(&hist_snapshot);
        let new_partition = KeyPartition::from_cdf(&cdf, self.workers);
        *self.partition.write() = new_partition;
        self.adaptations.fetch_add(1, Ordering::Release);
    }

    /// Force an adaptation now from whatever samples have been collected
    /// (used by the harness when replaying a recorded trace).
    pub fn adapt_now(&self) {
        self.adapt();
    }

    /// Pre-seed the sampler with a batch of keys (e.g. the head of a recorded
    /// trace) and adapt immediately.
    pub fn seed_with_keys(&self, keys: &[TxnKey]) {
        {
            let mut hist = self.samples.lock();
            for &k in keys {
                hist.record(k);
            }
        }
        self.observed
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.adapt();
    }
}

impl Scheduler for AdaptiveKeyScheduler {
    fn dispatch(&self, key: TxnKey) -> usize {
        self.observe(key);
        self.partition.read().worker_for(key)
    }

    /// One samples pass and one partition read-lock for the whole batch;
    /// the internal `observe_batch` reproduces the per-task sampling
    /// protocol exactly (each key sampled once, threshold checked after
    /// every sample). When an adaptation triggers *inside* a batch, the
    /// whole batch is routed with the fresh partition (per-task dispatch
    /// would route the pre-trigger keys with the old one) — the partitions
    /// themselves are identical either way, and routing a few transitional
    /// keys with the newer, better partition is benign.
    fn dispatch_batch(&self, keys: &[TxnKey], out: &mut Vec<usize>) {
        if keys.is_empty() {
            return;
        }
        self.observe_batch(keys);
        let partition = self.partition.read();
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&key| partition.worker_for(key)));
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn partition(&self) -> Option<KeyPartition> {
        Some(self.current_partition())
    }

    fn repartitions(&self) -> u64 {
        AdaptiveKeyScheduler::adaptations(self) as u64
    }

    fn describe(&self) -> String {
        format!(
            "adaptive ({} adaptations, {} keys observed) {}",
            self.adaptations(),
            self.observed(),
            self.current_partition()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use katme_workload::{DistributionKind, KeyDistribution};

    fn imbalance(counts: &[usize]) -> f64 {
        let max = *counts.iter().max().unwrap() as f64;
        let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        max / avg
    }

    #[test]
    fn behaves_like_fixed_before_threshold() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 99)).with_sample_threshold(1_000);
        assert!(!s.is_adapted());
        assert_eq!(s.dispatch(10), 0);
        assert_eq!(s.dispatch(30), 1);
        assert_eq!(s.dispatch(60), 2);
        assert_eq!(s.dispatch(90), 3);
        assert!(!s.is_adapted());
        assert_eq!(s.observed(), 4);
    }

    #[test]
    fn adapts_after_threshold_and_balances_skew() {
        let workers = 4;
        let s = AdaptiveKeyScheduler::new(workers, KeyBounds::new(0, 131_071))
            .with_sample_threshold(5_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 17);

        // Warm-up phase: feed enough keys to trigger adaptation.
        for _ in 0..6_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert!(s.is_adapted(), "scheduler should have adapted");
        assert_eq!(s.adaptations(), 1);

        // Measurement phase: the adaptive partition should spread the skewed
        // keys roughly evenly.
        let mut counts = vec![0usize; workers];
        for _ in 0..20_000 {
            counts[s.dispatch(u64::from(dist.sample_raw()))] += 1;
        }
        assert!(
            imbalance(&counts) < 1.35,
            "adaptive partition should balance exponential keys: {counts:?}"
        );

        // A fixed partition on the same stream is hopeless (nearly everything
        // lands on worker 0).
        let fixed = crate::scheduler::FixedKeyScheduler::new(workers, KeyBounds::new(0, 131_071));
        let mut fixed_counts = vec![0usize; workers];
        for _ in 0..20_000 {
            fixed_counts[Scheduler::dispatch(&fixed, u64::from(dist.sample_raw()))] += 1;
        }
        assert!(
            imbalance(&fixed_counts) > 3.0,
            "fixed partition should be badly imbalanced: {fixed_counts:?}"
        );
    }

    #[test]
    fn uniform_keys_stay_balanced_after_adaptation() {
        let workers = 8;
        let s = AdaptiveKeyScheduler::new(workers, KeyBounds::new(0, 131_071))
            .with_sample_threshold(2_000);
        let mut dist = KeyDistribution::new(DistributionKind::Uniform, 23);
        for _ in 0..3_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert!(s.is_adapted());
        let mut counts = vec![0usize; workers];
        for _ in 0..40_000 {
            counts[s.dispatch(u64::from(dist.sample_raw()))] += 1;
        }
        assert!(imbalance(&counts) < 1.25, "{counts:?}");
    }

    #[test]
    fn locality_is_preserved_after_adaptation() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999)).with_sample_threshold(500);
        for key in 0..1_000u64 {
            s.dispatch(key * 7 % 10_000);
        }
        assert!(s.is_adapted());
        // Nearby keys still route to the same worker (contiguous ranges). At
        // most one pair per internal boundary may straddle a split.
        let split_pairs = (0..9_990u64)
            .step_by(500)
            .filter(|&base| s.dispatch(base) != s.dispatch(base + 1))
            .count();
        assert!(
            split_pairs <= 3,
            "too many neighbouring keys split: {split_pairs}"
        );
    }

    #[test]
    fn seeding_with_a_trace_adapts_immediately() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 999));
        let keys: Vec<TxnKey> = (0..1_000).map(|i| i % 100).collect();
        s.seed_with_keys(&keys);
        assert!(s.is_adapted());
        // All the mass is in [0, 99], so the partition boundaries are inside
        // that range.
        let p = s.current_partition();
        assert!(p.boundaries().iter().all(|&b| b <= 110), "{p}");
    }

    #[test]
    fn re_adaptation_tracks_a_shifting_distribution() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999))
            .with_sample_threshold(1_000)
            .with_re_adaptation(2_000);
        // Phase 1: keys concentrated low.
        for i in 0..3_000u64 {
            s.dispatch(i % 1_000);
        }
        assert!(s.is_adapted());
        let first = s.adaptations();
        // Phase 2: keys concentrated high; the scheduler should re-adapt.
        for i in 0..6_000u64 {
            s.dispatch(9_000 + (i % 1_000));
        }
        assert!(s.adaptations() > first, "should have re-adapted");
        let p = s.current_partition();
        assert!(
            p.boundaries().iter().all(|&b| b >= 8_500),
            "boundaries should follow the shifted distribution: {p}"
        );
    }

    #[test]
    fn batched_and_per_task_dispatch_repartition_identically() {
        // The same key stream fed per-task and in mixed-size batches must
        // produce the same number of adaptations and bit-identical
        // partitions — batching may not skip, duplicate, or defer samples.
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 99);
        let keys: Vec<TxnKey> = (0..12_000).map(|_| u64::from(dist.sample_raw())).collect();

        let per_task =
            AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071)).with_sample_threshold(5_000);
        for &key in &keys {
            per_task.dispatch(key);
        }

        let batched =
            AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071)).with_sample_threshold(5_000);
        let mut out = Vec::new();
        // Uneven batch sizes so the threshold lands mid-batch.
        for chunk in keys.chunks(577) {
            out.clear();
            batched.dispatch_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len());
        }

        assert_eq!(per_task.adaptations(), batched.adaptations());
        assert_eq!(per_task.observed(), batched.observed());
        assert_eq!(
            per_task.current_partition().boundaries(),
            batched.current_partition().boundaries(),
            "batched sampling must reproduce the per-task partition exactly"
        );
    }

    #[test]
    fn batched_re_adaptation_matches_per_task() {
        let keys: Vec<TxnKey> = (0..9_000u64)
            .map(|i| {
                if i < 3_000 {
                    i % 1_000
                } else {
                    9_000 + (i % 1_000)
                }
            })
            .collect();
        let make = || {
            AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999))
                .with_sample_threshold(1_000)
                .with_re_adaptation(2_000)
        };
        let per_task = make();
        for &key in &keys {
            per_task.dispatch(key);
        }
        let batched = make();
        let mut out = Vec::new();
        for chunk in keys.chunks(313) {
            batched.dispatch_batch(chunk, &mut out);
        }
        assert!(per_task.adaptations() > 1, "re-adaptation must trigger");
        assert_eq!(per_task.adaptations(), batched.adaptations());
        assert_eq!(
            per_task.current_partition().boundaries(),
            batched.current_partition().boundaries()
        );
    }

    #[test]
    fn describe_reports_state() {
        let s = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 9)).with_sample_threshold(2);
        s.dispatch(1);
        s.dispatch(2);
        let d = s.describe();
        assert!(d.contains("adaptive"));
        assert!(d.contains("adaptations"));
    }
}
