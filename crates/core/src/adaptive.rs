//! The key-based adaptive scheduler (the paper's contribution), extended
//! into a continuous adaptation plane.
//!
//! "During the early part of program execution, the scheduler assigns
//! transactions into worker queues according to a fixed partition. At the
//! same time, it collects the distribution of key values. Once the number of
//! transactions exceeds a predetermined confidence threshold, the scheduler
//! switches to an adaptive partition in which the key ranges assigned to each
//! worker are no longer of equal width, but contain roughly equal numbers of
//! transactions."
//!
//! The adaptive partition is the PD-partition of Shen & Ding: histogram →
//! cumulative counts → piecewise-linear CDF → equal-probability buckets
//! (Figure 2 of the paper). The sampling threshold defaults to the paper's
//! 10 000 samples (95% confidence of a 99%-accurate CDF, see
//! [`crate::sample_size`]).
//!
//! Beyond the paper's one-shot switch, the scheduler can keep adapting:
//!
//! * **Periodic mode** ([`AdaptiveKeyScheduler::with_re_adaptation`])
//!   recomputes the partition unconditionally every *n* observations.
//! * **Continuous mode** ([`AdaptiveKeyScheduler::with_adaptation`]) divides
//!   the post-adaptation stream into epochs and repartitions only when the
//!   [`crate::drift`] triggers fire: the epoch key histogram drifted away
//!   from the partition's reference histogram *and* the current partition is
//!   projected imbalanced, or the per-epoch STM contention ratio (fed by a
//!   [`ContentionSource`]) blows through its hysteresis band. Under
//!   stationary load neither trigger fires, so the partition never churns.
//!
//! Every published partition goes through a [`PartitionTable`] — an
//! `Arc`-swapped, generation-numbered routing table — so dispatchers route
//! against immutable snapshots and a swap never disturbs in-flight work.
//! Each publish is recorded in an adaptation log
//! ([`AdaptiveKeyScheduler::adaptation_log`]) with its cause and the
//! expected before/after imbalance.
//!
//! # Elastic concurrency control
//!
//! With a worker *range* ([`AdaptiveKeyScheduler::with_worker_range`]) and
//! an attached pool ([`crate::scheduler::Scheduler::attach_pool`]), the
//! continuous plane also chooses the worker **count**, not just the
//! boundaries: each epoch it scores the current pool size from observed
//! throughput, idle time, queue backlog and the STM abort ratio —
//!
//! * **grow** when the queues are saturated
//!   ([`AdaptationConfig::saturation_backlog`] queued tasks per worker) and
//!   aborts are low (below
//!   [`AdaptationConfig::growth_contention_ceiling`]; adding workers under
//!   contention raises abort cost instead of throughput);
//! * **shrink** when the marginal worker's utility is negative — the
//!   epoch's idle-poll fraction exceeds
//!   [`AdaptationConfig::idle_shrink_threshold`] with an empty backlog —
//!   down to the share of workers that were actually busy;
//!
//! bounded by the worker range and gated by the same two-epoch
//! confirmation the drift trigger uses. A resize publishes a partition of
//! the new width (re-fit to the epoch's key CDF) **before** commanding the
//! pool through [`crate::drift::PoolController::resize`], so routing width
//! and pool width change together. Work stealing is adaptation-aware too:
//! per-worker steal counters flow into the epoch sample, and a
//! stolen-per-executed ratio above [`AdaptationConfig::steal_trigger`] in
//! two consecutive epochs is treated as routed-load imbalance — it triggers
//! a repartition instead of letting stealing mask the imbalance forever.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::cdf::PiecewiseCdf;
use crate::cost::{
    CostDecision, CostModelConfig, CostModelView, CostPolicy, EpochObservation, PlanContext,
};
use crate::drift::{
    imbalance_under, total_variation, AdaptationCause, AdaptationConfig, AdaptationEvent,
    ContentionSample, ContentionSource, PoolController, PoolSample,
};
use crate::histogram::{Histogram, DEFAULT_CELLS};
use crate::key::{KeyBounds, TxnKey};
use crate::partition::{KeyPartition, PartitionTable};
use crate::sample_size::PAPER_SAMPLE_THRESHOLD;
use crate::scheduler::Scheduler;

/// Default adaptation-log ring capacity: enough to cover any realistic
/// diagnosis window while bounding memory and the per-stats copy on
/// long-lived runtimes with periodic or uncapped re-adaptation.
/// Configurable per scheduler via [`AdaptationConfig::log_capacity`] /
/// [`AdaptiveKeyScheduler::with_log_capacity`].
pub const ADAPTATION_LOG_CAP: usize = 256;

/// The CDF-observer hook type (see
/// [`AdaptiveKeyScheduler::with_cdf_observer`]).
pub type CdfObserver = Arc<dyn Fn(&PiecewiseCdf) + Send + Sync>;

/// Which way the elastic controller wants to move the pool — armed one
/// epoch, confirmed (and acted on) when the next epoch agrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResizeDirection {
    /// Queues saturated, aborts low: add workers.
    Grow,
    /// Marginal worker utility negative: shed workers.
    Shrink,
}

/// What happens after the initial adaptation.
#[derive(Debug, Clone)]
enum AdaptMode {
    /// The paper's protocol: adapt once, then stop sampling entirely.
    OneShot,
    /// Recompute the partition unconditionally every `every` observations.
    Periodic {
        /// Observations between recomputations.
        every: u64,
    },
    /// Epoch-based drift-gated re-adaptation (see [`crate::drift`]).
    Continuous(AdaptationConfig),
}

/// Mutable sampling state, all behind one mutex: the epoch histogram, the
/// reference histogram of the current partition, and the contention
/// bookkeeping for the epoch triggers.
struct SampleState {
    /// Keys observed since the last adaptation decision (the current epoch
    /// in continuous mode; the whole sampling phase before the first
    /// adaptation).
    hist: Histogram,
    /// The histogram that produced the current partition — the baseline the
    /// drift detector measures distance against.
    reference: Option<Histogram>,
    /// A drifted epoch waiting for confirmation: the drift trigger only
    /// repartitions after two *consecutive* epochs drift the same way
    /// (their histograms within `drift_threshold` of each other), so a load
    /// that oscillates between phases — e.g. producers serialized by
    /// back-pressure — never confirms and never churns, while a sustained
    /// shift confirms within two epochs.
    pending_drift: Option<Histogram>,
    /// Cumulative contention counters at the last epoch boundary.
    last_contention: Option<ContentionSample>,
    /// Epoch contention ratio observed right after the last repartition —
    /// the baseline for the contention hysteresis band.
    baseline_ratio: Option<f64>,
    /// Post-initial repartitions performed (checked against
    /// [`AdaptationConfig::max_repartitions`]).
    repartitions_done: usize,
    /// Cumulative pool counters at the last epoch boundary (elastic mode).
    last_pool: Option<PoolSample>,
    /// A resize direction waiting for its confirming epoch (the elastic
    /// counterpart of `pending_drift`).
    pending_resize: Option<ResizeDirection>,
    /// A chronic-stealing epoch waiting for confirmation.
    steal_armed: bool,
    /// When the current epoch started accumulating — the wall-clock side of
    /// the cost plane's task-equivalent conversions.
    epoch_started: Instant,
    /// The previous epoch's histogram, kept by cost mode
    /// to estimate how much of the current epoch's shape will persist into
    /// the next one (see `EpochObservation::persistence`).
    previous_epoch: Option<Histogram>,
}

/// Adaptive key-based scheduler.
///
/// Dispatch is wait-free in the common case: the hot path routes through the
/// current [`PartitionTable`] snapshot. During the sampling phase (and each
/// epoch, when continuous adaptation is enabled) keys are recorded into a
/// histogram behind a mutex; once sampling is finished — immediately after
/// the first adaptation in the paper's one-shot mode, or after the
/// repartition budget is spent in continuous mode — the lock is no longer
/// touched.
pub struct AdaptiveKeyScheduler {
    bounds: KeyBounds,
    /// Smallest pool size the elastic controller may shrink to.
    min_workers: usize,
    /// Largest pool size the elastic controller may grow to (equal to
    /// `min_workers` when the pool is fixed-size).
    max_workers: usize,
    /// The generation-numbered routing table. Starts at generation 0 with
    /// the equal-width (fixed) partition; every adaptation publishes the
    /// next generation. The current partition's width *is* the active
    /// worker count.
    table: PartitionTable,
    state: Mutex<SampleState>,
    /// Adaptation log, one entry per published generation, bounded at
    /// `log_capacity` (oldest evicted) so a long-lived periodic or
    /// uncapped continuous scheduler cannot grow it without limit.
    log: Mutex<VecDeque<AdaptationEvent>>,
    /// Number of keys observed so far (cheap, lock-free check on the hot
    /// path so we stop touching the sample lock once sampling is done).
    observed: AtomicU64,
    /// True once the repartition budget is exhausted: sampling stops and
    /// the hot path goes lock-free, like the paper's steady state.
    finished: AtomicBool,
    /// Samples required before the first adaptation.
    sample_threshold: u64,
    /// Post-adaptation behaviour.
    mode: AdaptMode,
    /// STM contention feed for the continuous triggers.
    contention: Option<Arc<dyn ContentionSource>>,
    /// Executor pool handle (telemetry + resize control), attached by the
    /// executor at start.
    pool: Mutex<Option<Arc<dyn PoolController>>>,
    /// Pool resizes performed so far.
    resizes: AtomicU64,
    /// Adaptation-log ring capacity.
    log_capacity: usize,
    /// True once `with_log_capacity` set the capacity explicitly, so a
    /// later `with_adaptation` does not silently revert it.
    log_capacity_explicit: bool,
    /// Invoked with the CDF behind every published partition — the facade
    /// uses it to re-derive quantile telemetry bucket boundaries.
    cdf_observer: Option<CdfObserver>,
    /// Number of histogram cells.
    cells: usize,
    /// The predictive cost plane (see [`crate::cost`]): when set and warm,
    /// epoch evaluation asks "which plan has the best net expected
    /// benefit?" instead of the threshold triggers. Locked strictly after
    /// the sample-state lock.
    cost: Option<Mutex<CostPolicy>>,
}

impl AdaptiveKeyScheduler {
    /// Create an adaptive scheduler with the paper's defaults (10 000-sample
    /// threshold, one-shot adaptation).
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(workers: usize, bounds: KeyBounds) -> Self {
        assert!(workers > 0, "need at least one worker");
        AdaptiveKeyScheduler {
            bounds,
            min_workers: workers,
            max_workers: workers,
            table: PartitionTable::new(KeyPartition::equal_width(bounds, workers)),
            state: Mutex::new(SampleState {
                hist: Histogram::new(bounds, DEFAULT_CELLS),
                reference: None,
                pending_drift: None,
                last_contention: None,
                baseline_ratio: None,
                repartitions_done: 0,
                last_pool: None,
                pending_resize: None,
                steal_armed: false,
                epoch_started: Instant::now(),
                previous_epoch: None,
            }),
            log: Mutex::new(VecDeque::new()),
            observed: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            sample_threshold: PAPER_SAMPLE_THRESHOLD as u64,
            mode: AdaptMode::OneShot,
            contention: None,
            pool: Mutex::new(None),
            resizes: AtomicU64::new(0),
            log_capacity: ADAPTATION_LOG_CAP,
            log_capacity_explicit: false,
            cdf_observer: None,
            cells: DEFAULT_CELLS,
            cost: None,
        }
    }

    /// Override the number of samples collected before adapting.
    pub fn with_sample_threshold(mut self, threshold: usize) -> Self {
        self.sample_threshold = threshold.max(1) as u64;
        self
    }

    /// Make the pool elastic: the continuous adaptation plane may resize
    /// the worker count within `min..=max` (see the module docs). The
    /// initial width (from [`AdaptiveKeyScheduler::new`]) is clamped into
    /// the range.
    ///
    /// # Panics
    /// Panics when `min` is zero or exceeds `max`.
    pub fn with_worker_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1, "need at least one worker");
        assert!(min <= max, "worker range inverted: {min} > {max}");
        self.min_workers = min;
        self.max_workers = max;
        let current = self.table.partition().workers();
        let clamped = current.clamp(min, max);
        if clamped != current {
            self.table = PartitionTable::new(KeyPartition::equal_width(self.bounds, clamped));
        }
        self
    }

    /// Override the adaptation-log ring capacity (clamped to at least 1;
    /// defaults to [`ADAPTATION_LOG_CAP`], or
    /// [`AdaptationConfig::log_capacity`] in continuous mode).
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity.max(1);
        self.log_capacity_explicit = true;
        self
    }

    /// Observe the CDF behind every published partition (used by the
    /// facade to keep quantile telemetry buckets aligned with the observed
    /// key distribution).
    pub fn with_cdf_observer(mut self, observer: CdfObserver) -> Self {
        self.cdf_observer = Some(observer);
        self
    }

    /// Enable unconditional periodic re-adaptation every `n` additional
    /// observations (the pre-drift-detector extension; prefer
    /// [`AdaptiveKeyScheduler::with_adaptation`] for drift-gated behaviour).
    pub fn with_re_adaptation(mut self, every: u64) -> Self {
        self.mode = AdaptMode::Periodic {
            every: every.max(1),
        };
        self
    }

    /// Enable continuous, epoch-based adaptation: every
    /// [`AdaptationConfig::interval`] observations the drift and contention
    /// triggers are evaluated and the partition is republished only when one
    /// fires (see [`crate::drift`] for the trigger semantics). Also adopts
    /// the config's [`AdaptationConfig::log_capacity`] — unless an explicit
    /// [`AdaptiveKeyScheduler::with_log_capacity`] was set, which wins
    /// regardless of call order.
    pub fn with_adaptation(mut self, config: AdaptationConfig) -> Self {
        if !self.log_capacity_explicit {
            self.log_capacity = config.log_capacity.max(1);
        }
        self.mode = AdaptMode::Continuous(config);
        self
    }

    /// Attach the STM contention feed used by the continuous contention
    /// trigger and the abort-weighted repartitioning histogram.
    pub fn with_contention_source(mut self, source: Arc<dyn ContentionSource>) -> Self {
        self.contention = Some(source);
        self
    }

    /// Enable the predictive cost plane (see [`crate::cost`]): in
    /// continuous mode, once the swap-cost calibration is warm, every epoch
    /// boundary scores candidate plans (boundary moves, width changes,
    /// joint changes) by predicted next-epoch cost and adopts the one whose
    /// trusted gain beats its margin-adjusted swap cost — subsuming the
    /// drift, contention, steal, and resize threshold triggers. Until the
    /// calibration warms (the initial adaptation provides the first publish
    /// sample), the threshold triggers stay in charge.
    pub fn with_cost_model(mut self, config: CostModelConfig) -> Self {
        self.cost = Some(Mutex::new(CostPolicy::new(config)));
        self
    }

    /// Override the histogram resolution.
    pub fn with_cells(mut self, cells: usize) -> Self {
        assert!(cells > 0, "need at least one histogram cell");
        self.cells = cells;
        self.state.lock().hist = Histogram::new(self.bounds, cells);
        self
    }

    /// True once the scheduler has switched from the fixed to the adaptive
    /// partition.
    pub fn is_adapted(&self) -> bool {
        self.table.generation() > 0
    }

    /// Number of adaptations performed so far (the current partition-table
    /// generation).
    pub fn adaptations(&self) -> usize {
        self.table.generation() as usize
    }

    /// Number of keys observed so far.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// The partition currently in effect.
    pub fn current_partition(&self) -> KeyPartition {
        self.table.partition()
    }

    /// The generation-numbered routing table (for diagnostics and tests).
    pub fn partition_table(&self) -> &PartitionTable {
        &self.table
    }

    /// The adaptation log: one entry per published generation, oldest
    /// first, holding the most recent `log_capacity` entries (the
    /// generation numbers stay continuous, so eviction is detectable).
    pub fn adaptation_log(&self) -> Vec<AdaptationEvent> {
        self.log.lock().iter().cloned().collect()
    }

    /// Pool resizes performed so far.
    pub fn resizes(&self) -> u64 {
        self.resizes.load(Ordering::Relaxed)
    }

    /// Point-in-time view of the cost plane (calibration state, trust,
    /// margin, last prediction error), `None` unless
    /// [`AdaptiveKeyScheduler::with_cost_model`] was set.
    pub fn cost_model_view(&self) -> Option<CostModelView> {
        self.cost.as_ref().map(|cost| cost.lock().view())
    }

    /// The worker range the elastic controller may move within (equal
    /// bounds = fixed-size pool).
    pub fn worker_range(&self) -> (usize, usize) {
        (self.min_workers, self.max_workers)
    }

    /// True when no further samples need to be recorded: one-shot mode after
    /// the first adaptation, or continuous mode with the repartition budget
    /// exhausted.
    fn sampling_finished(&self, adapted: bool) -> bool {
        if !adapted {
            return false;
        }
        match &self.mode {
            AdaptMode::OneShot => true,
            AdaptMode::Periodic { .. } => false,
            AdaptMode::Continuous(_) => self.finished.load(Ordering::Relaxed),
        }
    }

    /// Samples the current histogram must reach before the next adaptation
    /// decision.
    fn decision_threshold(&self, adapted: bool) -> u64 {
        if !adapted {
            return self.sample_threshold;
        }
        match &self.mode {
            AdaptMode::OneShot => u64::MAX,
            AdaptMode::Periodic { every } => *every,
            AdaptMode::Continuous(config) => config.interval,
        }
    }

    /// Act on a full histogram: adapt unconditionally before the first
    /// adaptation and in periodic mode; evaluate the drift/contention
    /// triggers in continuous mode.
    fn on_decision_point(&self, adapted: bool) {
        if !adapted {
            self.adapt(AdaptationCause::Initial);
            return;
        }
        match &self.mode {
            AdaptMode::OneShot => {}
            AdaptMode::Periodic { .. } => self.adapt(AdaptationCause::Periodic),
            AdaptMode::Continuous(config) => self.evaluate_epoch(config),
        }
    }

    /// Record a key observation and adapt when a decision point is reached.
    fn observe(&self, key: TxnKey) {
        self.observed.fetch_add(1, Ordering::Relaxed);
        let adapted = self.is_adapted();

        if self.sampling_finished(adapted) {
            // Steady state: sampling is finished, nothing more to record.
            return;
        }

        let threshold = self.decision_threshold(adapted);
        let threshold_reached = {
            let mut state = self.state.lock();
            state.hist.record(key);
            state.hist.total() >= threshold
        };

        if threshold_reached {
            self.on_decision_point(adapted);
        }
    }

    /// Batch counterpart of [`AdaptiveKeyScheduler::observe`]: records the
    /// whole slice under (at most) one samples-lock acquisition per
    /// adaptation event instead of one per key, while reproducing the
    /// per-task protocol exactly — each key is sampled exactly once, the
    /// decision threshold is checked after every sample, and sampling stops
    /// at the same key it would have stopped at under per-task dispatch. The
    /// resulting partitions are therefore bit-identical between batched and
    /// per-task submission of the same key sequence.
    fn observe_batch(&self, keys: &[TxnKey]) {
        self.observed
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut index = 0;
        while index < keys.len() {
            let adapted = self.is_adapted();
            if self.sampling_finished(adapted) {
                // Steady state: sampling is finished, nothing more to record.
                return;
            }
            let threshold = self.decision_threshold(adapted);
            let threshold_reached = {
                let mut state = self.state.lock();
                let mut reached = false;
                while index < keys.len() {
                    state.hist.record(keys[index]);
                    index += 1;
                    if state.hist.total() >= threshold {
                        reached = true;
                        break;
                    }
                }
                reached
            };
            if !threshold_reached {
                return;
            }
            self.on_decision_point(adapted);
        }
    }

    /// Evaluate the continuous-mode triggers at an epoch boundary, then
    /// start the next epoch (the epoch histogram is consumed either way).
    fn evaluate_epoch(&self, config: &AdaptationConfig) {
        let mut state = self.state.lock();
        if state.hist.total() < config.interval || self.finished.load(Ordering::Relaxed) {
            // A concurrent dispatcher already consumed this epoch (or spent
            // the budget) between our threshold check and this lock.
            return;
        }
        if matches!(config.max_repartitions, Some(cap) if state.repartitions_done >= cap) {
            // Budget already spent (including a cap of zero): stop sampling
            // for good — the hot path goes lock-free from here on.
            self.finished.store(true, Ordering::Relaxed);
            state.hist.clear();
            state.epoch_started = Instant::now();
            return;
        }

        // Per-epoch contention delta from the cumulative feed.
        let cumulative = self.contention.as_ref().map(|source| source.sample());
        let epoch_ratio = match (&cumulative, &state.last_contention) {
            (Some(now), Some(last)) => {
                let commits = now.commits.saturating_sub(last.commits);
                let aborts = now.aborts.saturating_sub(last.aborts);
                (commits > 0).then(|| aborts as f64 / commits as f64)
            }
            (Some(now), None) => (now.commits > 0).then(|| now.aborts as f64 / now.commits as f64),
            _ => None,
        };

        // Per-epoch pool delta from the executor feed: routed throughput,
        // steals, idle polls and parks (cumulative counters diffed against
        // the last epoch boundary) plus the instantaneous backlog — which
        // includes the central dispatcher's queue, so a saturated
        // dispatcher reads as demand rather than being invisible.
        let pool = self.pool.lock().clone();
        let pool_now = pool.as_ref().map(|controller| controller.sample());
        let last = state.last_pool.as_ref();
        let delta =
            |now: u64, then: fn(&PoolSample) -> u64| now.saturating_sub(last.map_or(0, then));
        let (
            executed_delta,
            stolen_delta,
            idle_delta,
            busy_delta,
            park_nanos_delta,
            resize_nanos_delta,
            resized_workers_delta,
        ) = match &pool_now {
            Some(now) => (
                now.executed()
                    .saturating_sub(last.map_or(0, |l| l.executed())),
                delta(now.stolen, |l| l.stolen),
                delta(now.idle_polls, |l| l.idle_polls),
                delta(now.busy_wakeups, |l| l.busy_wakeups),
                delta(now.park_nanos, |l| l.park_nanos),
                delta(now.resize_nanos, |l| l.resize_nanos),
                delta(now.resized_workers, |l| l.resized_workers),
            ),
            None => (0, 0, 0, 0, 0, 0, 0),
        };
        // Parked time converted into idle-poll equivalents: one park spans
        // the idle time of many backoff polls, so the idle side of the
        // wakeup fraction must weight duration, not park events — a fully
        // parked (maximally idle) pool would otherwise read as busy.
        let park_idle_equivalent = park_nanos_delta / crate::drift::PARK_IDLE_QUANTUM_NANOS;
        let backlog = pool_now.as_ref().map_or(0, |now| now.backlog());
        let queue_depths = pool_now
            .as_ref()
            .map(|now| now.queue_depths.clone())
            .unwrap_or_default();
        state.last_pool = pool_now;

        // Predictive cost plane: when enabled and warm it consumes the
        // epoch — score candidate plans by predicted next-epoch cost and
        // adopt the best net-positive one — and the threshold triggers
        // below never run. While the calibration is cold (no swap has been
        // measured yet) we fall through to the proven threshold behaviour,
        // whose swaps feed the calibrator.
        if let Some(cost) = &self.cost {
            let mut policy = cost.lock();
            if resized_workers_delta > 0 {
                // Measured spawn/retire time from the executor's WorkerSet,
                // normalized per worker.
                policy.note_resize_per_worker(
                    resize_nanos_delta as f64 / resized_workers_delta as f64 / 1.0e9,
                );
            }
            if policy.is_calibrated() {
                let epoch_seconds = state.epoch_started.elapsed().as_secs_f64();
                let tasks = state.hist.total();
                // Per-range abort deltas (quantile telemetry buckets), fed
                // to the plan scorer. Unlike the threshold path, cost mode
                // does NOT fold abort mass into the histogram: its abort
                // awareness is the model's explicit cut-fraction term, and
                // folding lumpy abort spikes into the estimation histogram
                // would inflate every projected imbalance and make the
                // plane chase its own telemetry on contended structures.
                let abort_ranges: Vec<(u64, u64, u64)> = match &cumulative {
                    Some(now) => now
                        .ranges
                        .iter()
                        .enumerate()
                        .map(|(index, &(lo, hi, aborts))| {
                            let previous = state
                                .last_contention
                                .as_ref()
                                .and_then(|l| l.ranges.get(index))
                                .map_or(0, |&(_, _, a)| a);
                            (lo, hi, aborts.saturating_sub(previous))
                        })
                        .collect(),
                    None => Vec::new(),
                };
                // Persistence: how much of this epoch's shape is expected
                // to survive into the next epoch, estimated from the
                // epoch-over-epoch histogram similarity. 0.5 for the first
                // cost-mode epoch (no evidence either way).
                let persistence = state
                    .previous_epoch
                    .as_ref()
                    .map_or(0.5, |previous| 1.0 - total_variation(previous, &state.hist));
                state.previous_epoch = Some(state.hist.clone());
                let epoch_cdf = PiecewiseCdf::from_histogram(&state.hist);
                let current = self.table.load();
                let active = current.partition.workers();
                let (commits_delta, aborts_delta) = match (&cumulative, &state.last_contention) {
                    (Some(now), Some(last)) => (
                        now.commits.saturating_sub(last.commits),
                        now.aborts.saturating_sub(last.aborts),
                    ),
                    (Some(now), None) => (now.commits, now.aborts),
                    _ => (0, 0),
                };
                let idle_eff = idle_delta + park_idle_equivalent;
                let idle_fraction = if idle_eff + busy_delta > 0 {
                    idle_eff as f64 / (idle_eff + busy_delta) as f64
                } else {
                    0.0
                };
                let observation = EpochObservation {
                    tasks,
                    executed: executed_delta,
                    epoch_seconds,
                    commits: commits_delta,
                    aborts: aborts_delta,
                    abort_ranges,
                    active,
                    backlog,
                    queue_depths,
                    idle_fraction,
                    persistence,
                };
                // Width plans only make sense when an elastic pool is
                // attached to carry them out.
                let (min_workers, max_workers) = if pool.is_some() {
                    (self.min_workers, self.max_workers)
                } else {
                    (active, active)
                };
                let reference_hist = state.reference.clone().filter(|h| h.total() > 0);
                let reference_cdf = reference_hist.as_ref().map(PiecewiseCdf::from_histogram);
                let ctx = PlanContext {
                    epoch_cdf: &epoch_cdf,
                    reference_cdf: reference_cdf.as_ref(),
                    current: &current.partition,
                    min_workers,
                    max_workers,
                    observation: &observation,
                };
                // Prediction-error feedback first: the cost this epoch
                // realized under the configuration the last decision left
                // in effect is exactly what that decision predicted.
                let realized = policy.realized_keep_cost(&ctx);
                policy.score_pending(realized);
                match policy.decide(&ctx) {
                    CostDecision::Adopt {
                        plan,
                        predicted_gain,
                        swap_cost,
                    } => {
                        state.repartitions_done += 1;
                        if let Some(cap) = config.max_repartitions {
                            if state.repartitions_done >= cap {
                                self.finished.store(true, Ordering::Relaxed);
                            }
                        }
                        let width = plan.width;
                        let (publish_seconds, rebucket_seconds) = self.publish_locked(
                            &mut state,
                            AdaptationCause::CostModel {
                                predicted_gain,
                                swap_cost,
                            },
                            &epoch_cdf,
                            plan.partition,
                        );
                        policy.note_publish(publish_seconds);
                        if rebucket_seconds > 0.0 {
                            policy.note_rebucket(rebucket_seconds);
                        }
                        if width != active {
                            self.resizes.fetch_add(1, Ordering::Relaxed);
                            if let Some(controller) = pool.as_ref() {
                                // Publish-then-resize, as in threshold mode.
                                controller.resize(width);
                            }
                        }
                    }
                    CostDecision::Keep => {
                        state.last_contention = cumulative;
                        state.hist.clear();
                        state.epoch_started = Instant::now();
                    }
                }
                return;
            }
        }

        // Drift trigger: histogram distance past the threshold AND the
        // current partition projected imbalanced under the new distribution
        // (the hysteresis gate — see crate::drift).
        let epoch_cdf = PiecewiseCdf::from_histogram(&state.hist);
        let current = self.table.load();
        let active = current.partition.workers();
        let projected = imbalance_under(&current.partition, &epoch_cdf);
        let distance = state
            .reference
            .as_ref()
            .map(|reference| total_variation(reference, &state.hist))
            .unwrap_or(1.0);
        let drifted = distance > config.drift_threshold && projected > config.imbalance_trigger;

        // Contention trigger: epoch ratio past the absolute trigger and the
        // hysteresis band over the post-adaptation baseline.
        let contended = match (epoch_ratio, state.baseline_ratio) {
            (Some(ratio), Some(baseline)) => {
                ratio > config.contention_trigger && ratio > baseline * config.contention_hysteresis
            }
            _ => false,
        };
        if state.baseline_ratio.is_none() {
            // First full epoch after a repartition fixes the baseline.
            state.baseline_ratio = epoch_ratio;
        }

        // Steal trigger: chronic stealing is imbalance evidence. One heavy
        // epoch arms it; the next heavy epoch confirms and repartitions, so
        // a single rescue burst never churns.
        let steal_ratio = if executed_delta > 0 {
            stolen_delta as f64 / executed_delta as f64
        } else {
            0.0
        };
        let steal_heavy = stolen_delta > 0 && steal_ratio > config.steal_trigger;
        let steal_confirmed = steal_heavy && state.steal_armed;
        state.steal_armed = steal_heavy && !steal_confirmed;

        // Elastic concurrency controller (see the module docs): score the
        // current pool size from the epoch's backlog, idle fraction and
        // abort ratio, with the same two-epoch confirmation the drift
        // trigger uses. A confirmed resize republishes the partition at the
        // new width (re-fit to the epoch CDF) and then commands the pool —
        // it consumes this epoch, so the drift/contention triggers are not
        // also evaluated.
        if self.max_workers > self.min_workers {
            if let Some(controller) = pool.as_ref() {
                // Idle fraction over *wakeups* (idle and busy wakeups share
                // a unit); comparing idle polls to per-task completions
                // would under-read idleness badly, since a single busy
                // wakeup drains a whole batch while idle polls are
                // rate-limited by the backoff sleeps. Parked time counts on
                // the idle side at the same cadence (duration over the
                // backoff quantum): a parked worker emits almost no idle
                // polls precisely because it is maximally idle.
                let idle_eff = idle_delta + park_idle_equivalent;
                let idle_fraction = if idle_eff + busy_delta > 0 {
                    idle_eff as f64 / (idle_eff + busy_delta) as f64
                } else {
                    0.0
                };
                let backlog_per_worker = backlog as f64 / active.max(1) as f64;
                let abort_ratio = epoch_ratio.unwrap_or(0.0);
                let proposal = if active < self.max_workers
                    && backlog_per_worker >= config.saturation_backlog
                    && abort_ratio <= config.growth_contention_ceiling
                {
                    Some(ResizeDirection::Grow)
                } else if active > self.min_workers
                    && idle_fraction >= config.idle_shrink_threshold
                    && backlog_per_worker < config.saturation_backlog
                {
                    Some(ResizeDirection::Shrink)
                } else {
                    None
                };
                if let Some(direction) = proposal.filter(|_| proposal == state.pending_resize) {
                    let target = match direction {
                        // Double up to the ceiling: bursts need headroom
                        // faster than +1 stepping provides.
                        ResizeDirection::Grow => (active * 2).min(self.max_workers),
                        // Keep the share of workers that were actually
                        // busy: with the pool mostly idle this sheds most
                        // of the burst capacity in one confirmed step.
                        ResizeDirection::Shrink => {
                            let busy = ((1.0 - idle_fraction) * active as f64).ceil() as usize;
                            busy.clamp(self.min_workers, active - 1)
                        }
                    };
                    state.pending_resize = None;
                    // Grow always doubles past `active` (the proposal
                    // requires active < max) and shrink clamps into
                    // min..=active-1 (the proposal requires active > min),
                    // so a confirmed resize always moves the width.
                    debug_assert_ne!(target, active);
                    state.repartitions_done += 1;
                    if let Some(cap) = config.max_repartitions {
                        if state.repartitions_done >= cap {
                            self.finished.store(true, Ordering::Relaxed);
                        }
                    }
                    self.adapt_locked(
                        &mut state,
                        AdaptationCause::Resize {
                            from: active,
                            to: target,
                        },
                        target,
                    );
                    self.resizes.fetch_add(1, Ordering::Relaxed);
                    // Publish-then-resize: the new generation is already
                    // routing, so the pool can follow without a gap.
                    controller.resize(target);
                    return;
                } else {
                    state.pending_resize = proposal;
                }
            }
        }

        let cause = if drifted {
            Some(AdaptationCause::KeyDrift {
                distance,
                projected_imbalance: projected,
            })
        } else if steal_confirmed {
            Some(AdaptationCause::StealImbalance { ratio: steal_ratio })
        } else if contended {
            epoch_ratio.map(|ratio| AdaptationCause::Contention { ratio })
        } else {
            None
        };

        // Drift confirmation (temporal hysteresis): a single drifted epoch
        // only *arms* the trigger. The repartition fires when the next epoch
        // drifts the same way — its histogram within drift_threshold of the
        // armed one — and the two epochs are merged so the new partition is
        // estimated from twice the samples. A load that oscillates between
        // phases (producers serialized by back-pressure do exactly this)
        // re-arms with a different histogram every time and never confirms.
        let cause = match cause {
            Some(AdaptationCause::KeyDrift { .. }) => match state.pending_drift.take() {
                Some(pending)
                    if total_variation(&pending, &state.hist) <= config.drift_threshold =>
                {
                    let mut merged = pending;
                    merged.merge(&state.hist);
                    state.hist = merged;
                    cause
                }
                _ => {
                    state.pending_drift = Some(state.hist.clone());
                    state.last_contention = cumulative;
                    state.hist.clear();
                    state.epoch_started = Instant::now();
                    return;
                }
            },
            other => {
                state.pending_drift = None;
                other
            }
        };

        match cause {
            Some(cause) => {
                // Fold the epoch's per-range abort deltas into the histogram
                // so contended ranges get narrowed beyond what key frequency
                // alone would dictate.
                if config.abort_weight > 0.0 {
                    if let Some(now) = &cumulative {
                        let last = state.last_contention.take();
                        for (index, &(lo, hi, aborts)) in now.ranges.iter().enumerate() {
                            let previous = last
                                .as_ref()
                                .and_then(|l| l.ranges.get(index))
                                .map_or(0, |&(_, _, a)| a);
                            let delta = aborts.saturating_sub(previous);
                            let extra = (delta as f64 * config.abort_weight) as u64;
                            if extra > 0 {
                                state.hist.record_many(lo + (hi - lo) / 2, extra);
                            }
                        }
                    }
                }
                state.last_contention = cumulative;
                state.repartitions_done += 1;
                if let Some(cap) = config.max_repartitions {
                    if state.repartitions_done >= cap {
                        self.finished.store(true, Ordering::Relaxed);
                    }
                }
                self.adapt_locked(&mut state, cause, active);
            }
            None => {
                // Stationary epoch: discard the window, keep the partition.
                state.last_contention = cumulative;
                state.hist.clear();
                state.epoch_started = Instant::now();
            }
        }
    }

    /// Recompute the PD-partition from the collected samples.
    fn adapt(&self, cause: AdaptationCause) {
        let mut state = self.state.lock();
        // Re-check the firing condition under the lock: two dispatchers can
        // both observe a crossed threshold before either adapts, and the
        // loser must not republish from the histogram the winner already
        // consumed (in the sampling modes a handful of fresh keys could
        // otherwise produce a degenerate partition).
        let stale = match cause {
            AdaptationCause::Initial => {
                self.is_adapted() || state.hist.total() < self.sample_threshold
            }
            AdaptationCause::Periodic => match &self.mode {
                AdaptMode::Periodic { every } => state.hist.total() < *every,
                _ => false,
            },
            _ => false,
        };
        if stale {
            return;
        }
        let width = self.table.partition().workers();
        self.adapt_locked(&mut state, cause, width);
    }

    /// Publish a new generation of `width` workers from `state.hist` (no-op
    /// when empty). The caller holds the state lock; the table's write lock
    /// nests inside it (dispatchers only ever take the table's read lock,
    /// so no cycle).
    fn adapt_locked(&self, state: &mut SampleState, cause: AdaptationCause, width: usize) {
        if state.hist.total() == 0 {
            return;
        }
        let cdf = PiecewiseCdf::from_histogram(&state.hist);
        let new_partition = KeyPartition::from_cdf(&cdf, width);
        let timings = self.publish_locked(state, cause, &cdf, new_partition);
        self.note_swap_timings(timings);
    }

    /// Publish `partition` (estimated from `cdf`, which must describe
    /// `state.hist`) as the next generation, resetting the per-epoch
    /// bookkeeping. Returns the measured `(publish, rebucket)` latencies in
    /// seconds — the cost plane's calibration feed. The caller holds the
    /// state lock.
    fn publish_locked(
        &self,
        state: &mut SampleState,
        cause: AdaptationCause,
        cdf: &PiecewiseCdf,
        partition: KeyPartition,
    ) -> (f64, f64) {
        let publish_started = Instant::now();
        let snapshot = state.hist.clone();
        let keep_sampling = !matches!(self.mode, AdaptMode::OneShot);
        if keep_sampling {
            state.hist.clear();
        }
        let before = imbalance_under(&self.table.load().partition, cdf);
        let after = imbalance_under(&partition, cdf);
        state.reference = Some(snapshot);
        state.pending_drift = None;
        state.pending_resize = None;
        state.steal_armed = false;
        state.baseline_ratio = None; // next epoch re-establishes the baseline
        let mut rebucket_seconds = 0.0;
        if let Some(observer) = &self.cdf_observer {
            // Let the facade re-derive quantile telemetry buckets from the
            // same CDF *before* the contention feed is re-baselined below,
            // so the re-baseline already sees the new bucket geometry. The
            // observer call is timed separately: it is dominated by the
            // telemetry rebucket, a distinct component of the swap cost.
            let rebucket_started = Instant::now();
            observer(cdf);
            rebucket_seconds = rebucket_started.elapsed().as_secs_f64();
        }
        // Re-baseline the contention feed at the adaptation point so the
        // next epoch's delta (and hence the new baseline ratio) covers only
        // post-adaptation traffic — without this, the first epoch after the
        // initial adaptation would diff against process start and inherit
        // the sampling phase's (unbalanced, contended) counters.
        state.last_contention = self.contention.as_ref().map(|source| source.sample());
        state.epoch_started = Instant::now();
        let generation = self.table.publish(partition);
        self.push_event(AdaptationEvent {
            generation,
            cause,
            observed: self.observed(),
            before_imbalance: before,
            after_imbalance: after,
        });
        let publish_seconds = (publish_started.elapsed().as_secs_f64() - rebucket_seconds).max(0.0);
        (publish_seconds, rebucket_seconds)
    }

    /// Feed measured swap latencies into the cost plane's calibrator (no-op
    /// without one). Never called with the cost-policy lock held — the
    /// cost-mode epoch path, which does hold it, feeds the policy directly.
    fn note_swap_timings(&self, (publish_seconds, rebucket_seconds): (f64, f64)) {
        if let Some(cost) = &self.cost {
            let mut policy = cost.lock();
            policy.note_publish(publish_seconds);
            if rebucket_seconds > 0.0 {
                policy.note_rebucket(rebucket_seconds);
            }
        }
    }

    /// Append to the bounded adaptation log.
    fn push_event(&self, event: AdaptationEvent) {
        let mut log = self.log.lock();
        while log.len() >= self.log_capacity {
            log.pop_front();
        }
        log.push_back(event);
    }

    /// Force the pool to `target` workers right now (clamped into the
    /// worker range): publishes a partition of the new width — re-fit to
    /// the reference histogram when one exists, equal-width otherwise —
    /// and commands the attached pool. Returns `true` when a resize was
    /// published. Used by tests and harnesses that drive resizes
    /// deterministically.
    pub fn resize_now(&self, target: usize) -> bool {
        let mut state = self.state.lock();
        let target = target.clamp(self.min_workers, self.max_workers);
        let from = self.table.partition().workers();
        if target == from {
            return false;
        }
        let publish_started = Instant::now();
        let hist = state
            .reference
            .clone()
            .filter(|h| h.total() > 0)
            .or_else(|| (state.hist.total() > 0).then(|| state.hist.clone()));
        let (partition, before, after) = match hist {
            Some(hist) => {
                let cdf = PiecewiseCdf::from_histogram(&hist);
                let partition = KeyPartition::from_cdf(&cdf, target);
                let before = imbalance_under(&self.table.load().partition, &cdf);
                let after = imbalance_under(&partition, &cdf);
                (partition, before, after)
            }
            None => (KeyPartition::equal_width(self.bounds, target), 1.0, 1.0),
        };
        state.pending_resize = None;
        let generation = self.table.publish(partition);
        self.push_event(AdaptationEvent {
            generation,
            cause: AdaptationCause::Resize { from, to: target },
            observed: self.observed(),
            before_imbalance: before,
            after_imbalance: after,
        });
        self.note_swap_timings((publish_started.elapsed().as_secs_f64(), 0.0));
        self.resizes.fetch_add(1, Ordering::Relaxed);
        if let Some(pool) = self.pool.lock().clone() {
            pool.resize(target);
        }
        true
    }

    /// Force an adaptation now from whatever samples have been collected
    /// (used by the harness when replaying a recorded trace).
    pub fn adapt_now(&self) {
        self.adapt(AdaptationCause::Forced);
    }

    /// Pre-seed the sampler with a batch of keys (e.g. the head of a recorded
    /// trace) and adapt immediately.
    pub fn seed_with_keys(&self, keys: &[TxnKey]) {
        {
            let mut state = self.state.lock();
            for &k in keys {
                state.hist.record(k);
            }
        }
        self.observed
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.adapt(AdaptationCause::Forced);
    }
}

impl Scheduler for AdaptiveKeyScheduler {
    fn dispatch(&self, key: TxnKey) -> usize {
        self.observe(key);
        self.table.worker_for(key)
    }

    /// One samples pass and one partition-table snapshot for the whole
    /// batch; the internal `observe_batch` reproduces the per-task sampling
    /// protocol exactly (each key sampled once, the decision threshold
    /// checked after every sample). When an adaptation triggers *inside* a
    /// batch, the whole batch is routed with the fresh generation (per-task
    /// dispatch would route the pre-trigger keys with the old one) — the
    /// partitions themselves are identical either way, and routing a few
    /// transitional keys with the newer, better partition is benign.
    fn dispatch_batch(&self, keys: &[TxnKey], out: &mut Vec<usize>) {
        if keys.is_empty() {
            return;
        }
        self.observe_batch(keys);
        let snapshot = self.table.load();
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&key| snapshot.partition.worker_for(key)));
    }

    fn workers(&self) -> usize {
        self.table.partition().workers()
    }

    fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn attach_pool(&self, pool: Arc<dyn PoolController>) {
        *self.pool.lock() = Some(pool);
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn partition(&self) -> Option<KeyPartition> {
        Some(self.current_partition())
    }

    fn repartitions(&self) -> u64 {
        self.table.generation()
    }

    fn generation(&self) -> u64 {
        self.table.generation()
    }

    fn adaptation_log(&self) -> Vec<AdaptationEvent> {
        AdaptiveKeyScheduler::adaptation_log(self)
    }

    fn cost_model(&self) -> Option<CostModelView> {
        self.cost_model_view()
    }

    fn describe(&self) -> String {
        format!(
            "adaptive (gen {}, {} keys observed) {}",
            self.table.generation(),
            self.observed(),
            self.current_partition()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use katme_workload::{DistributionKind, KeyDistribution};
    use std::sync::atomic::AtomicU64 as TestAtomicU64;

    fn imbalance(counts: &[usize]) -> f64 {
        let max = *counts.iter().max().unwrap() as f64;
        let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        max / avg
    }

    #[test]
    fn behaves_like_fixed_before_threshold() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 99)).with_sample_threshold(1_000);
        assert!(!s.is_adapted());
        assert_eq!(s.dispatch(10), 0);
        assert_eq!(s.dispatch(30), 1);
        assert_eq!(s.dispatch(60), 2);
        assert_eq!(s.dispatch(90), 3);
        assert!(!s.is_adapted());
        assert_eq!(s.observed(), 4);
        assert_eq!(Scheduler::generation(&s), 0);
        assert!(s.adaptation_log().is_empty());
    }

    #[test]
    fn adapts_after_threshold_and_balances_skew() {
        let workers = 4;
        let s = AdaptiveKeyScheduler::new(workers, KeyBounds::new(0, 131_071))
            .with_sample_threshold(5_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 17);

        // Warm-up phase: feed enough keys to trigger adaptation.
        for _ in 0..6_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert!(s.is_adapted(), "scheduler should have adapted");
        assert_eq!(s.adaptations(), 1);
        let log = s.adaptation_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].generation, 1);
        assert_eq!(log[0].cause, AdaptationCause::Initial);
        assert!(
            log[0].before_imbalance > log[0].after_imbalance,
            "adaptation must improve the expected balance: {log:?}"
        );

        // Measurement phase: the adaptive partition should spread the skewed
        // keys roughly evenly.
        let mut counts = vec![0usize; workers];
        for _ in 0..20_000 {
            counts[s.dispatch(u64::from(dist.sample_raw()))] += 1;
        }
        assert!(
            imbalance(&counts) < 1.35,
            "adaptive partition should balance exponential keys: {counts:?}"
        );

        // A fixed partition on the same stream is hopeless (nearly everything
        // lands on worker 0).
        let fixed = crate::scheduler::FixedKeyScheduler::new(workers, KeyBounds::new(0, 131_071));
        let mut fixed_counts = vec![0usize; workers];
        for _ in 0..20_000 {
            fixed_counts[Scheduler::dispatch(&fixed, u64::from(dist.sample_raw()))] += 1;
        }
        assert!(
            imbalance(&fixed_counts) > 3.0,
            "fixed partition should be badly imbalanced: {fixed_counts:?}"
        );
    }

    #[test]
    fn uniform_keys_stay_balanced_after_adaptation() {
        let workers = 8;
        let s = AdaptiveKeyScheduler::new(workers, KeyBounds::new(0, 131_071))
            .with_sample_threshold(2_000);
        let mut dist = KeyDistribution::new(DistributionKind::Uniform, 23);
        for _ in 0..3_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert!(s.is_adapted());
        let mut counts = vec![0usize; workers];
        for _ in 0..40_000 {
            counts[s.dispatch(u64::from(dist.sample_raw()))] += 1;
        }
        assert!(imbalance(&counts) < 1.25, "{counts:?}");
    }

    #[test]
    fn locality_is_preserved_after_adaptation() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999)).with_sample_threshold(500);
        for key in 0..1_000u64 {
            s.dispatch(key * 7 % 10_000);
        }
        assert!(s.is_adapted());
        // Nearby keys still route to the same worker (contiguous ranges). At
        // most one pair per internal boundary may straddle a split.
        let split_pairs = (0..9_990u64)
            .step_by(500)
            .filter(|&base| s.dispatch(base) != s.dispatch(base + 1))
            .count();
        assert!(
            split_pairs <= 3,
            "too many neighbouring keys split: {split_pairs}"
        );
    }

    #[test]
    fn seeding_with_a_trace_adapts_immediately() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 999));
        let keys: Vec<TxnKey> = (0..1_000).map(|i| i % 100).collect();
        s.seed_with_keys(&keys);
        assert!(s.is_adapted());
        // All the mass is in [0, 99], so the partition boundaries are inside
        // that range.
        let p = s.current_partition();
        assert!(p.boundaries().iter().all(|&b| b <= 110), "{p}");
        assert_eq!(s.adaptation_log()[0].cause, AdaptationCause::Forced);
    }

    #[test]
    fn re_adaptation_tracks_a_shifting_distribution() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999))
            .with_sample_threshold(1_000)
            .with_re_adaptation(2_000);
        // Phase 1: keys concentrated low.
        for i in 0..3_000u64 {
            s.dispatch(i % 1_000);
        }
        assert!(s.is_adapted());
        let first = s.adaptations();
        // Phase 2: keys concentrated high; the scheduler should re-adapt.
        for i in 0..6_000u64 {
            s.dispatch(9_000 + (i % 1_000));
        }
        assert!(s.adaptations() > first, "should have re-adapted");
        let p = s.current_partition();
        assert!(
            p.boundaries().iter().all(|&b| b >= 8_500),
            "boundaries should follow the shifted distribution: {p}"
        );
    }

    #[test]
    fn batched_and_per_task_dispatch_repartition_identically() {
        // The same key stream fed per-task and in mixed-size batches must
        // produce the same number of adaptations and bit-identical
        // partitions — batching may not skip, duplicate, or defer samples.
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 99);
        let keys: Vec<TxnKey> = (0..12_000).map(|_| u64::from(dist.sample_raw())).collect();

        let per_task =
            AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071)).with_sample_threshold(5_000);
        for &key in &keys {
            per_task.dispatch(key);
        }

        let batched =
            AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071)).with_sample_threshold(5_000);
        let mut out = Vec::new();
        // Uneven batch sizes so the threshold lands mid-batch.
        for chunk in keys.chunks(577) {
            out.clear();
            batched.dispatch_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len());
        }

        assert_eq!(per_task.adaptations(), batched.adaptations());
        assert_eq!(per_task.observed(), batched.observed());
        assert_eq!(
            per_task.current_partition().boundaries(),
            batched.current_partition().boundaries(),
            "batched sampling must reproduce the per-task partition exactly"
        );
    }

    #[test]
    fn batched_re_adaptation_matches_per_task() {
        let keys: Vec<TxnKey> = (0..9_000u64)
            .map(|i| {
                if i < 3_000 {
                    i % 1_000
                } else {
                    9_000 + (i % 1_000)
                }
            })
            .collect();
        let make = || {
            AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999))
                .with_sample_threshold(1_000)
                .with_re_adaptation(2_000)
        };
        let per_task = make();
        for &key in &keys {
            per_task.dispatch(key);
        }
        let batched = make();
        let mut out = Vec::new();
        for chunk in keys.chunks(313) {
            batched.dispatch_batch(chunk, &mut out);
        }
        assert!(per_task.adaptations() > 1, "re-adaptation must trigger");
        assert_eq!(per_task.adaptations(), batched.adaptations());
        assert_eq!(
            per_task.current_partition().boundaries(),
            batched.current_partition().boundaries()
        );
    }

    fn continuous(workers: usize, interval: u64) -> AdaptiveKeyScheduler {
        AdaptiveKeyScheduler::new(workers, KeyBounds::new(0, 131_071))
            .with_sample_threshold(2_000)
            .with_adaptation(
                AdaptationConfig::new()
                    .with_interval(interval)
                    .with_drift_threshold(0.2)
                    .with_imbalance_trigger(1.2),
            )
    }

    #[test]
    fn continuous_mode_re_adapts_on_a_phase_shift() {
        let s = continuous(4, 2_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 7);
        for _ in 0..4_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 1, "initial adaptation only");

        // Phase shift: the mirrored high end of the space.
        for _ in 0..6_000 {
            s.dispatch(131_071 - u64::from(dist.sample_raw()));
        }
        assert!(
            s.adaptations() >= 2,
            "drift trigger must have fired: {:?}",
            s.adaptation_log()
        );
        let log = s.adaptation_log();
        assert!(
            matches!(log.last().unwrap().cause, AdaptationCause::KeyDrift { .. }),
            "{log:?}"
        );

        // Post-drift balance: route fresh phase-2 keys through the current
        // partition.
        let snapshot = s.current_partition();
        let mut counts = vec![0usize; 4];
        for _ in 0..20_000 {
            counts[snapshot.worker_for(131_071 - u64::from(dist.sample_raw()))] += 1;
        }
        assert!(
            imbalance(&counts) < 1.5,
            "post-drift partition must re-balance: {counts:?}"
        );
    }

    #[test]
    fn oscillating_load_never_confirms_a_drift() {
        // A load that flip-flops between two phases every epoch (what
        // back-pressure-serialized producers produce) must not churn: each
        // drifted epoch arms the trigger with a histogram the next epoch
        // contradicts, so the confirmation never lands.
        let s = continuous(4, 2_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 13);
        for _ in 0..4_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 1);
        for epoch in 0..10 {
            for _ in 0..2_000 {
                let key = u64::from(dist.sample_raw());
                s.dispatch(if epoch % 2 == 0 { 131_071 - key } else { key });
            }
        }
        assert_eq!(
            s.adaptations(),
            1,
            "oscillation must not churn: {:?}",
            s.adaptation_log()
        );
    }

    #[test]
    fn continuous_mode_holds_still_under_stationary_load() {
        let s = continuous(4, 2_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 11);
        // Many epochs of the same distribution: only the initial adaptation
        // may fire (hysteresis: the partition stays balanced, so the
        // projected-imbalance gate never opens).
        for _ in 0..40_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(
            s.adaptations(),
            1,
            "stationary load must not churn: {:?}",
            s.adaptation_log()
        );
    }

    #[test]
    fn continuous_mode_respects_the_repartition_budget() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071))
            .with_sample_threshold(1_000)
            .with_adaptation(
                AdaptationConfig::new()
                    .with_interval(1_000)
                    .with_drift_threshold(0.1)
                    .with_imbalance_trigger(1.1)
                    .with_max_repartitions(Some(1)),
            );
        // Initial adaptation on low keys.
        for i in 0..1_000u64 {
            s.dispatch(i % 1_000);
        }
        assert_eq!(s.adaptations(), 1);
        // Sustained drift to high keys: the first epoch arms the trigger,
        // the second (same distribution) confirms it — spending the single
        // budget slot.
        for i in 0..2_000u64 {
            s.dispatch(120_000 + i % 1_000);
        }
        let after_first_drift = s.adaptations();
        assert_eq!(after_first_drift, 2, "{:?}", s.adaptation_log());
        // Second sustained drift: middle keys — budget exhausted, no further
        // change, and sampling has stopped (observed still counts, the
        // histogram does not grow).
        for i in 0..4_000u64 {
            s.dispatch(60_000 + i % 1_000);
        }
        assert_eq!(s.adaptations(), after_first_drift);
        assert_eq!(s.state.lock().hist.total(), 0, "sampling must have stopped");
        assert!(s.finished.load(Ordering::Relaxed));
    }

    #[test]
    fn contention_trigger_fires_through_the_hysteresis_band() {
        // A contention source scripted per sampling call: call 0 is taken
        // by the initial adaptation's re-baseline, call 1 is the calm first
        // epoch (fixing the baseline ratio at 0.01), and later calls are a
        // storm of ~2 aborts per commit.
        let calls = Arc::new(TestAtomicU64::new(0));
        let calls_clone = Arc::clone(&calls);
        let source = move || {
            let call = calls_clone.fetch_add(1, Ordering::Relaxed);
            match call {
                0 => ContentionSample {
                    commits: 1_000,
                    aborts: 10,
                    ranges: vec![(0, 65_535, 10), (65_536, 131_071, 0)],
                },
                1 => ContentionSample {
                    commits: 2_000,
                    aborts: 20,
                    ranges: vec![(0, 65_535, 20), (65_536, 131_071, 0)],
                },
                n => ContentionSample {
                    commits: 2_000 + (n - 1) * 1_000,
                    aborts: 20 + (n - 1) * 2_000,
                    ranges: vec![(0, 65_535, 20), (65_536, 131_071, (n - 1) * 2_000)],
                },
            }
        };
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071))
            .with_sample_threshold(1_000)
            .with_adaptation(
                AdaptationConfig::new()
                    .with_interval(1_000)
                    // Make the drift trigger unreachable so only contention
                    // can fire.
                    .with_drift_threshold(1.0)
                    .with_imbalance_trigger(1_000.0)
                    .with_contention_trigger(0.5)
                    .with_contention_hysteresis(2.0),
            )
            .with_contention_source(Arc::new(source));

        let mut dist = KeyDistribution::new(DistributionKind::Uniform, 3);
        // Initial adaptation, then the baseline epoch (ratio 0.01 — calm).
        for _ in 0..2_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 1);
        // Storm epochs: ratio ≈ 2 aborts/commit, far over trigger and band.
        for _ in 0..2_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert!(
            s.adaptations() >= 2,
            "contention trigger must fire: {:?}",
            s.adaptation_log()
        );
        assert!(
            matches!(
                s.adaptation_log().last().unwrap().cause,
                AdaptationCause::Contention { ratio } if ratio > 0.5
            ),
            "{:?}",
            s.adaptation_log()
        );
    }

    #[test]
    fn adaptation_log_is_bounded_with_continuous_generations() {
        let s = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 9_999))
            .with_sample_threshold(10)
            .with_re_adaptation(10);
        for i in 0..(10 * (ADAPTATION_LOG_CAP as u64 + 40)) {
            s.dispatch(i % 10_000);
        }
        let log = s.adaptation_log();
        assert_eq!(log.len(), ADAPTATION_LOG_CAP, "log must be capped");
        assert_eq!(
            log.last().unwrap().generation,
            s.adaptations() as u64,
            "newest entry survives eviction"
        );
        let generations: Vec<u64> = log.iter().map(|e| e.generation).collect();
        assert!(
            generations.windows(2).all(|w| w[1] == w[0] + 1),
            "generation numbers stay continuous across eviction"
        );
    }

    /// A scripted [`PoolController`]: the test mutates the sample between
    /// epochs and records every resize command.
    struct ScriptedPool {
        sample: Mutex<PoolSample>,
        resized: Mutex<Vec<usize>>,
    }

    impl ScriptedPool {
        fn new(active: usize, capacity: usize) -> Arc<Self> {
            Arc::new(ScriptedPool {
                sample: Mutex::new(PoolSample {
                    active,
                    capacity,
                    per_worker_completed: vec![0; capacity],
                    stolen: 0,
                    adopted: 0,
                    idle_polls: 0,
                    busy_wakeups: 0,
                    parks: 0,
                    park_nanos: 0,
                    queue_depths: vec![0; capacity],
                    dispatcher_backlog: 0,
                    resize_nanos: 0,
                    resized_workers: 0,
                }),
                resized: Mutex::new(Vec::new()),
            })
        }

        fn set(&self, f: impl FnOnce(&mut PoolSample)) {
            f(&mut self.sample.lock());
        }
    }

    impl PoolController for ScriptedPool {
        fn sample(&self) -> PoolSample {
            self.sample.lock().clone()
        }

        fn resize(&self, workers: usize) {
            self.resized.lock().push(workers);
            self.sample.lock().active = workers;
        }
    }

    /// Elastic scheduler with the drift/contention triggers parked out of
    /// reach, so only the concurrency controller can publish.
    fn elastic(min: usize, start: usize, max: usize, interval: u64) -> AdaptiveKeyScheduler {
        AdaptiveKeyScheduler::new(start, KeyBounds::new(0, 131_071))
            .with_worker_range(min, max)
            .with_sample_threshold(1_000)
            .with_adaptation(
                AdaptationConfig::new()
                    .with_interval(interval)
                    .with_drift_threshold(1.0)
                    .with_imbalance_trigger(1_000.0),
            )
    }

    fn feed_epoch(s: &AdaptiveKeyScheduler, n: u64, seed: u64) {
        let mut dist = KeyDistribution::new(DistributionKind::Uniform, seed);
        for _ in 0..n {
            s.dispatch(u64::from(dist.sample_raw()));
        }
    }

    #[test]
    fn saturated_queues_grow_the_pool_after_two_epochs() {
        let s = elastic(1, 2, 8, 1_000);
        let pool = ScriptedPool::new(2, 8);
        Scheduler::attach_pool(&s, Arc::clone(&pool) as Arc<dyn PoolController>);
        feed_epoch(&s, 1_000, 1); // initial adaptation
        assert_eq!(s.adaptations(), 1);
        // Saturated: deep queues, busy workers, no aborts.
        pool.set(|p| {
            p.queue_depths = vec![200; 8];
            p.per_worker_completed = vec![1_000; 8];
        });
        feed_epoch(&s, 1_000, 2); // arms the grow
        assert_eq!(s.resizes(), 0, "one saturated epoch must only arm");
        pool.set(|p| p.per_worker_completed = vec![2_000; 8]);
        feed_epoch(&s, 1_000, 3); // confirms
        assert_eq!(s.resizes(), 1);
        assert_eq!(pool.resized.lock().as_slice(), &[4], "grow doubles");
        assert_eq!(Scheduler::workers(&s), 4);
        assert!(matches!(
            s.adaptation_log().last().unwrap().cause,
            AdaptationCause::Resize { from: 2, to: 4 }
        ));
    }

    #[test]
    fn idle_pool_sheds_workers_within_two_epochs() {
        let s = elastic(2, 8, 8, 1_000);
        let pool = ScriptedPool::new(8, 8);
        Scheduler::attach_pool(&s, Arc::clone(&pool) as Arc<dyn PoolController>);
        feed_epoch(&s, 1_000, 4); // initial adaptation
                                  // Load dropped: empty queues, 90% of wakeups find nothing.
        pool.set(|p| {
            p.idle_polls = 9_000;
            p.busy_wakeups = 1_000;
            p.per_worker_completed = vec![125; 8];
        });
        feed_epoch(&s, 1_000, 5); // arms the shrink
        assert_eq!(s.resizes(), 0);
        pool.set(|p| {
            p.idle_polls = 18_000;
            p.busy_wakeups = 2_000;
            p.per_worker_completed = vec![250; 8];
        });
        feed_epoch(&s, 1_000, 6); // confirms
        assert_eq!(s.resizes(), 1);
        let resized = pool.resized.lock().clone();
        assert_eq!(resized.len(), 1);
        assert!(
            resized[0] <= 4,
            "a 90%-idle pool must shed at least half its workers: {resized:?}"
        );
        assert!(resized[0] >= 2, "bounded by min_workers");
        assert_eq!(Scheduler::workers(&s), resized[0]);
    }

    #[test]
    fn oscillating_pressure_never_confirms_a_resize() {
        let s = elastic(1, 2, 8, 1_000);
        let pool = ScriptedPool::new(2, 8);
        Scheduler::attach_pool(&s, Arc::clone(&pool) as Arc<dyn PoolController>);
        feed_epoch(&s, 1_000, 7);
        for epoch in 0..6u64 {
            // Alternate saturated and calm epochs: each arms a different
            // direction (or none), so nothing ever confirms.
            pool.set(|p| {
                p.queue_depths = if epoch % 2 == 0 {
                    vec![200; 8]
                } else {
                    vec![0; 8]
                };
                let done = (epoch + 1) * 1_000;
                p.per_worker_completed = vec![done; 8];
            });
            feed_epoch(&s, 1_000, 8 + epoch);
        }
        assert_eq!(s.resizes(), 0, "{:?}", s.adaptation_log());
    }

    #[test]
    fn chronic_stealing_counts_as_imbalance_evidence() {
        // Fixed-size pool (no resizes possible), heavy steal traffic: two
        // confirming epochs must repartition with the StealImbalance cause.
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071))
            .with_sample_threshold(1_000)
            .with_adaptation(
                AdaptationConfig::new()
                    .with_interval(1_000)
                    .with_drift_threshold(1.0)
                    .with_imbalance_trigger(1_000.0)
                    .with_steal_trigger(0.25),
            );
        let pool = ScriptedPool::new(4, 4);
        Scheduler::attach_pool(&s, Arc::clone(&pool) as Arc<dyn PoolController>);
        feed_epoch(&s, 1_000, 20);
        assert_eq!(s.adaptations(), 1);
        for epoch in 1..=2u64 {
            pool.set(|p| {
                p.per_worker_completed = vec![250 * epoch; 4];
                p.stolen = 1_000 * epoch; // half of all executed work is stolen
            });
            feed_epoch(&s, 1_000, 20 + epoch);
        }
        let log = s.adaptation_log();
        assert!(
            matches!(
                log.last().unwrap().cause,
                AdaptationCause::StealImbalance { ratio } if ratio > 0.25
            ),
            "chronic stealing must trigger a repartition: {log:?}"
        );
        assert_eq!(s.resizes(), 0, "fixed-size pool must not resize");
    }

    fn cost_continuous(interval: u64) -> AdaptiveKeyScheduler {
        AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071))
            .with_sample_threshold(interval as usize)
            .with_adaptation(AdaptationConfig::new().with_interval(interval))
            .with_cost_model(CostModelConfig::default())
    }

    /// Lengthen the running epoch's wall clock so the measured service rate
    /// stays modest and the (seconds-denominated) swap price converts to a
    /// small task count — keeps the cost tests robust on slow CI hosts.
    fn stretch_epoch() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    #[test]
    fn cost_mode_swaps_on_a_sustained_shift_with_gain_above_swap_cost() {
        let s = cost_continuous(2_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 5);
        // Initial adaptation plus one stationary epoch: the publish warms
        // the calibrator, the stationary epoch must keep.
        for _ in 0..4_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 1);
        let view = s.cost_model_view().expect("cost plane attached");
        assert!(view.calibrated, "initial publish warms the calibration");
        assert!(view.decisions >= 1 && view.adoptions == 0, "{view:?}");

        // A sustained total phase flip: the first shifted epoch reads as
        // persistence ≈ 0 (it contradicts its predecessor), the second
        // confirms the shape persists and the swap lands — with the logged
        // gain beating the logged swap cost. (A milder drift, with partial
        // epoch-over-epoch overlap, can clear the bar in one epoch.)
        for _ in 0..2 {
            stretch_epoch();
            for _ in 0..2_000 {
                s.dispatch(131_071 - u64::from(dist.sample_raw()));
            }
        }
        assert_eq!(s.adaptations(), 2, "{:?}", s.adaptation_log());
        match s.adaptation_log().last().unwrap().cause {
            AdaptationCause::CostModel {
                predicted_gain,
                swap_cost,
            } => {
                assert!(
                    predicted_gain > swap_cost,
                    "every cost swap is justified: gain {predicted_gain}, cost {swap_cost}"
                );
                assert!(swap_cost >= 0.0);
            }
            ref other => panic!("cost mode must attribute the swap: {other:?}"),
        }

        // The new phase, sustained: nothing further to gain.
        for _ in 0..4_000 {
            s.dispatch(131_071 - u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 2, "{:?}", s.adaptation_log());
    }

    #[test]
    fn cost_mode_holds_still_under_stationary_load() {
        let s = cost_continuous(2_000);
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 17);
        for _ in 0..40_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(
            s.adaptations(),
            1,
            "zero swaps on a stationary run: {:?}",
            s.adaptation_log()
        );
        let view = s.cost_model_view().unwrap();
        assert!(view.decisions >= 10, "every epoch was decided: {view:?}");
        assert_eq!(view.adoptions, 0);
    }

    #[test]
    fn cost_mode_falls_back_to_thresholds_until_calibrated() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 131_071))
            .with_sample_threshold(2_000)
            .with_adaptation(
                AdaptationConfig::new()
                    .with_interval(2_000)
                    .with_drift_threshold(0.2),
            )
            .with_cost_model(CostModelConfig::default().with_min_calibration_samples(2));
        let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 29);
        for _ in 0..2_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 1);
        assert!(
            !s.cost_model_view().unwrap().calibrated,
            "one publish sample is below the two-sample warm-up"
        );

        // Cold calibration: the shift must go through the threshold plane —
        // arm on the first drifted epoch, confirm on the second, cause
        // KeyDrift.
        for _ in 0..4_000 {
            s.dispatch(131_071 - u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 2, "{:?}", s.adaptation_log());
        assert!(
            matches!(
                s.adaptation_log().last().unwrap().cause,
                AdaptationCause::KeyDrift { .. }
            ),
            "cold cost plane falls back to thresholds: {:?}",
            s.adaptation_log()
        );
        assert!(
            s.cost_model_view().unwrap().calibrated,
            "the threshold swap's publish completes the warm-up"
        );

        // Warm now: the next sustained shift is a one-epoch cost decision.
        stretch_epoch();
        for _ in 0..2_000 {
            s.dispatch(u64::from(dist.sample_raw()));
        }
        assert_eq!(s.adaptations(), 3, "{:?}", s.adaptation_log());
        assert!(
            matches!(
                s.adaptation_log().last().unwrap().cause,
                AdaptationCause::CostModel { .. }
            ),
            "{:?}",
            s.adaptation_log()
        );
    }

    #[test]
    fn cost_mode_grows_a_saturated_pool_in_one_epoch() {
        let s = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 131_071))
            .with_worker_range(1, 8)
            .with_sample_threshold(1_000)
            .with_adaptation(AdaptationConfig::new().with_interval(1_000))
            .with_cost_model(CostModelConfig::default());
        let pool = ScriptedPool::new(2, 8);
        Scheduler::attach_pool(&s, Arc::clone(&pool) as Arc<dyn PoolController>);
        feed_epoch(&s, 1_000, 31); // initial adaptation warms the calibrator
        assert!(s.cost_model_view().unwrap().calibrated);

        // Deep backlog, healthy per-worker throughput, no aborts: the grow
        // plan's overload relief prices far above the swap.
        pool.set(|p| {
            p.queue_depths = vec![2_000; 8];
            p.per_worker_completed = vec![500; 8];
        });
        stretch_epoch();
        feed_epoch(&s, 1_000, 32);
        assert_eq!(
            s.resizes(),
            1,
            "one epoch suffices — no confirmation: {:?}",
            s.adaptation_log()
        );
        assert_eq!(pool.resized.lock().as_slice(), &[4], "grow doubles");
        assert_eq!(Scheduler::workers(&s), 4);
        assert!(
            matches!(
                s.adaptation_log().last().unwrap().cause,
                AdaptationCause::CostModel { .. }
            ),
            "{:?}",
            s.adaptation_log()
        );
    }

    #[test]
    fn resize_now_clamps_publishes_and_commands_the_pool() {
        let s = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 9_999)).with_worker_range(2, 6);
        let pool = ScriptedPool::new(4, 6);
        Scheduler::attach_pool(&s, Arc::clone(&pool) as Arc<dyn PoolController>);
        assert!(!s.resize_now(4), "no-op resize publishes nothing");
        assert!(s.resize_now(100), "clamped to max");
        assert_eq!(Scheduler::workers(&s), 6);
        assert!(s.resize_now(1), "clamped to min");
        assert_eq!(Scheduler::workers(&s), 2);
        assert_eq!(pool.resized.lock().as_slice(), &[6, 2]);
        assert_eq!(s.resizes(), 2);
        let log = s.adaptation_log();
        assert_eq!(log.len(), 2);
        assert!(matches!(
            log[0].cause,
            AdaptationCause::Resize { from: 4, to: 6 }
        ));
        // Every generation routes within its own width.
        for key in (0..10_000u64).step_by(97) {
            assert!(s.dispatch(key) < 2);
        }
    }

    #[test]
    fn worker_range_clamps_the_initial_width() {
        let s = AdaptiveKeyScheduler::new(8, KeyBounds::new(0, 999)).with_worker_range(1, 4);
        assert_eq!(Scheduler::workers(&s), 4);
        assert_eq!(s.worker_range(), (1, 4));
        assert_eq!(Scheduler::max_workers(&s), 4);
    }

    #[test]
    fn explicit_log_capacity_survives_with_adaptation_in_any_order() {
        let before = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 999))
            .with_log_capacity(8)
            .with_adaptation(AdaptationConfig::new());
        assert_eq!(before.log_capacity, 8, "explicit capacity wins");
        let after = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 999))
            .with_adaptation(AdaptationConfig::new())
            .with_log_capacity(8);
        assert_eq!(after.log_capacity, 8);
        let config_only = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 999))
            .with_adaptation(AdaptationConfig::new().with_log_capacity(16));
        assert_eq!(config_only.log_capacity, 16, "config applies when unset");
    }

    #[test]
    fn log_capacity_knob_bounds_the_ring() {
        let s = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 9_999))
            .with_sample_threshold(10)
            .with_re_adaptation(10)
            .with_log_capacity(4);
        for i in 0..1_000u64 {
            s.dispatch(i % 10_000);
        }
        let log = s.adaptation_log();
        assert_eq!(log.len(), 4);
        assert_eq!(log.last().unwrap().generation, s.adaptations() as u64);
    }

    #[test]
    fn describe_reports_state() {
        let s = AdaptiveKeyScheduler::new(2, KeyBounds::new(0, 9)).with_sample_threshold(2);
        s.dispatch(1);
        s.dispatch(2);
        let d = s.describe();
        assert!(d.contains("adaptive"));
        assert!(d.contains("gen 1"));
    }
}
