//! Drift detection and adaptation policy for the continuous adaptation
//! plane.
//!
//! The paper's scheduler adapts exactly once, after its 10 000-sample
//! measurement phase. This module supplies everything the scheduler needs to
//! keep adapting as traffic shifts, *without* churning under stationary
//! load:
//!
//! * [`AdaptationConfig`] — epoch length, drift/contention triggers,
//!   hysteresis, and a repartition budget.
//! * [`total_variation`] — windowed histogram distance between the epoch's
//!   key histogram and the histogram that produced the current partition.
//! * [`projected_imbalance`] — the load imbalance the *current* partition
//!   would suffer under the epoch's key distribution. This is the hysteresis
//!   gate: a noisy histogram distance alone never triggers a repartition
//!   unless the current partition is actually projected to be imbalanced,
//!   so stationary load (which keeps the partition balanced) provably does
//!   not churn.
//! * [`ContentionSource`] / [`ContentionSample`] — the STM telemetry feed:
//!   cumulative commit/abort totals plus per-key-range abort counts, diffed
//!   per epoch by the scheduler.
//! * [`AdaptationEvent`] / [`AdaptationCause`] — the adaptation log entries
//!   surfaced through the facade's stats view.

use crate::cdf::PiecewiseCdf;
use crate::histogram::Histogram;
use crate::partition::KeyPartition;

/// Configuration of the continuous adaptation plane (see the module docs
/// for how the pieces interact).
#[derive(Debug, Clone)]
pub struct AdaptationConfig {
    /// Observations per adaptation epoch: every `interval` sampled keys the
    /// scheduler evaluates the drift and contention triggers.
    pub interval: u64,
    /// Total-variation distance (in `[0, 1]`) between the epoch histogram
    /// and the current partition's reference histogram above which the key
    /// distribution counts as drifted. A drifted epoch only *arms* the
    /// trigger; the repartition fires when the following epoch drifts the
    /// same way (within this distance of the armed histogram), so an
    /// oscillating load never confirms (see the scheduler's drift
    /// confirmation).
    pub drift_threshold: f64,
    /// Projected max-over-mean load imbalance of the *current* partition
    /// under the epoch distribution that must also be exceeded before a
    /// drift repartition fires — the hysteresis gate that keeps stationary
    /// load from churning on sampling noise.
    pub imbalance_trigger: f64,
    /// Epoch STM aborts-per-commit ratio above which contention alone
    /// triggers a repartition.
    pub contention_trigger: f64,
    /// Multiplier over the post-adaptation baseline ratio the epoch
    /// contention must additionally exceed (hysteresis for the contention
    /// trigger).
    pub contention_hysteresis: f64,
    /// Extra histogram weight per observed STM abort in a key range, folded
    /// into the repartitioning histogram so contended ranges are narrowed
    /// beyond what key frequency alone would do. `0.0` disables abort
    /// weighting.
    pub abort_weight: f64,
    /// Maximum number of post-initial repartitions (`None` = unlimited).
    /// Once exhausted the scheduler stops sampling entirely, restoring the
    /// paper's zero-overhead steady state. Elastic resizes consume the same
    /// budget (a resize *is* a partition republish).
    pub max_repartitions: Option<usize>,
    /// Capacity of the adaptation-log ring (oldest entries evicted). At
    /// least 1.
    pub log_capacity: usize,
    /// Queued tasks per active worker above which the pool counts as
    /// *saturated* — the grow side of the elastic controller (only
    /// meaningful when the scheduler has a worker range wider than one
    /// size).
    pub saturation_backlog: f64,
    /// Epoch idle-wakeup fraction — idle polls over idle polls +
    /// [`PoolSample::busy_wakeups`], both counted per wakeup so the units
    /// match — above which the marginal worker's utility counts as
    /// negative: the shrink side of the elastic controller. In `(0, 1]`.
    pub idle_shrink_threshold: f64,
    /// Epoch STM aborts-per-commit ratio above which growing the pool is
    /// vetoed: adding workers under contention raises abort cost instead of
    /// throughput ("On the Cost of Concurrency in TM").
    pub growth_contention_ceiling: f64,
    /// Epoch stolen-tasks-per-executed-task ratio above which chronic
    /// stealing counts as imbalance evidence and triggers a repartition
    /// (two-epoch confirmation, like the drift trigger).
    pub steal_trigger: f64,
}

/// Default adaptation-log ring capacity (see
/// [`AdaptationConfig::log_capacity`]).
pub const DEFAULT_LOG_CAPACITY: usize = 256;

/// Nanoseconds of parked time that count as one idle-poll equivalent in
/// the controller's idle fraction — the backoff's deepest sleep interval
/// (`katme_queue::Backoff` caps its sleeps at 500 µs), i.e. the cadence at
/// which a non-parking idle worker would have emitted idle polls.
pub const PARK_IDLE_QUANTUM_NANOS: u64 = 500_000;

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            interval: 8_192,
            drift_threshold: 0.15,
            imbalance_trigger: 1.2,
            contention_trigger: 0.5,
            contention_hysteresis: 2.0,
            abort_weight: 1.0,
            max_repartitions: None,
            log_capacity: DEFAULT_LOG_CAPACITY,
            saturation_backlog: 32.0,
            idle_shrink_threshold: 0.5,
            growth_contention_ceiling: 0.5,
            steal_trigger: 0.25,
        }
    }
}

impl AdaptationConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the epoch length in observations (clamped to at least 1).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// Set the histogram-distance trigger (clamped into `(0, 1]`).
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set the projected-imbalance hysteresis gate (clamped to at least 1).
    pub fn with_imbalance_trigger(mut self, imbalance: f64) -> Self {
        self.imbalance_trigger = imbalance.max(1.0);
        self
    }

    /// Set the epoch contention-ratio trigger.
    pub fn with_contention_trigger(mut self, ratio: f64) -> Self {
        self.contention_trigger = ratio.max(0.0);
        self
    }

    /// Set the contention hysteresis multiplier (clamped to at least 1).
    pub fn with_contention_hysteresis(mut self, factor: f64) -> Self {
        self.contention_hysteresis = factor.max(1.0);
        self
    }

    /// Set the per-abort histogram weight (negative values clamp to 0).
    pub fn with_abort_weight(mut self, weight: f64) -> Self {
        self.abort_weight = weight.max(0.0);
        self
    }

    /// Cap the number of post-initial repartitions.
    pub fn with_max_repartitions(mut self, cap: Option<usize>) -> Self {
        self.max_repartitions = cap;
        self
    }

    /// Set the adaptation-log ring capacity (clamped to at least 1).
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity.max(1);
        self
    }

    /// Set the queued-tasks-per-worker saturation level that arms the grow
    /// trigger (negative values clamp to 0).
    pub fn with_saturation_backlog(mut self, backlog: f64) -> Self {
        self.saturation_backlog = backlog.max(0.0);
        self
    }

    /// Set the idle-poll fraction that arms the shrink trigger (clamped
    /// into `(0, 1]`).
    pub fn with_idle_shrink_threshold(mut self, fraction: f64) -> Self {
        self.idle_shrink_threshold = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set the abort-ratio ceiling above which growth is vetoed (negative
    /// values clamp to 0).
    pub fn with_growth_contention_ceiling(mut self, ratio: f64) -> Self {
        self.growth_contention_ceiling = ratio.max(0.0);
        self
    }

    /// Set the stolen-per-executed ratio that counts as chronic stealing
    /// (negative values clamp to 0).
    pub fn with_steal_trigger(mut self, ratio: f64) -> Self {
        self.steal_trigger = ratio.max(0.0);
        self
    }
}

/// Why an adaptation (partition publish) fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptationCause {
    /// The first adaptation, at the end of the sampling phase (the paper's
    /// one-shot switch from the fixed to the PD-partition).
    Initial,
    /// Unconditional periodic re-adaptation
    /// ([`crate::AdaptiveKeyScheduler::with_re_adaptation`]).
    Periodic,
    /// The epoch key distribution drifted past the histogram-distance
    /// threshold *and* the current partition was projected imbalanced.
    KeyDrift {
        /// Total-variation distance from the reference histogram.
        distance: f64,
        /// Projected imbalance of the old partition under the epoch
        /// distribution.
        projected_imbalance: f64,
    },
    /// The epoch STM contention ratio exceeded the trigger and its
    /// hysteresis band.
    Contention {
        /// Epoch aborts per committed transaction.
        ratio: f64,
    },
    /// Chronic work stealing: the epoch's stolen-per-executed ratio exceeded
    /// [`AdaptationConfig::steal_trigger`] in two consecutive epochs, so the
    /// stealing was treated as routed-load imbalance evidence instead of
    /// being allowed to mask it.
    StealImbalance {
        /// Epoch stolen tasks per executed task.
        ratio: f64,
    },
    /// The elastic concurrency controller changed the worker-pool size (the
    /// published partition routes to `to` workers).
    Resize {
        /// Active workers before the resize.
        from: usize,
        /// Active workers after the resize.
        to: usize,
    },
    /// The predictive cost plane adopted the plan with the best net expected
    /// benefit: its trust-discounted predicted saving over the next epoch
    /// exceeded the margin-adjusted cost of performing the swap itself (see
    /// [`crate::cost`]). Both numbers are in task-equivalents.
    CostModel {
        /// Trust-discounted predicted cost saving of the adopted plan over
        /// keeping the current configuration for the next epoch.
        predicted_gain: f64,
        /// Margin-adjusted one-time cost of the swap (publish latency,
        /// thread spawn/retire time, telemetry rebucket, residual drain),
        /// converted to task-equivalents at the observed service rate.
        swap_cost: f64,
    },
    /// Explicitly requested (`adapt_now` / trace seeding).
    Forced,
}

impl std::fmt::Display for AdaptationCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptationCause::Initial => f.write_str("initial"),
            AdaptationCause::Periodic => f.write_str("periodic"),
            AdaptationCause::KeyDrift {
                distance,
                projected_imbalance,
            } => write!(
                f,
                "key-drift(tv={distance:.3}, imbalance={projected_imbalance:.2})"
            ),
            AdaptationCause::Contention { ratio } => write!(f, "contention(ratio={ratio:.3})"),
            AdaptationCause::StealImbalance { ratio } => {
                write!(f, "steal-imbalance(ratio={ratio:.3})")
            }
            AdaptationCause::Resize { from, to } => write!(f, "resize({from}->{to})"),
            AdaptationCause::CostModel {
                predicted_gain,
                swap_cost,
            } => write!(
                f,
                "cost-model(gain={predicted_gain:.1}, swap={swap_cost:.1})"
            ),
            AdaptationCause::Forced => f.write_str("forced"),
        }
    }
}

/// One entry of the scheduler's adaptation log.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationEvent {
    /// Partition-table generation this adaptation published.
    pub generation: u64,
    /// What triggered it.
    pub cause: AdaptationCause,
    /// Total keys the scheduler had observed when it fired.
    pub observed: u64,
    /// Expected max-over-mean load imbalance of the *previous* partition
    /// under the distribution that triggered the adaptation.
    pub before_imbalance: f64,
    /// The same metric for the newly published partition (1.0 = perfectly
    /// balanced).
    pub after_imbalance: f64,
}

/// Cumulative STM contention counters, diffed per epoch by the scheduler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentionSample {
    /// Committed transactions so far.
    pub commits: u64,
    /// Aborted attempts so far.
    pub aborts: u64,
    /// Cumulative per-key-range abort counts as `(lo, hi, aborts)`, in key
    /// order. May be empty when the source has no range attribution.
    pub ranges: Vec<(u64, u64, u64)>,
}

/// Feed of STM contention telemetry for the adaptation plane. Implemented
/// for closures; the facade wires a [`ContentionSource`] backed by the STM's
/// key-range telemetry into the adaptive scheduler.
pub trait ContentionSource: Send + Sync {
    /// Current cumulative counters (monotonic across calls).
    fn sample(&self) -> ContentionSample;
}

impl<F> ContentionSource for F
where
    F: Fn() -> ContentionSample + Send + Sync,
{
    fn sample(&self) -> ContentionSample {
        self()
    }
}

/// Point-in-time executor-pool telemetry consumed by the elastic
/// concurrency controller: cumulative per-worker counters (diffed per epoch
/// by the scheduler) plus the instantaneous queue depths and active width.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolSample {
    /// Worker slots currently active (routing width of the pool).
    pub active: usize,
    /// Total worker slots the pool can grow to.
    pub capacity: usize,
    /// Cumulative tasks each worker drained from its *own* queue (routed
    /// load; stolen and adopted work is counted separately).
    pub per_worker_completed: Vec<u64>,
    /// Cumulative tasks executed after being stolen from an active peer.
    pub stolen: u64,
    /// Cumulative tasks executed after being adopted from a retired
    /// worker's residual queue.
    pub adopted: u64,
    /// Cumulative polls that found no work, summed over workers.
    pub idle_polls: u64,
    /// Cumulative wakeups that found work, summed over workers. Idle and
    /// busy wakeups share a unit, so `idle / (idle + busy)` is the pool's
    /// idle fraction — the elastic controller's shrink signal.
    pub busy_wakeups: u64,
    /// Cumulative condvar parks, summed over workers: each park is an idle
    /// period the worker spent blocked (zero CPU) instead of backoff
    /// polling.
    pub parks: u64,
    /// Cumulative nanoseconds spent parked, summed over workers. The
    /// controller's idle fraction weighs parked *time* (converted to
    /// idle-poll equivalents via [`PARK_IDLE_QUANTUM_NANOS`]) rather than
    /// park events: one 25 ms park covers the idle time of dozens of
    /// backoff polls, and counting it as one event would make a parked —
    /// i.e. maximally idle — pool look busy.
    pub park_nanos: u64,
    /// Instantaneous depth of every worker queue (length = `capacity`).
    pub queue_depths: Vec<usize>,
    /// Instantaneous backlog of the central dispatcher queue feeding this
    /// pool (0 when the model has no dispatcher). A saturated dispatcher is
    /// demand the workers have not seen yet, so it counts as part of
    /// [`PoolSample::backlog`] — the grow signal — instead of being
    /// invisible to the controller.
    pub dispatcher_backlog: usize,
    /// Cumulative nanoseconds the pool spent spawning and retiring worker
    /// threads across resizes (spawn time measured around the thread spawn,
    /// retire time from retirement request to the worker's exit). The cost
    /// plane diffs this per epoch to calibrate per-worker resize cost.
    pub resize_nanos: u64,
    /// Cumulative workers spawned or retired (the denominator for
    /// [`PoolSample::resize_nanos`]).
    pub resized_workers: u64,
}

impl PoolSample {
    /// Cumulative tasks executed across all origins.
    pub fn executed(&self) -> u64 {
        self.per_worker_completed.iter().sum::<u64>() + self.stolen + self.adopted
    }

    /// Tasks currently queued across all workers, plus whatever is still
    /// waiting in the central dispatcher's queue (centralized model).
    pub fn backlog(&self) -> usize {
        self.queue_depths.iter().sum::<usize>() + self.dispatcher_backlog
    }
}

/// The executor side of the elastic execution plane: the adaptive scheduler
/// reads pool telemetry through [`PoolController::sample`] and commands
/// worker-count changes through [`PoolController::resize`] *after*
/// publishing the matching partition generation, so routing width and pool
/// width change together. Implemented by the executor's worker set and
/// handed to the scheduler via
/// [`crate::scheduler::Scheduler::attach_pool`].
pub trait PoolController: Send + Sync {
    /// Current cumulative pool telemetry.
    fn sample(&self) -> PoolSample;

    /// Grow or shrink the active worker count to `workers` (clamped into
    /// the pool's capacity). Must tolerate redundant calls.
    fn resize(&self, workers: usize);
}

/// Total-variation distance between two histograms over the same geometry:
/// half the L1 distance of the normalized cell masses, in `[0, 1]`. Returns
/// 0 when either histogram is empty (no evidence of drift).
///
/// # Panics
/// Panics when bounds or cell counts differ.
pub fn total_variation(a: &Histogram, b: &Histogram) -> f64 {
    assert_eq!(a.bounds(), b.bounds(), "histogram bounds differ");
    assert_eq!(a.cells(), b.cells(), "histogram cell counts differ");
    if a.total() == 0 || b.total() == 0 {
        return 0.0;
    }
    let (ta, tb) = (a.total() as f64, b.total() as f64);
    0.5 * a
        .counts()
        .iter()
        .zip(b.counts())
        .map(|(&ca, &cb)| (ca as f64 / ta - cb as f64 / tb).abs())
        .sum::<f64>()
}

/// Expected max-over-mean load imbalance of `partition` under the key
/// distribution estimated from `hist` (1.0 = perfectly balanced; `workers`
/// = everything on one worker). Returns 1.0 for an empty histogram.
pub fn projected_imbalance(partition: &KeyPartition, hist: &Histogram) -> f64 {
    if hist.total() == 0 {
        return 1.0;
    }
    let cdf = PiecewiseCdf::from_histogram(hist);
    imbalance_under(partition, &cdf)
}

/// Max-over-mean imbalance of `partition` under an already-built CDF.
pub fn imbalance_under(partition: &KeyPartition, cdf: &PiecewiseCdf) -> f64 {
    let shares = partition.expected_shares(cdf);
    let max = shares.iter().cloned().fold(0.0f64, f64::max);
    max * shares.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBounds;

    fn bounds() -> KeyBounds {
        KeyBounds::new(0, 999)
    }

    #[test]
    fn total_variation_is_zero_for_identical_and_one_for_disjoint() {
        let low = Histogram::from_samples(bounds(), 10, &(0..500).collect::<Vec<_>>());
        let low2 = Histogram::from_samples(bounds(), 10, &(0..500).collect::<Vec<_>>());
        let high = Histogram::from_samples(bounds(), 10, &(500..1000).collect::<Vec<_>>());
        assert!(total_variation(&low, &low2) < 1e-12);
        assert!((total_variation(&low, &high) - 1.0).abs() < 1e-12);
        let empty = Histogram::new(bounds(), 10);
        assert_eq!(total_variation(&low, &empty), 0.0);
    }

    #[test]
    fn total_variation_detects_partial_shift() {
        let mut a = Histogram::new(bounds(), 10);
        let mut b = Histogram::new(bounds(), 10);
        for key in 0..1000u64 {
            a.record(key % 500); // low half
            b.record(250 + key % 500); // middle half: 50% overlap
        }
        let tv = total_variation(&a, &b);
        assert!(tv > 0.3 && tv < 0.7, "tv {tv}");
    }

    #[test]
    fn projected_imbalance_flags_a_mismatched_partition() {
        let partition = KeyPartition::equal_width(bounds(), 4);
        let skewed = Histogram::from_samples(
            bounds(),
            100,
            &(0..10_000u64).map(|i| i % 100).collect::<Vec<_>>(),
        );
        // Everything lands on worker 0: imbalance ≈ workers.
        assert!(projected_imbalance(&partition, &skewed) > 3.5);
        let uniform = Histogram::from_samples(
            bounds(),
            100,
            &(0..10_000u64).map(|i| i % 1_000).collect::<Vec<_>>(),
        );
        let balanced = projected_imbalance(&partition, &uniform);
        assert!(balanced < 1.1, "balanced {balanced}");
        assert_eq!(
            projected_imbalance(&partition, &Histogram::new(bounds(), 10)),
            1.0
        );
    }

    #[test]
    fn config_builder_clamps_into_valid_ranges() {
        let config = AdaptationConfig::new()
            .with_interval(0)
            .with_drift_threshold(7.0)
            .with_imbalance_trigger(0.2)
            .with_contention_hysteresis(0.0)
            .with_abort_weight(-2.0)
            .with_max_repartitions(Some(3))
            .with_log_capacity(0)
            .with_saturation_backlog(-4.0)
            .with_idle_shrink_threshold(3.0)
            .with_growth_contention_ceiling(-1.0)
            .with_steal_trigger(-0.5);
        assert_eq!(config.interval, 1);
        assert_eq!(config.drift_threshold, 1.0);
        assert_eq!(config.imbalance_trigger, 1.0);
        assert_eq!(config.contention_hysteresis, 1.0);
        assert_eq!(config.abort_weight, 0.0);
        assert_eq!(config.max_repartitions, Some(3));
        assert_eq!(config.log_capacity, 1);
        assert_eq!(config.saturation_backlog, 0.0);
        assert_eq!(config.idle_shrink_threshold, 1.0);
        assert_eq!(config.growth_contention_ceiling, 0.0);
        assert_eq!(config.steal_trigger, 0.0);
    }

    #[test]
    fn closures_are_contention_sources() {
        let source = || ContentionSample {
            commits: 10,
            aborts: 2,
            ranges: vec![(0, 9, 2)],
        };
        let sample = ContentionSource::sample(&source);
        assert_eq!(sample.commits, 10);
        assert_eq!(sample.ranges.len(), 1);
    }

    #[test]
    fn cause_display_is_stable() {
        assert_eq!(AdaptationCause::Initial.to_string(), "initial");
        assert!(AdaptationCause::KeyDrift {
            distance: 0.5,
            projected_imbalance: 2.0
        }
        .to_string()
        .contains("tv=0.500"));
        assert!(AdaptationCause::Contention { ratio: 1.25 }
            .to_string()
            .contains("1.250"));
        assert_eq!(
            AdaptationCause::Resize { from: 8, to: 3 }.to_string(),
            "resize(8->3)"
        );
        assert!(AdaptationCause::StealImbalance { ratio: 0.4 }
            .to_string()
            .contains("0.400"));
        let cost = AdaptationCause::CostModel {
            predicted_gain: 120.5,
            swap_cost: 6.25,
        }
        .to_string();
        assert!(
            cost.contains("gain=120.5") && cost.contains("swap=6.2"),
            "{cost}"
        );
    }

    #[test]
    fn pool_sample_totals() {
        let sample = PoolSample {
            active: 2,
            capacity: 4,
            per_worker_completed: vec![10, 20, 0, 0],
            stolen: 5,
            adopted: 3,
            idle_polls: 7,
            busy_wakeups: 9,
            parks: 2,
            park_nanos: 50_000_000,
            queue_depths: vec![1, 2, 0, 4],
            dispatcher_backlog: 3,
            resize_nanos: 1_000,
            resized_workers: 2,
        };
        assert_eq!(sample.executed(), 38);
        assert_eq!(
            sample.backlog(),
            10,
            "dispatcher backlog counts as demand the workers have not seen"
        );
    }
}
