//! The executor: worker pool, per-worker task queues and dispatch.
//!
//! This is the "parallel executors" model of Figure 1(c): each producer
//! thread calls [`Executor::submit`] directly (so dispatch runs in the
//! producer, with no central dispatcher thread), the chosen scheduler maps
//! the transaction key to a worker, and the task parameters are pushed onto
//! that worker's queue. Worker threads pull from their own queue, execute the
//! task (typically a transaction against a shared data structure), and count
//! completions.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use katme_queue::{Backoff, QueueKind, TaskQueue};

use crate::key::TxnKey;
use crate::scheduler::Scheduler;
use crate::stats::{LoadBalance, WorkerCounters};

/// Configuration of an [`Executor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Which task-queue implementation to use.
    pub queue: QueueKind,
    /// Whether workers drain their queues before exiting at shutdown.
    pub drain_on_shutdown: bool,
    /// Whether an idle worker may steal from other workers' queues
    /// (the paper discusses work stealing as the alternative load-balancing
    /// mechanism; off by default to match its experiments).
    pub work_stealing: bool,
    /// Back-pressure: producers calling [`Executor::submit`] yield while the
    /// target queue holds at least this many tasks. `None` disables the
    /// bound. The paper's producers run unthrottled for a fixed wall-clock
    /// window; the bound keeps memory use sane on small hosts without
    /// changing steady-state behaviour.
    pub max_queue_depth: Option<usize>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            queue: QueueKind::TwoLock,
            drain_on_shutdown: false,
            work_stealing: false,
            max_queue_depth: Some(10_000),
        }
    }
}

impl ExecutorConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Enable or disable queue draining at shutdown.
    pub fn with_drain_on_shutdown(mut self, drain: bool) -> Self {
        self.drain_on_shutdown = drain;
        self
    }

    /// Enable or disable work stealing.
    pub fn with_work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }

    /// Set (or clear) the producer back-pressure bound.
    pub fn with_max_queue_depth(mut self, depth: Option<usize>) -> Self {
        self.max_queue_depth = depth;
        self
    }
}

/// Why a submission was rejected. The task is handed back so the producer
/// can retry, reroute, or drop it deliberately.
pub enum SubmitError<T> {
    /// The destination queue is at `max_queue_depth`; non-blocking submits
    /// return instead of waiting.
    QueueFull(T),
    /// The executor has been stopped; no worker will ever drain the queue
    /// again, so enqueueing would leak the task.
    ShuttingDown(T),
}

impl<T> SubmitError<T> {
    /// Recover the rejected task.
    pub fn into_task(self) -> T {
        match self {
            SubmitError::QueueFull(task) | SubmitError::ShuttingDown(task) => task,
        }
    }

    /// True when the rejection was due to back-pressure.
    pub fn is_queue_full(&self) -> bool {
        matches!(self, SubmitError::QueueFull(_))
    }

    /// True when the rejection was due to shutdown.
    pub fn is_shutting_down(&self) -> bool {
        matches!(self, SubmitError::ShuttingDown(_))
    }
}

impl<T> std::fmt::Debug for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("SubmitError::QueueFull(..)"),
            SubmitError::ShuttingDown(_) => f.write_str("SubmitError::ShuttingDown(..)"),
        }
    }
}

impl<T> std::fmt::Display for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("task queue is at its depth bound"),
            SubmitError::ShuttingDown(_) => f.write_str("executor is shutting down"),
        }
    }
}

impl<T> std::error::Error for SubmitError<T> {}

/// Summary returned by [`Executor::shutdown`].
#[derive(Debug, Clone)]
pub struct ExecutorReport {
    /// Completed tasks per worker.
    pub load: LoadBalance,
    /// Total tasks executed after being stolen from another queue.
    pub stolen: u64,
    /// Total polls that found no work.
    pub idle_polls: u64,
    /// Tasks left unexecuted in the queues (only non-zero when
    /// `drain_on_shutdown` is false).
    pub abandoned: u64,
}

impl ExecutorReport {
    /// Total completed tasks.
    pub fn completed(&self) -> u64 {
        self.load.total()
    }
}

/// Intake gate for a queue that is drained by threads which must eventually
/// exit: pairs an accepting flag with an in-flight submission count so a
/// producer's check-then-push and a consumer's empty-then-exit cannot
/// interleave into a stranded task.
///
/// Protocol — producer: [`ShutdownGate::enter`] (returns `false` once
/// closed), push, [`ShutdownGate::exit`]. Consumer: read
/// [`ShutdownGate::may_finish`] *before* the final pop; if the pop still
/// finds nothing, it is safe to stop. Any submission that raised the
/// in-flight count before the consumer read zero has either already pushed
/// (the pop sees it) or will observe the closed gate and bail.
#[derive(Debug, Default)]
pub struct ShutdownGate {
    accepting: AtomicBool,
    inflight: AtomicUsize,
}

impl ShutdownGate {
    /// An open gate.
    pub fn new() -> Self {
        ShutdownGate {
            accepting: AtomicBool::new(true),
            inflight: AtomicUsize::new(0),
        }
    }

    /// True until [`ShutdownGate::close`] is called.
    pub fn is_open(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }

    /// Close the gate: subsequent [`ShutdownGate::enter`] calls fail.
    /// Idempotent; callable from any thread.
    pub fn close(&self) {
        self.accepting.store(false, Ordering::SeqCst);
    }

    /// Begin a submission. Returns `false` (leaving no trace) if the gate is
    /// closed; on `true` the caller must push and then call
    /// [`ShutdownGate::exit`].
    pub fn enter(&self) -> bool {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        if !self.accepting.load(Ordering::SeqCst) {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Finish a submission begun with a successful [`ShutdownGate::enter`].
    pub fn exit(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    /// True when the gate is closed and no submission is mid-push. Read this
    /// *before* the final emptiness check of the guarded queue.
    pub fn may_finish(&self) -> bool {
        !self.is_open() && self.inflight.load(Ordering::SeqCst) == 0
    }
}

/// A pool of worker threads fed by per-worker task queues through a
/// key-based (or round-robin) scheduler.
pub struct Executor<T: Send + 'static> {
    queues: Vec<Arc<dyn TaskQueue<T>>>,
    scheduler: Arc<dyn Scheduler>,
    counters: Arc<Vec<WorkerCounters>>,
    /// Guards intake against the draining workers' exit (see [`ShutdownGate`]).
    gate: Arc<ShutdownGate>,
    handles: Vec<JoinHandle<()>>,
    config: ExecutorConfig,
}

impl<T: Send + 'static> Executor<T> {
    /// Start a worker pool.
    ///
    /// * `scheduler` decides which worker each submitted task goes to and
    ///   fixes the number of workers.
    /// * `handler` is invoked by worker threads as `handler(worker_index,
    ///   task)`; it typically runs one STM transaction.
    pub fn start<F>(config: ExecutorConfig, scheduler: Arc<dyn Scheduler>, handler: F) -> Self
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        let workers = scheduler.workers();
        assert!(workers > 0, "executor needs at least one worker");
        let handler = Arc::new(handler);
        let queues: Vec<Arc<dyn TaskQueue<T>>> = (0..workers)
            .map(|_| Arc::from(config.queue.build::<T>()))
            .collect();
        let counters = WorkerCounters::for_workers(workers);
        let gate = Arc::new(ShutdownGate::new());

        let handles = (0..workers)
            .map(|index| {
                let queues = queues.clone();
                let counters = Arc::clone(&counters);
                let gate = Arc::clone(&gate);
                let handler = Arc::clone(&handler);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("katme-worker-{index}"))
                    .spawn(move || {
                        worker_loop(index, &queues, &counters, &gate, &config, &*handler)
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();

        Executor {
            queues,
            scheduler,
            counters,
            gate,
            handles,
            config,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The scheduler in use.
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.scheduler
    }

    /// Submit a task with the given transaction key, blocking while the
    /// destination queue is at its depth bound. Called from producer threads;
    /// runs the scheduler inline (Figure 1(c): the executor is part of the
    /// producer). Returns [`SubmitError::ShuttingDown`] — promptly, even from
    /// inside the back-pressure wait — once [`Executor::stop`] or shutdown
    /// has been initiated, instead of enqueueing onto a queue no worker will
    /// drain again.
    pub fn submit_blocking(&self, key: TxnKey, task: T) -> Result<(), SubmitError<T>> {
        let worker = self.scheduler.dispatch(key);
        self.submit_to_blocking(worker, task)
    }

    /// Non-blocking variant of [`Executor::submit_blocking`]: rejects with
    /// [`SubmitError::QueueFull`] instead of waiting out back-pressure.
    pub fn try_submit(&self, key: TxnKey, task: T) -> Result<(), SubmitError<T>> {
        let worker = self.scheduler.dispatch(key);
        self.try_submit_to(worker, task)
    }

    /// Submit directly to a specific worker, bypassing the scheduler, with
    /// blocking back-pressure (see [`Executor::submit_blocking`]).
    pub fn submit_to_blocking(&self, worker: usize, task: T) -> Result<(), SubmitError<T>> {
        let queue = &self.queues[worker];
        if let Some(depth) = self.config.max_queue_depth {
            let mut backoff = Backoff::new();
            while queue.len() >= depth {
                if !self.gate.is_open() {
                    return Err(SubmitError::ShuttingDown(task));
                }
                backoff.snooze();
            }
        }
        self.push_guarded(queue, task)
    }

    /// Publish a task through the [`ShutdownGate`], which closes the
    /// check-then-push race against draining workers — a submission that
    /// returns `Ok` is guaranteed to be executed (or counted as abandoned)
    /// rather than stranded on a dead queue.
    fn push_guarded(&self, queue: &Arc<dyn TaskQueue<T>>, task: T) -> Result<(), SubmitError<T>> {
        if !self.gate.enter() {
            return Err(SubmitError::ShuttingDown(task));
        }
        queue.push(task);
        self.gate.exit();
        Ok(())
    }

    /// Non-blocking variant of [`Executor::submit_to_blocking`].
    pub fn try_submit_to(&self, worker: usize, task: T) -> Result<(), SubmitError<T>> {
        if !self.gate.is_open() {
            return Err(SubmitError::ShuttingDown(task));
        }
        let queue = &self.queues[worker];
        if let Some(depth) = self.config.max_queue_depth {
            if queue.len() >= depth {
                return Err(SubmitError::QueueFull(task));
            }
        }
        self.push_guarded(queue, task)
    }

    /// Submit a task with the given transaction key.
    #[deprecated(
        since = "0.1.0",
        note = "use `katme::Runtime::submit` (or `Executor::submit_blocking`), which reports \
                back-pressure and shutdown instead of silently spinning or dropping"
    )]
    pub fn submit(&self, key: TxnKey, task: T) {
        let worker = self.scheduler.dispatch(key);
        if let Err(err) = self.submit_to_blocking(worker, task) {
            // Legacy contract: the task always lands on a queue, so it is
            // either executed or reported as abandoned at shutdown — it
            // never silently vanishes.
            self.queues[worker].push(err.into_task());
        }
    }

    /// Submit a task directly to a specific worker, bypassing the scheduler.
    #[deprecated(
        since = "0.1.0",
        note = "use `Executor::submit_to_blocking`, which reports back-pressure and shutdown \
                instead of silently spinning or dropping"
    )]
    pub fn submit_to(&self, worker: usize, task: T) {
        if let Err(err) = self.submit_to_blocking(worker, task) {
            // Legacy contract: see `submit` above.
            self.queues[worker].push(err.into_task());
        }
    }

    /// Completed tasks so far, summed over workers.
    pub fn completed(&self) -> u64 {
        self.counters.iter().map(|c| c.completed()).sum()
    }

    /// Completed tasks per worker.
    pub fn per_worker_completed(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.completed()).collect()
    }

    /// Current queue lengths (diagnostics / back-pressure tuning).
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.len()).collect()
    }

    /// True while the executor accepts and executes tasks.
    pub fn is_running(&self) -> bool {
        self.gate.is_open()
    }

    /// Initiate shutdown without waiting for the workers: new submissions are
    /// rejected with [`SubmitError::ShuttingDown`], producers blocked on
    /// back-pressure return promptly, and workers exit (after draining when
    /// `drain_on_shutdown` is set). Call [`Executor::shutdown`] afterwards to
    /// join the workers and collect the report; `stop` itself is safe to call
    /// from any thread, any number of times.
    pub fn stop(&self) {
        self.gate.close();
    }

    /// Stop the workers and collect the final counters.
    pub fn shutdown(mut self) -> ExecutorReport {
        self.gate.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let abandoned: u64 = self.queues.iter().map(|q| q.len() as u64).sum();
        ExecutorReport {
            load: LoadBalance::new(self.counters.iter().map(|c| c.completed()).collect()),
            stolen: self.counters.iter().map(|c| c.stolen()).sum(),
            idle_polls: self.counters.iter().map(|c| c.idle_polls()).sum(),
            abandoned,
        }
    }
}

impl<T: Send + 'static> Drop for Executor<T> {
    /// Dropping an executor without calling [`Executor::shutdown`] still
    /// stops and joins the worker threads so no run leaks threads.
    fn drop(&mut self) {
        self.gate.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T, F>(
    index: usize,
    queues: &[Arc<dyn TaskQueue<T>>],
    counters: &[WorkerCounters],
    gate: &ShutdownGate,
    config: &ExecutorConfig,
    handler: &F,
) where
    T: Send + 'static,
    F: Fn(usize, T) + Send + Sync,
{
    let mut backoff = Backoff::new();
    loop {
        let running_now = gate.is_open();
        if !running_now && !config.drain_on_shutdown {
            // The paper's driver "stops the producer and worker threads after
            // the test period": without draining, whatever is still queued is
            // abandoned (and reported as such).
            return;
        }
        // Draining exit handshake (see ShutdownGate): must be read *before*
        // the pop below.
        let may_exit = gate.may_finish();

        if let Some(task) = queues[index].try_pop() {
            handler(index, task);
            counters[index].record_completed(1);
            backoff.reset();
            continue;
        }

        if config.work_stealing {
            // Steal from the longest other queue, which is the cheapest
            // approximation of the "grab work from other queues" policy the
            // paper cites (Cilk-style work stealing).
            let victim = (0..queues.len())
                .filter(|&i| i != index)
                .max_by_key(|&i| queues[i].len());
            if let Some(victim) = victim {
                if let Some(task) = queues[victim].try_pop() {
                    handler(index, task);
                    counters[index].record_completed(1);
                    counters[index].record_steal();
                    backoff.reset();
                    continue;
                }
            }
        }

        if may_exit {
            // Drain mode, empty queue, no in-flight submissions: done.
            return;
        }
        if !running_now {
            // Stopped but a submission is mid-push; check again shortly.
            backoff.snooze();
            continue;
        }
        counters[index].record_idle_poll();
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBounds;
    use crate::scheduler::{FixedKeyScheduler, RoundRobinScheduler, SchedulerKind};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn counting_executor(
        scheduler: Arc<dyn Scheduler>,
        config: ExecutorConfig,
    ) -> (Executor<u64>, Arc<AtomicU64>) {
        let sum = Arc::new(AtomicU64::new(0));
        let sum_clone = Arc::clone(&sum);
        let exec = Executor::start(config, scheduler, move |_worker, task: u64| {
            sum_clone.fetch_add(task, Ordering::Relaxed);
        });
        (exec, sum)
    }

    fn drain_config() -> ExecutorConfig {
        ExecutorConfig::default().with_drain_on_shutdown(true)
    }

    #[test]
    fn executes_every_submitted_task() {
        let scheduler = Arc::new(RoundRobinScheduler::new(3));
        let (exec, sum) = counting_executor(scheduler, drain_config());
        let n = 1_000u64;
        for i in 1..=n {
            exec.submit_blocking(i, i).unwrap();
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), n);
        assert_eq!(report.abandoned, 0);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn fixed_scheduler_routes_tasks_to_owning_worker() {
        let scheduler = Arc::new(FixedKeyScheduler::new(4, KeyBounds::new(0, 99)));
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let seen_clone = Arc::clone(&seen);
        let exec = Executor::start(drain_config(), scheduler, move |worker, key: u64| {
            // Record which worker handled which key range.
            assert_eq!(worker, (key / 25) as usize, "key {key} on wrong worker");
            seen_clone[worker].fetch_add(1, Ordering::Relaxed);
        });
        for key in 0..100u64 {
            exec.submit_blocking(key, key).unwrap();
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), 100);
        for w in 0..4 {
            assert_eq!(seen[w].load(Ordering::Relaxed), 25);
        }
    }

    #[test]
    fn per_worker_counters_reflect_dispatch() {
        let scheduler = SchedulerKind::FixedKey.build(2, KeyBounds::new(0, 9));
        let (exec, _) = counting_executor(scheduler, drain_config());
        for _ in 0..50 {
            exec.submit_blocking(0, 1).unwrap(); // low half -> worker 0
        }
        for _ in 0..10 {
            exec.submit_blocking(9, 1).unwrap(); // high half -> worker 1
        }
        let report = exec.shutdown();
        assert_eq!(report.load.per_worker, vec![50, 10]);
        assert!(report.load.imbalance() > 1.5);
    }

    #[test]
    fn shutdown_without_drain_reports_abandoned_tasks() {
        // One worker, tasks that take a while: stop before the queue empties.
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default().with_drain_on_shutdown(false),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(2)),
        );
        for i in 0..200u64 {
            exec.submit_blocking(i, i).unwrap();
        }
        let report = exec.shutdown();
        assert!(
            report.completed() + report.abandoned >= 200,
            "tasks must be either completed or abandoned"
        );
        assert!(report.abandoned > 0, "some tasks should remain queued");
    }

    #[test]
    fn work_stealing_rescues_an_imbalanced_queue() {
        // Fixed partition over 2 workers but every key goes to worker 0;
        // with stealing enabled worker 1 should still execute some tasks.
        let scheduler = Arc::new(FixedKeyScheduler::new(2, KeyBounds::new(0, 99)));
        let exec = Executor::start(
            drain_config().with_work_stealing(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_micros(200)),
        );
        for _ in 0..500 {
            exec.submit_blocking(0, 0).unwrap(); // all keys in worker 0's range
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), 500);
        assert!(
            report.stolen > 0,
            "worker 1 should have stolen some tasks: {report:?}"
        );
    }

    #[test]
    fn back_pressure_bounds_queue_growth() {
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(50))
                .with_drain_on_shutdown(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_micros(50)),
        );
        for i in 0..500u64 {
            exec.submit_blocking(i, i).unwrap();
            assert!(
                exec.queue_lengths()[0] <= 51,
                "queue exceeded the back-pressure bound"
            );
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), 500);
    }

    #[test]
    fn try_submit_reports_queue_full_then_shutdown() {
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(2))
                .with_drain_on_shutdown(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(5)),
        );
        let mut saw_full = false;
        for i in 0..100u64 {
            match exec.try_submit(0, i) {
                Ok(()) => {}
                Err(err) => {
                    assert!(err.is_queue_full());
                    assert_eq!(err.into_task(), i, "rejected task is handed back");
                    saw_full = true;
                    break;
                }
            }
        }
        assert!(saw_full, "a depth bound of 2 must reject quickly");
        exec.stop();
        let err = exec.try_submit(0, 42).unwrap_err();
        assert!(err.is_shutting_down());
        exec.shutdown();
    }

    #[test]
    fn blocked_producer_returns_promptly_on_stop() {
        // One slow worker and a queue bound of 1: a third task blocks in
        // submit_blocking until stop() is called, then errors out instead of
        // pushing onto a queue nobody will drain (the old API span forever
        // and then enqueued anyway).
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Arc::new(Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(1))
                .with_drain_on_shutdown(false),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(800)),
        ));
        exec.submit_blocking(0, 1).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // worker picks up task 1
        exec.submit_blocking(0, 2).unwrap(); // fills the queue to its bound
        let producer = {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || exec.submit_blocking(0, 3))
        };
        std::thread::sleep(Duration::from_millis(100));
        exec.stop();
        let blocked_result = producer.join().unwrap();
        assert!(
            blocked_result.unwrap_err().is_shutting_down(),
            "blocked producer must observe shutdown promptly"
        );
        let exec = Arc::into_inner(exec).expect("producer clone dropped");
        let report = exec.shutdown();
        assert!(
            report.abandoned >= 1,
            "task 2 was never drained: {report:?}"
        );
    }

    #[test]
    fn concurrent_producers_all_get_through() {
        let scheduler = SchedulerKind::AdaptiveKey.build(4, KeyBounds::dict16());
        let (exec, sum) = counting_executor(scheduler, drain_config());
        let exec = Arc::new(exec);
        let producers = 4u64;
        let per_producer = 2_000u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    for i in 0..per_producer {
                        let key = (p * per_producer + i) % 65_536;
                        exec.submit_blocking(key, 1).unwrap();
                    }
                });
            }
        });
        let exec = Arc::into_inner(exec).expect("all producer clones dropped");
        let report = exec.shutdown();
        assert_eq!(report.completed(), producers * per_producer);
        assert_eq!(sum.load(Ordering::Relaxed), producers * per_producer);
    }
}
