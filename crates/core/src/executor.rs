//! The executor: worker pool, per-worker task queues and batched dispatch.
//!
//! This is the "parallel executors" model of Figure 1(c): each producer
//! thread calls [`Executor::submit_blocking`] (or, on the hot path,
//! [`Executor::submit_batch_blocking`]) directly — dispatch runs in the
//! producer, with no central dispatcher thread — the chosen scheduler maps
//! transaction keys to workers, and the task parameters are pushed onto the
//! workers' queues. Worker threads drain their own queue up to
//! [`ExecutorConfig::batch_size`] tasks per wakeup and execute each task
//! (typically a transaction against a shared data structure).
//!
//! The dispatch plane is *batch-first*: a batch submission runs the
//! scheduler once over the whole key slice
//! ([`Scheduler::dispatch_batch`]), groups the tasks into per-worker runs,
//! and crosses each worker queue with a single lock round-trip
//! ([`katme_queue::TaskQueue::push_batch`]) under a single
//! [`ShutdownGate`] enter/exit. The single-task API is the batch-of-one
//! special case, kept as a direct path so it pays no `Vec` round-trip.
//!
//! The executor is also the routing floor of the continuous adaptation
//! plane: an adaptive scheduler may republish its partition at any moment
//! (see [`crate::partition::PartitionTable`]), and the executor tolerates
//! that swap with no barrier — each submission routes against exactly one
//! generation snapshot and lands on exactly one queue, tasks enqueued under
//! the old generation keep draining on their original workers, and nothing
//! is lost or double-dispatched across the swap (only the *placement* of
//! later submissions changes). [`Executor::partition_generation`] exposes
//! the generation currently in effect.
//!
//! # The elastic execution plane
//!
//! Since the elastic refactor the pool is no longer fixed-size: queues and
//! worker threads are owned by a generation-scoped [`WorkerSet`] sized at
//! the scheduler's [`Scheduler::max_workers`] capacity, of which only the
//! first `active` slots are routed to. The adaptation plane changes the
//! active width through [`crate::drift::PoolController::resize`] — always
//! *after* publishing the matching partition generation, so routing width
//! and pool width move together. Growing spawns threads into inactive
//! slots; shrinking marks the trailing slots *retiring*: each retiring
//! worker drains its residual queue to empty and exits, and any straggler
//! a stale-snapshot dispatch lands on a retired queue afterwards is
//! *adopted* by the remaining active workers (see the retirement protocol
//! on [`WorkerSet`]), so a resize can never lose or duplicate a task.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use katme_queue::{Backoff, QueueKind, TaskQueue};
use parking_lot::{Condvar, Mutex};

use crate::drift::{PoolController, PoolSample};
use crate::key::TxnKey;
use crate::scheduler::Scheduler;
use crate::stats::{LoadBalance, WorkerCounters};

/// Configuration of an [`Executor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Which task-queue implementation to use.
    pub queue: QueueKind,
    /// Whether workers drain their queues before exiting at shutdown.
    pub drain_on_shutdown: bool,
    /// Whether an idle worker may steal from other workers' queues
    /// (the paper discusses work stealing as the alternative load-balancing
    /// mechanism; off by default to match its experiments).
    pub work_stealing: bool,
    /// Back-pressure: producers calling [`Executor::submit_blocking`] yield
    /// while the target queue holds at least this many tasks. `None` disables
    /// the bound. The paper's producers run unthrottled for a fixed
    /// wall-clock window; the bound keeps memory use sane on small hosts
    /// without changing steady-state behaviour.
    pub max_queue_depth: Option<usize>,
    /// Maximum tasks a worker drains from its queue per wakeup (one
    /// `pop_batch` lock round-trip covers the whole run). Must be at
    /// least 1.
    pub batch_size: usize,
    /// Whether an idle worker, once its backoff has escalated past
    /// spinning, parks on a condvar (woken by the next enqueue, a resize,
    /// or shutdown) instead of backoff-polling forever. A parked worker
    /// burns zero CPU between bursts; parks are counted in the pool stats.
    pub parking: bool,
}

/// Default worker drain batch: large enough to amortize the queue lock and
/// counter updates, small enough that shutdown latency and work-stealing
/// granularity stay reasonable.
pub const DEFAULT_BATCH_SIZE: usize = 32;

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            queue: QueueKind::TwoLock,
            drain_on_shutdown: false,
            work_stealing: false,
            max_queue_depth: Some(10_000),
            batch_size: DEFAULT_BATCH_SIZE,
            parking: true,
        }
    }
}

impl ExecutorConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Enable or disable queue draining at shutdown.
    pub fn with_drain_on_shutdown(mut self, drain: bool) -> Self {
        self.drain_on_shutdown = drain;
        self
    }

    /// Enable or disable work stealing.
    pub fn with_work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }

    /// Set (or clear) the producer back-pressure bound.
    pub fn with_max_queue_depth(mut self, depth: Option<usize>) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Set the worker drain batch size (clamped to at least 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Enable or disable condvar parking for idle workers.
    pub fn with_parking(mut self, parking: bool) -> Self {
        self.parking = parking;
        self
    }
}

/// Why a submission was rejected. The task is handed back so the producer
/// can retry, reroute, or drop it deliberately.
pub enum SubmitError<T> {
    /// The destination queue is at `max_queue_depth`; non-blocking submits
    /// return instead of waiting.
    QueueFull(T),
    /// The executor has been stopped; no worker will ever drain the queue
    /// again, so enqueueing would leak the task.
    ShuttingDown(T),
}

impl<T> SubmitError<T> {
    /// Recover the rejected task.
    pub fn into_task(self) -> T {
        match self {
            SubmitError::QueueFull(task) | SubmitError::ShuttingDown(task) => task,
        }
    }

    /// True when the rejection was due to back-pressure.
    pub fn is_queue_full(&self) -> bool {
        matches!(self, SubmitError::QueueFull(_))
    }

    /// True when the rejection was due to shutdown.
    pub fn is_shutting_down(&self) -> bool {
        matches!(self, SubmitError::ShuttingDown(_))
    }
}

impl<T> std::fmt::Debug for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("SubmitError::QueueFull(..)"),
            SubmitError::ShuttingDown(_) => f.write_str("SubmitError::ShuttingDown(..)"),
        }
    }
}

impl<T> std::fmt::Display for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("task queue is at its depth bound"),
            SubmitError::ShuttingDown(_) => f.write_str("executor is shutting down"),
        }
    }
}

impl<T> std::error::Error for SubmitError<T> {}

/// Why a batch submission stopped being accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitRejection {
    /// At least one destination queue was at `max_queue_depth` (non-blocking
    /// submissions only; blocking submissions wait out back-pressure).
    QueueFull,
    /// The executor has been stopped; nothing further will be accepted.
    ShuttingDown,
}

/// Partial-failure report from [`Executor::submit_batch_blocking`] /
/// [`Executor::try_submit_batch`]: how many tasks were accepted, which were
/// not (handed back with their keys, ready to resubmit), and why.
///
/// `accepted == 0` means the batch was never accepted at all;
/// `accepted > 0` means a partial accept — every accepted task *will* be
/// executed (or reported as abandoned at shutdown), so retrying must
/// resubmit only [`rejected`](SubmitBatchError::rejected).
pub struct SubmitBatchError<T> {
    /// Number of tasks that made it onto worker queues.
    pub accepted: usize,
    /// The tasks that were not accepted, with their keys. Grouped by the
    /// worker run they were headed for; relative order within a run is
    /// preserved.
    pub rejected: Vec<(TxnKey, T)>,
    /// Why acceptance stopped. [`SubmitRejection::ShuttingDown`] wins over
    /// [`SubmitRejection::QueueFull`] when both occurred.
    pub reason: SubmitRejection,
}

impl<T> SubmitBatchError<T> {
    /// Recover the rejected tasks for a retry.
    pub fn into_rejected(self) -> Vec<(TxnKey, T)> {
        self.rejected
    }

    /// True when some (but not all) of the batch was accepted.
    pub fn is_partial(&self) -> bool {
        self.accepted > 0
    }

    /// True when the rejection was due to back-pressure.
    pub fn is_queue_full(&self) -> bool {
        self.reason == SubmitRejection::QueueFull
    }

    /// True when the rejection was due to shutdown.
    pub fn is_shutting_down(&self) -> bool {
        self.reason == SubmitRejection::ShuttingDown
    }
}

impl<T> std::fmt::Debug for SubmitBatchError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitBatchError")
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected.len())
            .field("reason", &self.reason)
            .finish()
    }
}

impl<T> std::fmt::Display for SubmitBatchError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch submission accepted {} task(s), rejected {} ({})",
            self.accepted,
            self.rejected.len(),
            match self.reason {
                SubmitRejection::QueueFull => "queue full",
                SubmitRejection::ShuttingDown => "shutting down",
            }
        )
    }
}

impl<T> std::error::Error for SubmitBatchError<T> {}

/// Summary returned by [`Executor::shutdown`].
#[derive(Debug, Clone)]
pub struct ExecutorReport {
    /// Tasks each worker drained from its *own* queue — the load the
    /// scheduler routed to it. Stolen and adopted executions are reported
    /// separately so imbalance math reads routed load, not rescue work.
    pub load: LoadBalance,
    /// Total tasks executed after being stolen from an active peer's queue.
    pub stolen: u64,
    /// Total tasks executed after being adopted from a retired worker's
    /// residual queue (the elastic hand-off path).
    pub adopted: u64,
    /// Total polls that found no work.
    pub idle_polls: u64,
    /// Total condvar parks — idle periods workers spent blocked at zero
    /// CPU instead of backoff polling.
    pub parks: u64,
    /// Total nanoseconds workers spent blocked waiting for group-commit
    /// durability acknowledgments while holding work (zero unless a
    /// durability stall probe was attached).
    pub commit_wait_nanos: u64,
    /// Tasks left unexecuted in the queues (only non-zero when
    /// `drain_on_shutdown` is false).
    pub abandoned: u64,
    /// Worker-pool resizes performed over the executor's lifetime.
    pub resizes: u64,
    /// Active workers at shutdown.
    pub active_workers: usize,
}

impl ExecutorReport {
    /// Total completed tasks, regardless of which worker executed them.
    pub fn completed(&self) -> u64 {
        self.load.total() + self.stolen + self.adopted
    }
}

/// Intake gate for a queue that is drained by threads which must eventually
/// exit: pairs an accepting flag with an in-flight submission count so a
/// producer's check-then-push and a consumer's empty-then-exit cannot
/// interleave into a stranded task.
///
/// Protocol — producer: [`ShutdownGate::enter`] (returns `false` once
/// closed), push, [`ShutdownGate::exit`]. Consumer: read
/// [`ShutdownGate::may_finish`] *before* the final pop; if the pop still
/// finds nothing, it is safe to stop. Any submission that raised the
/// in-flight count before the consumer read zero has either already pushed
/// (the pop sees it) or will observe the closed gate and bail.
#[derive(Debug, Default)]
pub struct ShutdownGate {
    accepting: AtomicBool,
    inflight: AtomicUsize,
}

impl ShutdownGate {
    /// An open gate.
    pub fn new() -> Self {
        ShutdownGate {
            accepting: AtomicBool::new(true),
            inflight: AtomicUsize::new(0),
        }
    }

    /// True until [`ShutdownGate::close`] is called.
    pub fn is_open(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }

    /// Close the gate: subsequent [`ShutdownGate::enter`] calls fail.
    /// Idempotent; callable from any thread.
    pub fn close(&self) {
        self.accepting.store(false, Ordering::SeqCst);
    }

    /// Begin a submission. Returns `false` (leaving no trace) if the gate is
    /// closed; on `true` the caller must push and then call
    /// [`ShutdownGate::exit`].
    pub fn enter(&self) -> bool {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        if !self.accepting.load(Ordering::SeqCst) {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Finish a submission begun with a successful [`ShutdownGate::enter`].
    pub fn exit(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    /// True when the gate is closed and no submission is mid-push. Read this
    /// *before* the final emptiness check of the guarded queue.
    pub fn may_finish(&self) -> bool {
        !self.is_open() && self.inflight.load(Ordering::SeqCst) == 0
    }
}

/// Slot has no worker thread (and is not routed to).
const SLOT_INACTIVE: u8 = 0;
/// Slot has a live worker thread and may be routed to.
const SLOT_ACTIVE: u8 = 1;
/// Slot's worker was asked to retire: it drains its residual queue to empty
/// and then exits (unless the slot is re-activated first).
const SLOT_RETIRING: u8 = 2;

/// How many busy wakeups an active worker goes between orphan sweeps, so a
/// straggler stranded on a retired queue is adopted within a bounded number
/// of wakeups even when every active worker's own queue never runs dry.
const ORPHAN_SWEEP_PERIOD: u32 = 64;

/// Safety-net timeout for a parked worker. The wake protocol (sequence
/// number mutated under the parker lock, producers notify whenever a parked
/// worker exists) cannot lose wakeups, so this only bounds the damage of a
/// bug: a parked worker re-checks the world at least this often.
const PARK_TIMEOUT: Duration = Duration::from_millis(25);

/// Condvar parking shared by a pool's idle workers: once a worker's backoff
/// has escalated past spinning it blocks here instead of sleep-polling, and
/// is woken by the next enqueue, a resize (retiring slots must notice), or
/// shutdown.
///
/// Missed-wakeup safety: `epoch` only changes under `lock`, and a worker
/// (a) raises `parked` with SeqCst *before* its final emptiness re-check
/// and (b) holds `lock` from reading `epoch` until `wait` atomically
/// releases it. A producer that enqueues after the re-check therefore
/// observes `parked > 0` and bumps `epoch` under the lock — either before
/// the worker waits (the worker sees the changed epoch and skips the wait)
/// or while it waits (the notify lands). [`PARK_TIMEOUT`] backstops the
/// reasoning.
#[derive(Debug, Default)]
struct IdleParker {
    lock: Mutex<u64>,
    condvar: Condvar,
    parked: AtomicUsize,
}

impl IdleParker {
    /// Wake every parked worker. Costs one relaxed-ish atomic load when
    /// nobody is parked — cheap enough for the enqueue hot path.
    fn wake_all(&self) {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut epoch = self.lock.lock();
        *epoch = epoch.wrapping_add(1);
        self.condvar.notify_all();
    }

    /// Park until woken or [`PARK_TIMEOUT`]. `has_work` is the caller's
    /// final emptiness re-check, run after the parked count is raised;
    /// returns `false` (without blocking) when it reports work.
    fn park(&self, has_work: impl Fn() -> bool) -> bool {
        let guard = self.lock.lock();
        self.parked.fetch_add(1, Ordering::SeqCst);
        if has_work() {
            self.parked.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        // Any producer that enqueued after `has_work` ran must bump the
        // epoch under this lock, which it can only take once `wait_timeout`
        // releases it — so the notify cannot be missed.
        let (guard, _timed_out) = self.condvar.wait_timeout(guard, PARK_TIMEOUT);
        drop(guard);
        self.parked.fetch_sub(1, Ordering::SeqCst);
        true
    }
}

/// Parked submission-path buffers, recycled across `submit_batch_*` calls
/// so steady-state batch dispatch allocates neither its keyed staging
/// buffer nor the per-worker run table (see
/// [`Executor::submit_batch_blocking`]). The inner run vectors are *not*
/// pooled: `push_batch` consumes them as queue segment storage, which is
/// the one allocation the batch path inherently pays.
struct BatchPool<T> {
    /// Emptied `(key, task)` staging buffers, handed back to producers via
    /// [`Executor::recycled_batch`].
    keyed: Vec<Vec<(TxnKey, T)>>,
    /// The outer per-worker run table (its inner vectors are empty).
    runs: Option<Vec<Vec<T>>>,
}

/// Cap on parked keyed staging buffers — bounds idle memory to a handful
/// of producers' worth of batches.
const KEYED_POOL_MAX: usize = 8;

impl<T> Default for BatchPool<T> {
    fn default() -> Self {
        BatchPool {
            keyed: Vec::new(),
            runs: None,
        }
    }
}

/// Batch-submission staging: the key slice handed to
/// [`Scheduler::dispatch_batch`], the route table it fills, and the
/// per-worker run-length counts.
type DispatchScratch = (Vec<TxnKey>, Vec<usize>, Vec<usize>);

thread_local! {
    /// Per-producer scratch for the batch submission path. Thread-local
    /// because the keys and routes never leave the submitting thread.
    static DISPATCH_SCRATCH: Cell<Option<DispatchScratch>> = const { Cell::new(None) };
}

/// The generation-scoped owner of the executor's queues and worker threads.
///
/// The set is sized at `capacity` slots (the scheduler's
/// [`Scheduler::max_workers`]); every slot's queue exists for the
/// executor's whole lifetime, so any worker index a routing snapshot can
/// produce always has a live queue — a resize never invalidates an
/// in-flight dispatch. Only the first `active` slots are
/// routed to by the *current* generation.
///
/// # Retirement protocol (shrink, no-loss hand-off)
///
/// Shrinking from `n` to `m` first publishes the `m`-wide partition (new
/// dispatches avoid the trailing slots), stores `active = m`, and marks
/// slots `m..n` *retiring*. Each retiring worker keeps draining its
/// own queue; when it finds the queue empty it retires by CAS-ing its slot
/// `RETIRING -> INACTIVE` and exiting. Two things cover the leftovers:
///
/// * **Residual drain**: everything queued on the retiring worker before it
///   observed the empty queue is executed by the retiring worker itself.
/// * **Adoption**: a dispatch holding a pre-shrink snapshot may still push
///   onto a retired queue *after* that worker exited. Active workers adopt
///   such stragglers — they sweep the queues of every slot `>= active` when
///   their own queue is empty (and periodically even when busy, every
///   `ORPHAN_SWEEP_PERIOD` wakeups), executing whatever they find. The
///   adopting worker is, under the new generation, the partition successor
///   of the retired range's keys or one of its peers; adoption is recorded
///   separately from routed completions so imbalance math stays honest.
///
/// Growing back re-activates slots: a slot whose old thread is still
/// mid-retirement is flipped `RETIRING -> ACTIVE` by CAS (the thread
/// notices its exit CAS fail and simply keeps working); an `INACTIVE` slot
/// gets its finished thread joined and a fresh one spawned. The exit CAS
/// and the resurrect CAS are the two halves of one atomic state machine, so
/// a slot can never end up active without a worker or with two workers.
///
/// Together with the swap protocol of
/// [`crate::partition::PartitionTable`], every submitted task is executed
/// exactly once across any sequence of grows and shrinks: it lands on
/// exactly one queue, and that queue is drained by its own worker, a
/// retiring worker's residual drain, an adopting active worker, or the
/// shutdown drain.
pub struct WorkerSet<T: Send + 'static> {
    queues: Vec<Arc<dyn TaskQueue<T>>>,
    counters: Arc<Vec<WorkerCounters>>,
    /// Per-slot lifecycle state (see the retirement protocol above).
    slots: Vec<AtomicU8>,
    /// Number of slots the current generation routes to.
    active: AtomicUsize,
    /// Guards intake against the draining workers' exit (see
    /// [`ShutdownGate`]).
    gate: ShutdownGate,
    config: ExecutorConfig,
    /// Resizes performed over the set's lifetime.
    resizes: AtomicU64,
    /// Idle workers block here between bursts (see [`IdleParker`]).
    parker: IdleParker,
    /// Cumulative nanoseconds spent spawning and retiring workers, and how
    /// many workers those cover — the cost plane's resize calibration feed.
    /// Spawn time is measured around the thread spawn (plus joining the
    /// dead predecessor); retire time covers only the exit hand-off from
    /// the moment the retiring worker finds its queue dry — the residual
    /// drain before that point is throughput, not swap overhead, and the
    /// cost plane prices it separately from the queue depths.
    resize_nanos: AtomicU64,
    resized_workers: AtomicU64,
    /// Optional probe for demand queued upstream of the workers (the
    /// centralized model's dispatcher queue), sampled into
    /// [`PoolSample::dispatcher_backlog`].
    backlog_probe: Mutex<Option<Arc<dyn Fn() -> usize + Send + Sync>>>,
    /// Optional probe draining the executing thread's accumulated
    /// group-commit (durability) wait since the last call, in nanoseconds.
    /// Read after every handler batch, hence a `OnceLock` (one atomic load
    /// when unset) rather than a mutex like the rarely-read backlog probe.
    stall_probe: OnceLock<Arc<dyn Fn() -> u64 + Send + Sync>>,
    /// Recycled submission-path buffers (see [`BatchPool`]).
    batch_pool: Mutex<BatchPool<T>>,
}

impl<T: Send + 'static> WorkerSet<T> {
    fn new(config: ExecutorConfig, capacity: usize, initial: usize) -> Self {
        let queues: Vec<Arc<dyn TaskQueue<T>>> = (0..capacity)
            .map(|_| Arc::from(config.queue.build::<T>()))
            .collect();
        let slots = (0..capacity)
            .map(|index| {
                AtomicU8::new(if index < initial {
                    SLOT_ACTIVE
                } else {
                    SLOT_INACTIVE
                })
            })
            .collect();
        WorkerSet {
            queues,
            counters: WorkerCounters::for_workers(capacity),
            slots,
            active: AtomicUsize::new(initial),
            gate: ShutdownGate::new(),
            config,
            resizes: AtomicU64::new(0),
            parker: IdleParker::default(),
            resize_nanos: AtomicU64::new(0),
            resized_workers: AtomicU64::new(0),
            backlog_probe: Mutex::new(None),
            stall_probe: OnceLock::new(),
            batch_pool: Mutex::new(BatchPool::default()),
        }
    }

    /// Fold the executing thread's pending commit-wait stall (if a probe is
    /// attached) into worker `index`'s counters. Called after each handler
    /// batch so the wait lands on the worker that actually blocked.
    fn drain_stall(&self, index: usize) {
        if let Some(probe) = self.stall_probe.get() {
            let nanos = probe();
            if nanos > 0 {
                self.counters[index].record_commit_wait(nanos);
            }
        }
    }

    /// Fold a measured spawn/retire duration into the calibration feed.
    fn record_resize_nanos(&self, nanos: u64, workers: u64) {
        self.resize_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.resized_workers.fetch_add(workers, Ordering::Relaxed);
    }

    /// Total slots (the pool's growth ceiling).
    fn capacity(&self) -> usize {
        self.queues.len()
    }

    /// Slots currently routed to.
    fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }
}

/// The executor's half of the elastic plane: owns the worker thread handles
/// and implements [`PoolController`] so the adaptive scheduler can read
/// pool telemetry and command resizes. Shared between the [`Executor`] and
/// the scheduler it was started with.
struct PoolHandle<T: Send + 'static> {
    set: Arc<WorkerSet<T>>,
    handler: Arc<dyn Fn(usize, T) + Send + Sync>,
    /// One slot per worker index; `None` until the slot is first spawned.
    /// A replaced thread is joined before its slot is overwritten, so this
    /// vector owns every thread the set ever spawned.
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Serializes resizes (they are rare; dispatch never takes this).
    resize_lock: Mutex<()>,
}

impl<T: Send + 'static> PoolHandle<T> {
    fn spawn_slot(&self, index: usize) -> JoinHandle<()> {
        let set = Arc::clone(&self.set);
        let handler = Arc::clone(&self.handler);
        std::thread::Builder::new()
            .name(format!("katme-worker-{index}"))
            .spawn(move || worker_loop(index, &set, &*handler))
            .expect("failed to spawn worker thread")
    }

    /// Join every thread the set ever spawned (after closing the gate).
    fn join_all(&self) {
        let mut handles = self.handles.lock();
        for slot in handles.iter_mut() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<T: Send + 'static> PoolController for PoolHandle<T> {
    fn sample(&self) -> PoolSample {
        let set = &self.set;
        let probe = set.backlog_probe.lock().clone();
        PoolSample {
            active: set.active(),
            capacity: set.capacity(),
            per_worker_completed: set.counters.iter().map(|c| c.completed()).collect(),
            stolen: set.counters.iter().map(|c| c.stolen()).sum(),
            adopted: set.counters.iter().map(|c| c.adopted()).sum(),
            idle_polls: set.counters.iter().map(|c| c.idle_polls()).sum(),
            busy_wakeups: set.counters.iter().map(|c| c.busy_wakeups()).sum(),
            parks: set.counters.iter().map(|c| c.parks()).sum(),
            park_nanos: set.counters.iter().map(|c| c.park_nanos()).sum(),
            queue_depths: set.queues.iter().map(|q| q.len()).collect(),
            dispatcher_backlog: probe.map_or(0, |probe| probe()),
            resize_nanos: set.resize_nanos.load(Ordering::Relaxed),
            resized_workers: set.resized_workers.load(Ordering::Relaxed),
        }
    }

    fn resize(&self, workers: usize) {
        let _guard = self.resize_lock.lock();
        let set = &self.set;
        let target = workers.clamp(1, set.capacity());
        let current = set.active();
        if target == current || !set.gate.is_open() {
            return;
        }
        if target < current {
            // Shrink: stop routing to the trailing slots first, then ask
            // their workers to retire. Residuals are drained by the
            // retiring workers themselves; stragglers are adopted (see the
            // WorkerSet retirement protocol).
            set.active.store(target, Ordering::SeqCst);
            for index in target..current {
                let _ = set.slots[index].compare_exchange(
                    SLOT_ACTIVE,
                    SLOT_RETIRING,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
            // Parked trailing workers must wake to observe their retirement.
            set.parker.wake_all();
        } else {
            // Grow. The *routing* range was already widened when the
            // scheduler published the new-width partition (publish comes
            // before resize), so dispatches may land on slots
            // current..target throughout this window; those tasks sit in
            // the slot's queue for the microseconds until its worker is
            // live below (every slot in the range gets one before this
            // call returns). Raising `active` first takes the slots out
            // of the orphan sweep right away, so adopting peers stop
            // mis-attributing the new workers' routed load as adopted
            // work.
            set.active.store(target, Ordering::SeqCst);
            let mut handles = self.handles.lock();
            for index in current..target {
                if set.slots[index]
                    .compare_exchange(
                        SLOT_RETIRING,
                        SLOT_ACTIVE,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    // The old thread was still mid-retirement: its exit CAS
                    // will fail and it keeps working the slot.
                    continue;
                }
                // INACTIVE: the previous incarnation (if any) has exited or
                // is past its exit CAS — join it, then spawn a fresh one.
                // The spawn (and any join of the dead predecessor) is timed
                // into the resize-calibration feed.
                let spawn_started = Instant::now();
                if let Some(handle) = handles[index].take() {
                    let _ = handle.join();
                }
                set.slots[index].store(SLOT_ACTIVE, Ordering::SeqCst);
                handles[index] = Some(self.spawn_slot(index));
                set.record_resize_nanos(
                    u64::try_from(spawn_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    1,
                );
            }
        }
        set.resizes.fetch_add(1, Ordering::SeqCst);
    }
}

/// A pool of worker threads fed by per-worker task queues through a
/// key-based (or round-robin) scheduler. Since the elastic refactor the
/// queues and threads are owned by a [`WorkerSet`] whose active width the
/// adaptation plane may change at run time (see the module docs).
pub struct Executor<T: Send + 'static> {
    set: Arc<WorkerSet<T>>,
    scheduler: Arc<dyn Scheduler>,
    pool: Arc<PoolHandle<T>>,
}

impl<T: Send + 'static> Executor<T> {
    /// Start a worker pool.
    ///
    /// * `scheduler` decides which worker each submitted task goes to; its
    ///   [`Scheduler::workers`] fixes the initial pool size and its
    ///   [`Scheduler::max_workers`] the growth ceiling. The scheduler is
    ///   handed a [`PoolController`] through [`Scheduler::attach_pool`], so
    ///   an elastic scheduler can observe the pool and resize it.
    /// * `handler` is invoked by worker threads as `handler(worker_index,
    ///   task)`; it typically runs one STM transaction.
    pub fn start<F>(config: ExecutorConfig, scheduler: Arc<dyn Scheduler>, handler: F) -> Self
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        let initial = scheduler.workers();
        let capacity = scheduler.max_workers().max(initial);
        assert!(initial > 0, "executor needs at least one worker");
        assert!(config.batch_size > 0, "drain batch size must be at least 1");
        let set = Arc::new(WorkerSet::new(config, capacity, initial));
        let pool = Arc::new(PoolHandle {
            set: Arc::clone(&set),
            handler: Arc::new(handler),
            handles: Mutex::new((0..capacity).map(|_| None).collect()),
            resize_lock: Mutex::new(()),
        });
        {
            let mut handles = pool.handles.lock();
            for (index, slot) in handles.iter_mut().enumerate().take(initial) {
                *slot = Some(pool.spawn_slot(index));
            }
        }
        scheduler.attach_pool(Arc::clone(&pool) as Arc<dyn PoolController>);

        Executor {
            set,
            scheduler,
            pool,
        }
    }

    /// Total worker slots the pool can grow to (queues are allocated for
    /// all of them up front).
    pub fn workers(&self) -> usize {
        self.set.capacity()
    }

    /// Worker slots currently active (the routing width in effect).
    pub fn active_workers(&self) -> usize {
        self.set.active()
    }

    /// Pool resizes performed so far.
    pub fn resizes(&self) -> u64 {
        self.set.resizes.load(Ordering::Relaxed)
    }

    /// The scheduler in use.
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.scheduler
    }

    /// The scheduler's routing-table generation currently in effect (0 for
    /// static policies). Tasks already queued were routed by the generation
    /// current at their submission; a bump never disturbs them.
    pub fn partition_generation(&self) -> u64 {
        self.scheduler.generation()
    }

    /// Submit a task with the given transaction key, blocking while the
    /// destination queue is at its depth bound. Called from producer threads;
    /// runs the scheduler inline (Figure 1(c): the executor is part of the
    /// producer). Returns [`SubmitError::ShuttingDown`] — promptly, even from
    /// inside the back-pressure wait — once [`Executor::stop`] or shutdown
    /// has been initiated, instead of enqueueing onto a queue no worker will
    /// drain again.
    pub fn submit_blocking(&self, key: TxnKey, task: T) -> Result<(), SubmitError<T>> {
        let worker = self.scheduler.dispatch(key);
        self.submit_to_blocking(worker, task)
    }

    /// Non-blocking variant of [`Executor::submit_blocking`]: rejects with
    /// [`SubmitError::QueueFull`] instead of waiting out back-pressure.
    pub fn try_submit(&self, key: TxnKey, task: T) -> Result<(), SubmitError<T>> {
        let worker = self.scheduler.dispatch(key);
        self.try_submit_to(worker, task)
    }

    /// Submit directly to a specific worker, bypassing the scheduler, with
    /// blocking back-pressure (see [`Executor::submit_blocking`]).
    pub fn submit_to_blocking(&self, worker: usize, task: T) -> Result<(), SubmitError<T>> {
        let queue = &self.set.queues[worker];
        if let Some(depth) = self.set.config.max_queue_depth {
            let mut backoff = Backoff::new();
            while queue.len() >= depth {
                if !self.set.gate.is_open() {
                    return Err(SubmitError::ShuttingDown(task));
                }
                backoff.snooze();
            }
        }
        self.push_guarded(queue, task)
    }

    /// Publish a task through the [`ShutdownGate`], which closes the
    /// check-then-push race against draining workers — a submission that
    /// returns `Ok` is guaranteed to be executed (or counted as abandoned)
    /// rather than stranded on a dead queue.
    fn push_guarded(&self, queue: &Arc<dyn TaskQueue<T>>, task: T) -> Result<(), SubmitError<T>> {
        if !self.set.gate.enter() {
            return Err(SubmitError::ShuttingDown(task));
        }
        queue.push(task);
        self.set.gate.exit();
        self.set.parker.wake_all();
        Ok(())
    }

    /// Non-blocking variant of [`Executor::submit_to_blocking`].
    pub fn try_submit_to(&self, worker: usize, task: T) -> Result<(), SubmitError<T>> {
        if !self.set.gate.is_open() {
            return Err(SubmitError::ShuttingDown(task));
        }
        let queue = &self.set.queues[worker];
        if let Some(depth) = self.set.config.max_queue_depth {
            if queue.len() >= depth {
                return Err(SubmitError::QueueFull(task));
            }
        }
        self.push_guarded(queue, task)
    }

    /// Submit a whole batch of keyed tasks, blocking while destination
    /// queues are at their depth bound.
    ///
    /// The scheduler routes the entire key slice in one
    /// [`Scheduler::dispatch_batch`] call (the adaptive scheduler samples
    /// every key exactly once under one lock round-trip), the tasks are
    /// grouped into per-worker runs, and each run crosses its queue with a
    /// single `push_batch` under a single [`ShutdownGate`] enter/exit —
    /// the per-task lock and gate traffic of a loop over
    /// [`Executor::submit_blocking`] collapses to a handful of operations
    /// per batch.
    ///
    /// Returns the number of tasks accepted (the whole batch on `Ok`). Once
    /// shutdown is observed, the remaining tasks are handed back in the
    /// error; every task accepted before that is either executed or counted
    /// as abandoned.
    pub fn submit_batch_blocking(
        &self,
        tasks: Vec<(TxnKey, T)>,
    ) -> Result<usize, SubmitBatchError<T>> {
        self.submit_batch_inner(tasks, true)
    }

    /// Non-blocking variant of [`Executor::submit_batch_blocking`]: instead
    /// of waiting out back-pressure, fills each destination queue up to its
    /// depth bound and reports the overflow as a partial failure
    /// ([`SubmitRejection::QueueFull`]) so the producer can retry exactly
    /// the rejected remainder.
    pub fn try_submit_batch(&self, tasks: Vec<(TxnKey, T)>) -> Result<usize, SubmitBatchError<T>> {
        self.submit_batch_inner(tasks, false)
    }

    /// Hand out an empty `(key, task)` staging buffer whose capacity was
    /// retained from an earlier batch submission (or a fresh one if none is
    /// parked). Producers that stage their batches in this buffer and
    /// submit via [`Executor::submit_batch_blocking`] /
    /// [`Executor::try_submit_batch`] keep the staging allocation cycling
    /// between submissions instead of re-creating it per batch.
    pub fn recycled_batch(&self) -> Vec<(TxnKey, T)> {
        self.set.batch_pool.lock().keyed.pop().unwrap_or_default()
    }

    /// Park a drained staging buffer for reuse by [`Executor::recycled_batch`].
    fn park_batch_buffer(&self, mut buffer: Vec<(TxnKey, T)>) {
        if buffer.capacity() == 0 {
            return;
        }
        buffer.clear();
        let mut pool = self.set.batch_pool.lock();
        if pool.keyed.len() < KEYED_POOL_MAX {
            pool.keyed.push(buffer);
        }
    }

    fn submit_batch_inner(
        &self,
        mut tasks: Vec<(TxnKey, T)>,
        blocking: bool,
    ) -> Result<usize, SubmitBatchError<T>> {
        if tasks.is_empty() {
            self.park_batch_buffer(tasks);
            return Ok(0);
        }
        let total = tasks.len();
        let (mut keys, mut routes, mut counts) = DISPATCH_SCRATCH
            .with(|slot| slot.take())
            .unwrap_or_default();
        keys.clear();
        keys.extend(tasks.iter().map(|&(key, _)| key));
        routes.clear();
        self.scheduler.dispatch_batch(&keys, &mut routes);
        debug_assert_eq!(routes.len(), total);

        // Group into per-worker runs holding the bare tasks — the hot path
        // hands each run to its queue without another per-item move; keys
        // are re-associated from `keys`/`routes` only on the cold rejection
        // path (see `reject_run`). Runs span the full capacity: a routing
        // snapshot can only produce indices below its own width, which is
        // never above the capacity. The outer table is pooled; each inner
        // run is sized exactly from a counting pass because `push_batch`
        // consumes it as queue segment storage — one unavoidable allocation
        // per non-empty run.
        let workers = self.set.capacity();
        let mut runs: Vec<Vec<T>> = self.set.batch_pool.lock().runs.take().unwrap_or_default();
        debug_assert!(runs.iter().all(Vec::is_empty));
        runs.resize_with(workers, Vec::new);
        counts.clear();
        counts.resize(workers, 0);
        for &worker in &routes {
            counts[worker] += 1;
        }
        for (run, &count) in runs.iter_mut().zip(&counts) {
            if count > 0 {
                run.reserve_exact(count);
            }
        }
        for ((_, task), &worker) in tasks.drain(..).zip(&routes) {
            runs[worker].push(task);
        }
        // `tasks` is now empty with its capacity intact — park it for the
        // next producer batch (see `recycled_batch`).
        self.park_batch_buffer(tasks);

        // Recover `(key, task)` pairs for the tail of a worker's run, for
        // hand-back: the items of `run` routed to `worker` appear in `keys`
        // in the same order, so zipping the filtered keys with the run's
        // tail restores each task's key.
        let reject_run =
            |rejected: &mut Vec<(TxnKey, T)>, run: Vec<T>, skip: usize, worker: usize| {
                let run_keys = keys
                    .iter()
                    .zip(&routes)
                    .filter(|&(_, &route)| route == worker)
                    .map(|(&key, _)| key)
                    .skip(skip);
                rejected.extend(run_keys.zip(run));
            };

        let mut accepted = 0usize;
        let mut rejected: Vec<(TxnKey, T)> = Vec::new();
        let mut queue_full = false;
        let mut shutting_down = false;

        for (worker, slot) in runs.iter_mut().enumerate() {
            let mut run = std::mem::take(slot);
            if run.is_empty() {
                continue;
            }
            if shutting_down {
                // Shutdown is global: nothing further can be accepted.
                reject_run(&mut rejected, run, 0, worker);
                continue;
            }
            let queue = &self.set.queues[worker];
            // Back-pressure is per worker queue: a full queue rejects (or
            // waits out) only its own run; other workers' runs still land.
            // Both modes respect the depth bound chunk-wise: never push more
            // than the observed free space, so a large batch cannot blow
            // `max_queue_depth` by a whole run. Blocking mode waits for
            // space and continues with the remainder; non-blocking mode
            // reports the remainder as QueueFull overflow.
            let mut pushed = 0usize;
            loop {
                let space = match self.set.config.max_queue_depth {
                    None => run.len(),
                    Some(depth) => {
                        if blocking {
                            let mut backoff = Backoff::new();
                            loop {
                                let space = depth.saturating_sub(queue.len());
                                if space > 0 {
                                    break space;
                                }
                                if !self.set.gate.is_open() {
                                    shutting_down = true;
                                    break 0;
                                }
                                backoff.snooze();
                            }
                        } else {
                            depth.saturating_sub(queue.len())
                        }
                    }
                };
                if shutting_down {
                    reject_run(&mut rejected, run, pushed, worker);
                    break;
                }
                if space == 0 {
                    queue_full = true;
                    reject_run(&mut rejected, run, pushed, worker);
                    break;
                }
                let chunk = if space < run.len() {
                    let rest = run.split_off(space);
                    std::mem::replace(&mut run, rest)
                } else {
                    std::mem::take(&mut run)
                };
                // One gate enter/exit covers the whole chunk (per-batch
                // shutdown accounting; see ShutdownGate).
                if !self.set.gate.enter() {
                    shutting_down = true;
                    let skip = pushed + chunk.len();
                    reject_run(&mut rejected, chunk, pushed, worker);
                    if !run.is_empty() {
                        reject_run(&mut rejected, run, skip, worker);
                    }
                    break;
                }
                accepted += chunk.len();
                pushed += chunk.len();
                queue.push_batch(chunk);
                self.set.gate.exit();
                self.set.parker.wake_all();
                if run.is_empty() {
                    break;
                }
                if !blocking {
                    // Filled to the bound with items left over: overflow.
                    queue_full = true;
                    reject_run(&mut rejected, run, pushed, worker);
                    break;
                }
            }
        }

        DISPATCH_SCRATCH.with(|slot| slot.set(Some((keys, routes, counts))));
        {
            let mut pool = self.set.batch_pool.lock();
            if pool.runs.is_none() {
                pool.runs = Some(runs);
            }
        }

        if !queue_full && !shutting_down {
            Ok(accepted)
        } else {
            Err(SubmitBatchError {
                accepted,
                rejected,
                reason: if shutting_down {
                    SubmitRejection::ShuttingDown
                } else {
                    SubmitRejection::QueueFull
                },
            })
        }
    }

    /// Completed tasks so far, summed over workers and all origins (own
    /// queue, stolen, adopted).
    pub fn completed(&self) -> u64 {
        self.set.counters.iter().map(|c| c.executed()).sum()
    }

    /// Tasks each worker drained from its own queue (routed load). Stolen
    /// and adopted executions are reported separately — see
    /// [`Executor::stolen`] and [`Executor::adopted`].
    pub fn per_worker_completed(&self) -> Vec<u64> {
        self.set.counters.iter().map(|c| c.completed()).collect()
    }

    /// Tasks executed after being stolen from an active peer's queue.
    pub fn stolen(&self) -> u64 {
        self.set.counters.iter().map(|c| c.stolen()).sum()
    }

    /// Tasks executed after being adopted from a retired worker's queue.
    pub fn adopted(&self) -> u64 {
        self.set.counters.iter().map(|c| c.adopted()).sum()
    }

    /// Condvar parks performed by idle workers so far.
    pub fn parks(&self) -> u64 {
        self.set.counters.iter().map(|c| c.parks()).sum()
    }

    /// Attach a probe for demand queued upstream of the worker pool (the
    /// centralized model's dispatcher queue). Sampled into
    /// [`PoolSample::dispatcher_backlog`] so a saturated dispatcher counts
    /// as a grow signal instead of being invisible to the controller.
    pub fn attach_backlog_probe(&self, probe: Arc<dyn Fn() -> usize + Send + Sync>) {
        *self.set.backlog_probe.lock() = Some(probe);
    }

    /// Attach a probe that drains the calling thread's accumulated
    /// group-commit (durability) wait since its previous call, in
    /// nanoseconds. Workers invoke it after each executed batch and book
    /// the result as commit-wait stall on their own counters — keeping
    /// durable-mode fsync waits a distinct stall category instead of
    /// folding them into generic idle time. Attachment is permanent for the
    /// executor's lifetime (like the STM telemetry attachments).
    pub fn attach_stall_probe(&self, probe: Arc<dyn Fn() -> u64 + Send + Sync>) -> bool {
        self.set.stall_probe.set(probe).is_ok()
    }

    /// Total nanoseconds workers spent blocked on group-commit durability
    /// waits, summed over workers.
    pub fn commit_wait_nanos(&self) -> u64 {
        self.set
            .counters
            .iter()
            .map(|c| c.commit_wait_nanos())
            .sum()
    }

    /// Current queue lengths (diagnostics / back-pressure tuning), over the
    /// full capacity.
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.set.queues.iter().map(|q| q.len()).collect()
    }

    /// True while the executor accepts and executes tasks.
    pub fn is_running(&self) -> bool {
        self.set.gate.is_open()
    }

    /// Initiate shutdown without waiting for the workers: new submissions are
    /// rejected with [`SubmitError::ShuttingDown`], producers blocked on
    /// back-pressure return promptly, and workers exit (after draining when
    /// `drain_on_shutdown` is set). Call [`Executor::shutdown`] afterwards to
    /// join the workers and collect the report; `stop` itself is safe to call
    /// from any thread, any number of times.
    pub fn stop(&self) {
        self.set.gate.close();
        self.set.parker.wake_all();
    }

    /// Stop the workers and collect the final counters.
    pub fn shutdown(self) -> ExecutorReport {
        self.set.gate.close();
        self.set.parker.wake_all();
        // Serialize against an in-flight resize: once the resize lock is
        // ours, no further resize can pass its open-gate check and spawn,
        // so the join below covers every thread the set will ever have.
        drop(self.pool.resize_lock.lock());
        self.pool.join_all();
        let abandoned: u64 = self.set.queues.iter().map(|q| q.len() as u64).sum();
        // Keep only slots that were active at the end or executed routed
        // work, so an elastic pool's load report — and its max-over-mean
        // imbalance — covers the workers that existed, not the growth
        // ceiling. This is the same filter the live `StatsView::imbalance`
        // applies, so the two surfaces agree; fixed pools are unaffected
        // (active == capacity).
        let active = self.set.active();
        let per_worker: Vec<u64> = self
            .set
            .counters
            .iter()
            .map(|c| c.completed())
            .enumerate()
            .filter(|&(index, completed)| index < active || completed > 0)
            .map(|(_, completed)| completed)
            .collect();
        ExecutorReport {
            load: LoadBalance::new(per_worker),
            stolen: self.stolen(),
            adopted: self.adopted(),
            idle_polls: self.set.counters.iter().map(|c| c.idle_polls()).sum(),
            parks: self.parks(),
            commit_wait_nanos: self.commit_wait_nanos(),
            abandoned,
            resizes: self.resizes(),
            active_workers: self.set.active(),
        }
    }
}

impl<T: Send + 'static> Drop for Executor<T> {
    /// Dropping an executor without calling [`Executor::shutdown`] still
    /// stops and joins the worker threads so no run leaks threads.
    fn drop(&mut self) {
        self.set.gate.close();
        self.set.parker.wake_all();
        drop(self.pool.resize_lock.lock());
        self.pool.join_all();
    }
}

/// Adopt queued work from orphan slots (indices at or above the active
/// width): the residual queues of retired workers and any straggler a
/// stale-snapshot dispatch landed there. Returns `true` when a batch was
/// adopted and executed.
fn adopt_orphans<T, F>(index: usize, set: &WorkerSet<T>, handler: &F, batch: &mut Vec<T>) -> bool
where
    T: Send + 'static,
    F: Fn(usize, T) + Send + Sync + ?Sized,
{
    let active = set.active();
    for victim in active..set.capacity() {
        if victim == index || set.queues[victim].is_empty() {
            continue;
        }
        let took = set.queues[victim].pop_batch(batch, set.config.batch_size);
        if took > 0 {
            set.counters[index].record_adopted_batch(took as u64);
            set.counters[index].record_busy_wakeup();
            for task in batch.drain(..) {
                handler(index, task);
            }
            set.drain_stall(index);
            return true;
        }
    }
    false
}

fn worker_loop<T, F>(index: usize, set: &WorkerSet<T>, handler: &F)
where
    T: Send + 'static,
    F: Fn(usize, T) + Send + Sync + ?Sized,
{
    let mut backoff = Backoff::new();
    // Reused drain buffer: one pop_batch lock round-trip moves up to
    // batch_size tasks out of the queue per wakeup.
    let mut batch: Vec<T> = Vec::with_capacity(set.config.batch_size);
    let mut wakeups: u32 = 0;
    loop {
        let running_now = set.gate.is_open();
        if !running_now && !set.config.drain_on_shutdown {
            // The paper's driver "stops the producer and worker threads after
            // the test period": without draining, whatever is still queued is
            // abandoned (and reported as such).
            return;
        }
        // Draining exit handshake (see ShutdownGate): must be read *before*
        // the pops below (own queue, orphans, and steal victims alike).
        let may_exit = set.gate.may_finish();

        let took = set.queues[index].pop_batch(&mut batch, set.config.batch_size);
        if took > 0 {
            // A popped batch is in flight: it executes to completion even if
            // shutdown lands mid-batch, so every popped task is counted as
            // completed rather than silently dropped. The count is recorded
            // *before* the handler runs: a task whose completion handle
            // resolves mid-handler must already be visible in the counters,
            // or an observer woken by the handle could read a completion
            // count that excludes the task it just waited for.
            for task in batch.drain(..) {
                set.counters[index].record_completed(1);
                handler(index, task);
            }
            set.drain_stall(index);
            set.counters[index].record_busy_wakeup();
            backoff.reset();
            wakeups = wakeups.wrapping_add(1);
            if wakeups % ORPHAN_SWEEP_PERIOD == 0 {
                // Bounded-staleness sweep: even a never-idle worker adopts
                // retired-queue stragglers within ORPHAN_SWEEP_PERIOD
                // wakeups.
                adopt_orphans(index, set, handler, &mut batch);
            }
            continue;
        }

        // Retirement (see the WorkerSet protocol): own queue observed
        // empty while the slot is marked retiring — try to exit. A failed
        // CAS means a concurrent grow resurrected the slot; keep working.
        if running_now && set.slots[index].load(Ordering::SeqCst) == SLOT_RETIRING {
            // Time only the exit hand-off (queue-observed-dry → exit): the
            // residual drain that preceded it is throughput, not swap
            // overhead — the cost plane prices stranded residuals
            // separately from the observed queue depths, and folding drain
            // time into the per-worker resize estimate would double-count
            // it and veto cheap resizes for epochs afterwards.
            let exit_started = Instant::now();
            if set.slots[index]
                .compare_exchange(
                    SLOT_RETIRING,
                    SLOT_INACTIVE,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                set.record_resize_nanos(
                    u64::try_from(exit_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    1,
                );
                return;
            }
            continue;
        }

        // Idle: first adopt orphaned work (the elastic hand-off), then
        // steal from active peers if enabled.
        if adopt_orphans(index, set, handler, &mut batch) {
            backoff.reset();
            continue;
        }

        if set.config.work_stealing {
            // Steal from the longest *active* queue — steals respect the
            // current generation's ownership map (retired slots are the
            // adoption path above, not steal victims). Steals move whole
            // batches for the same lock amortization as the own-queue
            // drain, and are recorded separately from routed completions so
            // chronic stealing shows up as imbalance instead of masking it.
            let active = set.active();
            let victim = (0..active)
                .filter(|&i| i != index)
                .max_by_key(|&i| set.queues[i].len());
            if let Some(victim) = victim {
                let stolen = set.queues[victim].pop_batch(&mut batch, set.config.batch_size);
                if stolen > 0 {
                    set.counters[index].record_stolen_batch(stolen as u64);
                    set.counters[index].record_busy_wakeup();
                    for task in batch.drain(..) {
                        handler(index, task);
                    }
                    set.drain_stall(index);
                    backoff.reset();
                    continue;
                }
            }
        }

        if may_exit {
            // Drain mode; own queue, orphans and steal victims all empty;
            // no in-flight submissions: done.
            return;
        }
        if !running_now {
            // Stopped but a submission is mid-push; check again shortly.
            backoff.snooze();
            continue;
        }
        set.counters[index].record_idle_poll();
        if set.config.parking && backoff.is_sleeping() {
            // Escalated past spinning with still nothing to do: block until
            // an enqueue, resize, or shutdown wakes us, instead of burning
            // backoff sleeps. The closure is the final emptiness re-check
            // the parker runs after raising the parked count (see
            // IdleParker); it covers every wake condition the loop above
            // polls for — own queue, orphan slots, steal targets, slot
            // retirement, shutdown.
            let park_started = Instant::now();
            let parked = set.parker.park(|| {
                if !set.gate.is_open()
                    || set.slots[index].load(Ordering::SeqCst) == SLOT_RETIRING
                    || !set.queues[index].is_empty()
                {
                    return true;
                }
                let active = set.active();
                if (active..set.capacity()).any(|slot| !set.queues[slot].is_empty()) {
                    return true;
                }
                set.config.work_stealing
                    && (0..active).any(|slot| slot != index && !set.queues[slot].is_empty())
            });
            if parked {
                set.counters[index].record_park(
                    u64::try_from(park_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            continue;
        }
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBounds;
    use crate::scheduler::{FixedKeyScheduler, RoundRobinScheduler, SchedulerKind};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn counting_executor(
        scheduler: Arc<dyn Scheduler>,
        config: ExecutorConfig,
    ) -> (Executor<u64>, Arc<AtomicU64>) {
        let sum = Arc::new(AtomicU64::new(0));
        let sum_clone = Arc::clone(&sum);
        let exec = Executor::start(config, scheduler, move |_worker, task: u64| {
            sum_clone.fetch_add(task, Ordering::Relaxed);
        });
        (exec, sum)
    }

    fn drain_config() -> ExecutorConfig {
        ExecutorConfig::default().with_drain_on_shutdown(true)
    }

    #[test]
    fn executes_every_submitted_task() {
        let scheduler = Arc::new(RoundRobinScheduler::new(3));
        let (exec, sum) = counting_executor(scheduler, drain_config());
        let n = 1_000u64;
        for i in 1..=n {
            exec.submit_blocking(i, i).unwrap();
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), n);
        assert_eq!(report.abandoned, 0);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn fixed_scheduler_routes_tasks_to_owning_worker() {
        let scheduler = Arc::new(FixedKeyScheduler::new(4, KeyBounds::new(0, 99)));
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let seen_clone = Arc::clone(&seen);
        let exec = Executor::start(drain_config(), scheduler, move |worker, key: u64| {
            // Record which worker handled which key range.
            assert_eq!(worker, (key / 25) as usize, "key {key} on wrong worker");
            seen_clone[worker].fetch_add(1, Ordering::Relaxed);
        });
        for key in 0..100u64 {
            exec.submit_blocking(key, key).unwrap();
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), 100);
        for w in 0..4 {
            assert_eq!(seen[w].load(Ordering::Relaxed), 25);
        }
    }

    #[test]
    fn per_worker_counters_reflect_dispatch() {
        let scheduler = SchedulerKind::FixedKey.build(2, KeyBounds::new(0, 9));
        let (exec, _) = counting_executor(scheduler, drain_config());
        for _ in 0..50 {
            exec.submit_blocking(0, 1).unwrap(); // low half -> worker 0
        }
        for _ in 0..10 {
            exec.submit_blocking(9, 1).unwrap(); // high half -> worker 1
        }
        let report = exec.shutdown();
        assert_eq!(report.load.per_worker, vec![50, 10]);
        assert!(report.load.imbalance() > 1.5);
    }

    #[test]
    fn shutdown_without_drain_reports_abandoned_tasks() {
        // One worker, tasks that take a while: stop before the queue empties.
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default().with_drain_on_shutdown(false),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(2)),
        );
        for i in 0..200u64 {
            exec.submit_blocking(i, i).unwrap();
        }
        let report = exec.shutdown();
        assert!(
            report.completed() + report.abandoned >= 200,
            "tasks must be either completed or abandoned"
        );
        assert!(report.abandoned > 0, "some tasks should remain queued");
    }

    #[test]
    fn work_stealing_rescues_an_imbalanced_queue() {
        // Fixed partition over 2 workers but every key goes to worker 0;
        // with stealing enabled worker 1 should still execute some tasks.
        let scheduler = Arc::new(FixedKeyScheduler::new(2, KeyBounds::new(0, 99)));
        let exec = Executor::start(
            drain_config().with_work_stealing(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_micros(200)),
        );
        for _ in 0..500 {
            exec.submit_blocking(0, 0).unwrap(); // all keys in worker 0's range
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), 500);
        assert!(
            report.stolen > 0,
            "worker 1 should have stolen some tasks: {report:?}"
        );
    }

    #[test]
    fn back_pressure_bounds_queue_growth() {
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(50))
                .with_drain_on_shutdown(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_micros(50)),
        );
        for i in 0..500u64 {
            exec.submit_blocking(i, i).unwrap();
            assert!(
                exec.queue_lengths()[0] <= 51,
                "queue exceeded the back-pressure bound"
            );
        }
        let report = exec.shutdown();
        assert_eq!(report.completed(), 500);
    }

    #[test]
    fn try_submit_reports_queue_full_then_shutdown() {
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(2))
                .with_drain_on_shutdown(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(5)),
        );
        let mut saw_full = false;
        for i in 0..100u64 {
            match exec.try_submit(0, i) {
                Ok(()) => {}
                Err(err) => {
                    assert!(err.is_queue_full());
                    assert_eq!(err.into_task(), i, "rejected task is handed back");
                    saw_full = true;
                    break;
                }
            }
        }
        assert!(saw_full, "a depth bound of 2 must reject quickly");
        exec.stop();
        let err = exec.try_submit(0, 42).unwrap_err();
        assert!(err.is_shutting_down());
        exec.shutdown();
    }

    #[test]
    fn blocked_producer_returns_promptly_on_stop() {
        // One slow worker and a queue bound of 1: a third task blocks in
        // submit_blocking until stop() is called, then errors out instead of
        // pushing onto a queue nobody will drain (the old API span forever
        // and then enqueued anyway).
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Arc::new(Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(1))
                .with_drain_on_shutdown(false),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(800)),
        ));
        exec.submit_blocking(0, 1).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // worker picks up task 1
        exec.submit_blocking(0, 2).unwrap(); // fills the queue to its bound
        let producer = {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || exec.submit_blocking(0, 3))
        };
        std::thread::sleep(Duration::from_millis(100));
        exec.stop();
        let blocked_result = producer.join().unwrap();
        assert!(
            blocked_result.unwrap_err().is_shutting_down(),
            "blocked producer must observe shutdown promptly"
        );
        let exec = Arc::into_inner(exec).expect("producer clone dropped");
        let report = exec.shutdown();
        assert!(
            report.abandoned >= 1,
            "task 2 was never drained: {report:?}"
        );
    }

    #[test]
    fn batch_submission_executes_everything_in_order_per_worker() {
        // Keys routed by the fixed partition: each worker's run must be
        // executed in submission order.
        let scheduler = Arc::new(FixedKeyScheduler::new(4, KeyBounds::new(0, 99)));
        let seen: Arc<Vec<parking_lot::Mutex<Vec<u64>>>> = Arc::new(
            (0..4)
                .map(|_| parking_lot::Mutex::new(Vec::new()))
                .collect(),
        );
        let seen_clone = Arc::clone(&seen);
        let exec = Executor::start(drain_config(), scheduler, move |worker, task: u64| {
            seen_clone[worker].lock().push(task);
        });
        let batch: Vec<(TxnKey, u64)> = (0..1_000u64).map(|i| (i % 100, i)).collect();
        assert_eq!(exec.submit_batch_blocking(batch).unwrap(), 1_000);
        let report = exec.shutdown();
        assert_eq!(report.completed(), 1_000);
        let mut total = 0;
        for worker in seen.iter() {
            let tasks = worker.lock();
            total += tasks.len();
            for pair in tasks.windows(2) {
                assert!(pair[0] < pair[1], "per-worker FIFO violated: {pair:?}");
            }
        }
        assert_eq!(total, 1_000);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let scheduler = Arc::new(RoundRobinScheduler::new(2));
        let (exec, _) = counting_executor(scheduler, drain_config());
        assert_eq!(exec.submit_batch_blocking(Vec::new()).unwrap(), 0);
        assert_eq!(exec.try_submit_batch(Vec::new()).unwrap(), 0);
        exec.shutdown();
    }

    #[test]
    fn try_submit_batch_reports_partial_accept_on_full_queue() {
        // One slow worker with a depth bound of 8: a 50-task batch must be
        // partially accepted, with the overflow handed back for retry.
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(8))
                .with_batch_size(1)
                .with_drain_on_shutdown(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_millis(2)),
        );
        let batch: Vec<(TxnKey, u64)> = (0..50u64).map(|i| (i, i)).collect();
        let err = exec.try_submit_batch(batch).unwrap_err();
        assert!(err.is_queue_full());
        assert!(err.is_partial(), "some of the batch fits under the bound");
        assert_eq!(err.accepted + err.rejected.len(), 50, "{err:?}");
        let accepted_first = err.accepted as u64;
        // Retrying the rejected remainder (blocking) loses nothing.
        let rejected = err.into_rejected();
        assert_eq!(rejected[0].1, accepted_first, "overflow keeps its order");
        exec.submit_batch_blocking(rejected).unwrap();
        let report = exec.shutdown();
        assert_eq!(report.completed(), 50);
    }

    #[test]
    fn blocking_batch_submission_respects_the_depth_bound() {
        // A single producer pushing a 300-task batch against a depth bound
        // of 10 must never blow the bound by a whole run: the batch is
        // pushed chunk-wise, each chunk no larger than the observed free
        // space.
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let exec = Arc::new(Executor::start(
            ExecutorConfig::default()
                .with_max_queue_depth(Some(10))
                .with_batch_size(4)
                .with_drain_on_shutdown(true),
            scheduler,
            |_, _task: u64| std::thread::sleep(Duration::from_micros(200)),
        ));
        let producer = {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                let batch: Vec<(TxnKey, u64)> = (0..300u64).map(|i| (i, i)).collect();
                exec.submit_batch_blocking(batch).unwrap()
            })
        };
        // Sample the queue while the batch trickles in. The single producer
        // never pushes more than the free space it observed, and workers
        // only shrink the queue, so the bound holds throughout.
        for _ in 0..200 {
            assert!(
                exec.queue_lengths()[0] <= 10,
                "blocking batch overshot the depth bound"
            );
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(producer.join().unwrap(), 300);
        let exec = Arc::into_inner(exec).expect("producer clone dropped");
        let report = exec.shutdown();
        assert_eq!(report.completed(), 300);
    }

    #[test]
    fn batch_submission_after_stop_hands_everything_back() {
        let scheduler = Arc::new(RoundRobinScheduler::new(2));
        let (exec, _) = counting_executor(scheduler, drain_config());
        exec.stop();
        let batch: Vec<(TxnKey, u64)> = (0..10u64).map(|i| (i, i)).collect();
        let err = exec.submit_batch_blocking(batch).unwrap_err();
        assert!(err.is_shutting_down());
        assert_eq!(err.accepted, 0);
        assert_eq!(err.rejected.len(), 10);
        exec.shutdown();
    }

    #[test]
    fn concurrent_batch_producers_all_get_through() {
        let scheduler = SchedulerKind::AdaptiveKey.build(4, KeyBounds::dict16());
        let (exec, sum) = counting_executor(scheduler, drain_config());
        let exec = Arc::new(exec);
        let producers = 4u64;
        let batches = 40u64;
        let batch_len = 100u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    for b in 0..batches {
                        let batch: Vec<(TxnKey, u64)> = (0..batch_len)
                            .map(|i| (((p * batches + b) * batch_len + i) % 65_536, 1))
                            .collect();
                        exec.submit_batch_blocking(batch).unwrap();
                    }
                });
            }
        });
        let exec = Arc::into_inner(exec).expect("all producer clones dropped");
        let report = exec.shutdown();
        let total = producers * batches * batch_len;
        assert_eq!(report.completed(), total);
        assert_eq!(sum.load(Ordering::Relaxed), total);
    }

    #[test]
    fn batch_size_one_still_works() {
        let scheduler = Arc::new(RoundRobinScheduler::new(2));
        let (exec, sum) = counting_executor(
            scheduler,
            drain_config()
                .with_batch_size(1)
                .with_queue(QueueKind::Sharded),
        );
        let batch: Vec<(TxnKey, u64)> = (1..=100u64).map(|i| (i, i)).collect();
        exec.submit_batch_blocking(batch).unwrap();
        let report = exec.shutdown();
        assert_eq!(report.completed(), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 5_050);
    }

    #[test]
    fn partition_swaps_mid_stream_lose_and_duplicate_nothing() {
        // Continuous-adaptation drain safety: while producers hammer the
        // executor with batches, the adaptive scheduler keeps republishing
        // its partition (alternating between two opposite skews so every
        // publish really moves the boundaries). Every submitted task must be
        // executed exactly once, across arbitrarily many generation swaps.
        use crate::adaptive::AdaptiveKeyScheduler;
        use crate::drift::AdaptationConfig;

        let scheduler = Arc::new(
            AdaptiveKeyScheduler::new(4, KeyBounds::dict16())
                .with_sample_threshold(500)
                .with_adaptation(AdaptationConfig::new().with_interval(500)),
        );
        let seen = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let seen_clone = Arc::clone(&seen);
        let exec = Arc::new(Executor::start(
            drain_config(),
            Arc::clone(&scheduler) as Arc<dyn Scheduler>,
            move |_worker, task: u64| {
                assert!(seen_clone.lock().insert(task), "task {task} ran twice");
            },
        ));
        let producers = 4u64;
        let per_producer_batches = 30u64;
        let batch_len = 100u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    for b in 0..per_producer_batches {
                        let base = (p * per_producer_batches + b) * batch_len;
                        // Sustained shift halfway through: every producer
                        // moves its hot range at the same batch index, so
                        // consecutive epochs drift the same way and the
                        // trigger confirms while submissions are in flight.
                        let hot = if b < per_producer_batches / 2 {
                            0
                        } else {
                            60_000
                        };
                        // Keys spread over a stationary 4 000-wide range per
                        // phase (stride so every batch covers the range), so
                        // consecutive epochs within a phase look alike.
                        let batch: Vec<(TxnKey, u64)> = (0..batch_len)
                            .map(|i| (hot + (base + i) * 37 % 4_000, base + i))
                            .collect();
                        exec.submit_batch_blocking(batch).unwrap();
                    }
                });
            }
        });
        let generation = exec.partition_generation();
        assert!(
            generation >= 2,
            "the table must have swapped at least once mid-stream (gen {generation})"
        );
        let exec = Arc::into_inner(exec).expect("all producer clones dropped");
        let report = exec.shutdown();
        let total = producers * per_producer_batches * batch_len;
        assert_eq!(report.completed(), total);
        assert_eq!(seen.lock().len() as u64, total, "no task lost");
    }

    #[test]
    fn pool_resizes_mid_stream_lose_and_duplicate_nothing() {
        // Elastic drain safety (the grow/shrink counterpart of the
        // partition-swap test above): while producers hammer the executor
        // with batches — and idle workers steal — a resizer thread keeps
        // growing and shrinking the pool through the scheduler. Every
        // submitted task must execute exactly once across every generation
        // swap, retirement, and adoption.
        use crate::adaptive::AdaptiveKeyScheduler;

        let scheduler = Arc::new(
            AdaptiveKeyScheduler::new(2, KeyBounds::dict16())
                .with_worker_range(1, 6)
                .with_sample_threshold(500),
        );
        let seen = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let seen_clone = Arc::clone(&seen);
        let exec = Arc::new(Executor::start(
            drain_config().with_work_stealing(true),
            Arc::clone(&scheduler) as Arc<dyn Scheduler>,
            move |_worker, task: u64| {
                assert!(seen_clone.lock().insert(task), "task {task} ran twice");
            },
        ));
        assert_eq!(exec.workers(), 6, "queues sized at the growth ceiling");
        assert_eq!(exec.active_workers(), 2);

        let producers = 4u64;
        let per_producer_batches = 30u64;
        let batch_len = 100u64;
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let scheduler = Arc::clone(&scheduler);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    // Cycle through grows and shrinks, including the
                    // extremes, while submissions are in flight.
                    for &target in [4usize, 1, 6, 2, 5, 1, 3, 6]
                        .iter()
                        .cycle()
                        .take_while(|_| !done.load(Ordering::Relaxed))
                    {
                        scheduler.resize_now(target);
                        std::thread::sleep(Duration::from_micros(300));
                    }
                });
            }
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let exec = Arc::clone(&exec);
                    s.spawn(move || {
                        for b in 0..per_producer_batches {
                            let base = (p * per_producer_batches + b) * batch_len;
                            let batch: Vec<(TxnKey, u64)> = (0..batch_len)
                                .map(|i| ((base + i) * 37 % 65_536, base + i))
                                .collect();
                            exec.submit_batch_blocking(batch).unwrap();
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("producer panicked");
            }
            // Producers done: release the resizer so the scope can close.
            done.store(true, Ordering::Relaxed);
        });
        assert!(exec.resizes() > 0, "resizes must have happened mid-stream");
        let exec = Arc::into_inner(exec).expect("all producer clones dropped");
        let report = exec.shutdown();
        let total = producers * per_producer_batches * batch_len;
        assert_eq!(report.completed(), total, "{report:?}");
        assert_eq!(seen.lock().len() as u64, total, "no task lost");
        assert_eq!(
            report.load.total() + report.stolen + report.adopted,
            total,
            "origin accounting must tile the task set: {report:?}"
        );
    }

    #[test]
    fn shrink_hands_residual_work_to_survivors() {
        // Shrink while the doomed workers still hold queued tasks: the
        // retiring workers drain their residuals (or the survivors adopt
        // them) and everything completes exactly once.
        use crate::adaptive::AdaptiveKeyScheduler;

        let scheduler =
            Arc::new(AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 999)).with_worker_range(1, 4));
        let executed = Arc::new(AtomicU64::new(0));
        let executed_clone = Arc::clone(&executed);
        let exec = Executor::start(
            drain_config(),
            Arc::clone(&scheduler) as Arc<dyn Scheduler>,
            move |_worker, _task: u64| {
                executed_clone.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(50));
            },
        );
        // Spread work across all four workers, then shrink to one.
        let batch: Vec<(TxnKey, u64)> = (0..2_000u64).map(|i| (i % 1_000, i)).collect();
        exec.submit_batch_blocking(batch).unwrap();
        assert!(scheduler.resize_now(1));
        assert_eq!(exec.active_workers(), 1);
        // New submissions route to the single survivor only.
        let batch: Vec<(TxnKey, u64)> = (0..500u64).map(|i| (i % 1_000, 10_000 + i)).collect();
        exec.submit_batch_blocking(batch).unwrap();
        let report = exec.shutdown();
        assert_eq!(report.completed(), 2_500, "{report:?}");
        assert_eq!(report.abandoned, 0);
        assert_eq!(executed.load(Ordering::Relaxed), 2_500);
    }

    #[test]
    fn grow_spawns_workers_that_drain_their_queues() {
        use crate::adaptive::AdaptiveKeyScheduler;

        let scheduler =
            Arc::new(AdaptiveKeyScheduler::new(1, KeyBounds::new(0, 999)).with_worker_range(1, 4));
        let (exec, sum) = {
            let scheduler = Arc::clone(&scheduler) as Arc<dyn Scheduler>;
            let sum = Arc::new(AtomicU64::new(0));
            let sum_clone = Arc::clone(&sum);
            let exec = Executor::start(drain_config(), scheduler, move |_worker, task: u64| {
                sum_clone.fetch_add(task, Ordering::Relaxed);
            });
            (exec, sum)
        };
        assert_eq!(exec.active_workers(), 1);
        assert!(scheduler.resize_now(4));
        assert_eq!(exec.active_workers(), 4);
        let n = 2_000u64;
        let batch: Vec<(TxnKey, u64)> = (1..=n).map(|i| (i % 1_000, i)).collect();
        exec.submit_batch_blocking(batch).unwrap();
        let report = exec.shutdown();
        assert_eq!(report.completed(), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        assert_eq!(report.resizes, 1);
        assert_eq!(report.active_workers, 4);
    }

    #[test]
    fn idle_workers_park_and_wake_on_enqueue() {
        let scheduler = Arc::new(RoundRobinScheduler::new(2));
        let (exec, sum) = counting_executor(scheduler, drain_config());
        for i in 1..=100u64 {
            exec.submit_blocking(i, i).unwrap();
        }
        // Let the pool drain and go idle: backoff escalates past spinning
        // and the workers park instead of sleep-polling.
        let started = std::time::Instant::now();
        while exec.parks() == 0 && started.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(exec.parks() > 0, "idle workers must park");
        // A fresh enqueue must wake a parked worker promptly.
        exec.submit_blocking(0, 1_000).unwrap();
        let expected = 100 * 101 / 2 + 1_000;
        let woke = std::time::Instant::now();
        while sum.load(Ordering::Relaxed) != expected && woke.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            sum.load(Ordering::Relaxed),
            expected,
            "enqueue must wake a parked worker"
        );
        let report = exec.shutdown();
        assert_eq!(report.completed(), 101);
        assert!(report.parks > 0, "{report:?}");
    }

    #[test]
    fn parking_can_be_disabled() {
        let scheduler = Arc::new(RoundRobinScheduler::new(1));
        let (exec, _) = counting_executor(scheduler, drain_config().with_parking(false));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(exec.parks(), 0, "disabled parking never parks");
        exec.shutdown();
    }

    /// A scheduler that captures the pool controller the executor hands it,
    /// so tests can read the raw [`PoolSample`] feed.
    struct CaptivePool {
        inner: RoundRobinScheduler,
        pool: Mutex<Option<Arc<dyn PoolController>>>,
    }

    impl Scheduler for CaptivePool {
        fn dispatch(&self, key: crate::key::TxnKey) -> usize {
            self.inner.dispatch(key)
        }

        fn workers(&self) -> usize {
            self.inner.workers()
        }

        fn attach_pool(&self, pool: Arc<dyn PoolController>) {
            *self.pool.lock() = Some(pool);
        }

        fn name(&self) -> &'static str {
            "captive"
        }
    }

    #[test]
    fn backlog_probe_feeds_dispatcher_depth_into_the_pool_sample() {
        let scheduler = Arc::new(CaptivePool {
            inner: RoundRobinScheduler::new(2),
            pool: Mutex::new(None),
        });
        let (exec, _) =
            counting_executor(Arc::clone(&scheduler) as Arc<dyn Scheduler>, drain_config());
        let pool = scheduler
            .pool
            .lock()
            .clone()
            .expect("pool attached at start");
        assert_eq!(pool.sample().dispatcher_backlog, 0, "no probe yet");
        exec.attach_backlog_probe(Arc::new(|| 42));
        let sample = pool.sample();
        assert_eq!(sample.dispatcher_backlog, 42);
        assert_eq!(
            sample.backlog(),
            sample.queue_depths.iter().sum::<usize>() + 42,
            "dispatcher demand counts into the grow signal"
        );
        exec.shutdown();
    }

    #[test]
    fn concurrent_producers_all_get_through() {
        let scheduler = SchedulerKind::AdaptiveKey.build(4, KeyBounds::dict16());
        let (exec, sum) = counting_executor(scheduler, drain_config());
        let exec = Arc::new(exec);
        let producers = 4u64;
        let per_producer = 2_000u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    for i in 0..per_producer {
                        let key = (p * per_producer + i) % 65_536;
                        exec.submit_blocking(key, 1).unwrap();
                    }
                });
            }
        });
        let exec = Arc::into_inner(exec).expect("all producer clones dropped");
        let report = exec.shutdown();
        assert_eq!(report.completed(), producers * per_producer);
        assert_eq!(sum.load(Ordering::Relaxed), producers * per_producer);
    }
}
