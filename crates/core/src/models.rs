//! Executor models (Figure 1 of the paper).
//!
//! * **No executor** — each thread is both producer and worker: it generates
//!   a transaction and executes it synchronously. No queuing overhead, but no
//!   load balancing and no producer/worker parallelism.
//! * **Centralized executor** — producers hand transactions to a single
//!   dispatcher thread which forwards them to worker queues. Enables policy
//!   control but the dispatcher can become a scalability bottleneck.
//! * **Parallel executors** — the dispatch step runs inline in each producer
//!   (the model used for all of the paper's measurements and the default
//!   here).

/// Which executor wiring the driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutorModel {
    /// Figure 1(a): producers execute their own transactions synchronously.
    NoExecutor,
    /// Figure 1(b): a single dispatcher thread between producers and workers.
    Centralized,
    /// Figure 1(c): each producer dispatches directly into worker queues.
    #[default]
    Parallel,
}

impl ExecutorModel {
    /// All models, in the order of Figure 1.
    pub const ALL: [ExecutorModel; 3] = [
        ExecutorModel::NoExecutor,
        ExecutorModel::Centralized,
        ExecutorModel::Parallel,
    ];

    /// Name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorModel::NoExecutor => "no-executor",
            ExecutorModel::Centralized => "centralized",
            ExecutorModel::Parallel => "parallel",
        }
    }

    /// True when this model uses worker queues at all.
    pub fn uses_queues(&self) -> bool {
        !matches!(self, ExecutorModel::NoExecutor)
    }
}

impl std::fmt::Display for ExecutorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExecutorModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "no-executor" | "none" | "noexecutor" => Ok(ExecutorModel::NoExecutor),
            "centralized" | "central" => Ok(ExecutorModel::Centralized),
            "parallel" => Ok(ExecutorModel::Parallel),
            other => Err(format!("unknown executor model '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn default_is_parallel() {
        assert_eq!(ExecutorModel::default(), ExecutorModel::Parallel);
    }

    #[test]
    fn round_trips_through_strings() {
        for model in ExecutorModel::ALL {
            assert_eq!(ExecutorModel::from_str(model.name()).unwrap(), model);
        }
        assert!(ExecutorModel::from_str("?").is_err());
    }

    #[test]
    fn queue_usage() {
        assert!(!ExecutorModel::NoExecutor.uses_queues());
        assert!(ExecutorModel::Centralized.uses_queues());
        assert!(ExecutorModel::Parallel.uses_queues());
    }
}
