//! # katme-core — the key-based adaptive transactional memory executor
//!
//! This crate implements the primary contribution of *"A Key-based Adaptive
//! Transactional Memory Executor"* (Bai, Shen, Zhang, Scherer, Ding, Scott —
//! IPDPS 2007): an executor that sits between *producer* threads, which
//! generate transactions, and *worker* threads, which execute them inside a
//! software transactional memory, and that decides **which worker runs which
//! transaction** based on a per-transaction *key*.
//!
//! The three scheduling policies from the paper are provided:
//!
//! * [`RoundRobinScheduler`] — key-less baseline, dispatches cyclically.
//! * [`FixedKeyScheduler`] — splits the key space into equal-width ranges,
//!   one per worker.
//! * [`AdaptiveKeyScheduler`] — samples incoming keys, estimates their
//!   cumulative distribution (the PD-partition of Shen & Ding), and splits
//!   the key space into ranges of **equal probability mass**, re-balancing
//!   load for skewed distributions while preserving locality.
//!
//! On top of the schedulers, [`Executor`] runs the worker pool and task
//! queues (Figure 1(c) of the paper: parallel executors embedded in the
//! producers), and [`driver`] reproduces the paper's timed test driver.
//!
//! ```
//! use katme_core::prelude::*;
//!
//! // Adaptive scheduler over a 16-bit key space and 4 workers.
//! let scheduler = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 65_535))
//!     .with_sample_threshold(1_000);
//! // Sample-driven dispatch: before adaptation it behaves like the fixed
//! // scheduler, afterwards queue loads are balanced even for skewed keys.
//! let w = scheduler.dispatch(42);
//! assert!(w < 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod cdf;
pub mod driver;
pub mod executor;
pub mod histogram;
pub mod key;
pub mod models;
pub mod partition;
pub mod sample_size;
pub mod scheduler;
pub mod stats;

pub use adaptive::AdaptiveKeyScheduler;
pub use cdf::PiecewiseCdf;
pub use driver::{Driver, DriverConfig, RunResult};
pub use executor::{Executor, ExecutorConfig};
pub use histogram::Histogram;
pub use key::{BucketKeyMapper, ConstantKeyMapper, DictKeyMapper, KeyBounds, KeyMapper};
pub use models::ExecutorModel;
pub use partition::KeyPartition;
pub use sample_size::required_samples;
pub use scheduler::{FixedKeyScheduler, RoundRobinScheduler, Scheduler, SchedulerKind};
pub use stats::{LoadBalance, WorkerCounters};

/// Commonly used items.
pub mod prelude {
    pub use crate::adaptive::AdaptiveKeyScheduler;
    pub use crate::driver::{Driver, DriverConfig, RunResult};
    pub use crate::executor::{Executor, ExecutorConfig};
    pub use crate::key::{BucketKeyMapper, DictKeyMapper, KeyBounds, KeyMapper};
    pub use crate::models::ExecutorModel;
    pub use crate::scheduler::{
        FixedKeyScheduler, RoundRobinScheduler, Scheduler, SchedulerKind,
    };
}
