//! # katme-core — the key-based adaptive transactional memory executor
//!
//! This crate implements the primary contribution of *"A Key-based Adaptive
//! Transactional Memory Executor"* (Bai, Shen, Zhang, Scherer, Ding, Scott —
//! IPDPS 2007): an executor that sits between *producer* threads, which
//! generate transactions, and *worker* threads, which execute them inside a
//! software transactional memory, and that decides **which worker runs which
//! transaction** based on a per-transaction *key*.
//!
//! > **Start with the [`katme`](../katme/index.html) facade crate.** It
//! > composes this executor with the STM, queues, and statistics behind one
//! > validated `Katme::builder()` entry point, typed task handles, and a
//! > live stats view. The types below are the building blocks the facade is
//! > made of; depend on `katme-core` directly only when assembling a custom
//! > pipeline.
//!
//! The three scheduling policies from the paper are provided:
//!
//! * [`RoundRobinScheduler`] — key-less baseline, dispatches cyclically.
//! * [`FixedKeyScheduler`] — splits the key space into equal-width ranges,
//!   one per worker.
//! * [`AdaptiveKeyScheduler`] — samples incoming keys, estimates their
//!   cumulative distribution (the PD-partition of Shen & Ding), and splits
//!   the key space into ranges of **equal probability mass**, re-balancing
//!   load for skewed distributions while preserving locality.
//!
//! On top of the schedulers, [`Executor`] runs the worker pool and task
//! queues (Figure 1(c) of the paper: parallel executors embedded in the
//! producers). The paper's timed test driver lives in the facade as
//! `katme::Driver`.
//!
//! ```
//! use katme_core::prelude::*;
//!
//! // Adaptive scheduler over a 16-bit key space and 4 workers.
//! let scheduler = AdaptiveKeyScheduler::new(4, KeyBounds::new(0, 65_535))
//!     .with_sample_threshold(1_000);
//! // Sample-driven dispatch: before adaptation it behaves like the fixed
//! // scheduler, afterwards queue loads are balanced even for skewed keys.
//! let w = scheduler.dispatch(42);
//! assert!(w < 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod cdf;
pub mod cost;
pub mod drift;
pub mod executor;
pub mod histogram;
pub mod key;
pub mod lane;
pub mod models;
pub mod partition;
pub mod sample_size;
pub mod scheduler;
pub mod stats;

pub use adaptive::AdaptiveKeyScheduler;
pub use cdf::PiecewiseCdf;
pub use cost::{CostModelConfig, CostModelView, CostPolicy};
pub use drift::{
    AdaptationCause, AdaptationConfig, AdaptationEvent, ContentionSample, ContentionSource,
};
pub use executor::{Executor, ExecutorConfig, ExecutorReport, ShutdownGate, SubmitError};
pub use histogram::Histogram;
pub use key::{BucketKeyMapper, ConstantKeyMapper, DictKeyMapper, KeyBounds, KeyMapper, TxnKey};
pub use lane::LaneTable;
pub use models::ExecutorModel;
pub use partition::{KeyPartition, PartitionGeneration, PartitionTable};
pub use sample_size::required_samples;
pub use scheduler::{FixedKeyScheduler, RoundRobinScheduler, Scheduler, SchedulerKind};
pub use stats::{LoadBalance, WorkerCounters};

/// Commonly used items.
pub mod prelude {
    pub use crate::adaptive::AdaptiveKeyScheduler;
    pub use crate::executor::{Executor, ExecutorConfig, ExecutorReport, SubmitError};
    pub use crate::key::{BucketKeyMapper, DictKeyMapper, KeyBounds, KeyMapper, TxnKey};
    pub use crate::models::ExecutorModel;
    pub use crate::scheduler::{FixedKeyScheduler, RoundRobinScheduler, Scheduler, SchedulerKind};
}
