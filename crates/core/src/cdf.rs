//! Piecewise-linear CDF estimation.
//!
//! Steps (c) and (d) of the paper's Figure 2: from the histogram's cumulative
//! counts the partitioner builds "a piece-wise linear approximation of the
//! cumulative distribution function", which it then inverts to find bucket
//! boundaries of equal probability mass (step (e)).

use crate::histogram::Histogram;
use crate::key::{KeyBounds, TxnKey};

/// A piecewise-linear approximation of a key distribution's CDF.
///
/// The CDF is represented by its value at the right edge of each histogram
/// cell, interpolated linearly inside cells (and anchored at probability 0 at
/// the left edge of the key space).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseCdf {
    bounds: KeyBounds,
    /// Right edge (inclusive) of each cell.
    edges: Vec<TxnKey>,
    /// CDF value at each right edge, in `[0, 1]`, non-decreasing, ending at 1.
    values: Vec<f64>,
    /// Number of samples the estimate is based on.
    samples: u64,
}

impl PiecewiseCdf {
    /// Estimate a CDF from a histogram.
    ///
    /// # Panics
    /// Panics when the histogram contains no samples.
    pub fn from_histogram(hist: &Histogram) -> Self {
        assert!(hist.total() > 0, "cannot estimate a CDF from zero samples");
        let total = hist.total() as f64;
        let cumulative = hist.cumulative();
        let edges: Vec<TxnKey> = (0..hist.cells()).map(|c| hist.cell_range(c).1).collect();
        let values: Vec<f64> = cumulative.iter().map(|&c| c as f64 / total).collect();
        PiecewiseCdf {
            bounds: hist.bounds(),
            edges,
            values,
            samples: hist.total(),
        }
    }

    /// The key bounds the estimate covers.
    pub fn bounds(&self) -> KeyBounds {
        self.bounds
    }

    /// Number of samples behind the estimate.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Estimated `P(key <= k)`.
    pub fn probability_at(&self, key: TxnKey) -> f64 {
        if key < self.bounds.min {
            return 0.0;
        }
        if key >= self.bounds.max {
            return 1.0;
        }
        // Find the cell whose right edge is >= key.
        let idx = self.edges.partition_point(|&e| e < key);
        let right_edge = self.edges[idx];
        let right_value = self.values[idx];
        let (left_edge, left_value) = if idx == 0 {
            (self.bounds.min, 0.0)
        } else {
            (self.edges[idx - 1] + 1, self.values[idx - 1])
        };
        if right_edge <= left_edge {
            return right_value;
        }
        let span = (right_edge - left_edge) as f64;
        let frac = (key - left_edge) as f64 / span;
        left_value + (right_value - left_value) * frac
    }

    /// Inverse CDF: the smallest key whose cumulative probability reaches
    /// `p` (clamped to `[0, 1]`). This is the projection in step (e) of the
    /// paper's Figure 2.
    pub fn quantile(&self, p: f64) -> TxnKey {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return self.bounds.min;
        }
        if p >= 1.0 {
            return self.bounds.max;
        }
        // First cell whose cumulative value reaches p.
        let idx = self.values.partition_point(|&v| v < p);
        if idx >= self.edges.len() {
            return self.bounds.max;
        }
        let right_edge = self.edges[idx];
        let right_value = self.values[idx];
        let (left_edge, left_value) = if idx == 0 {
            (self.bounds.min, 0.0)
        } else {
            (self.edges[idx - 1] + 1, self.values[idx - 1])
        };
        if right_value <= left_value || right_edge <= left_edge {
            return right_edge.min(self.bounds.max);
        }
        let frac = (p - left_value) / (right_value - left_value);
        let offset = ((right_edge - left_edge) as f64 * frac).round() as u64;
        (left_edge + offset).min(self.bounds.max)
    }

    /// Mean absolute deviation between this estimate and another CDF at the
    /// cell edges — used in tests to bound estimation error against a known
    /// ground truth.
    pub fn max_deviation_from<F: Fn(TxnKey) -> f64>(&self, truth: F) -> f64 {
        self.edges
            .iter()
            .map(|&e| (self.probability_at(e) - truth(e)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn uniform_hist(n: u64) -> Histogram {
        let bounds = KeyBounds::new(0, 999);
        let samples: Vec<TxnKey> = (0..n).map(|i| i % 1000).collect();
        Histogram::from_samples(bounds, 50, &samples)
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_histogram_is_rejected() {
        let h = Histogram::new(KeyBounds::new(0, 9), 2);
        let _ = PiecewiseCdf::from_histogram(&h);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let cdf = PiecewiseCdf::from_histogram(&uniform_hist(10_000));
        let mut prev = 0.0;
        for key in (0..1000).step_by(13) {
            let p = cdf.probability_at(key);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-12, "CDF decreased at {key}");
            prev = p;
        }
        assert_eq!(cdf.probability_at(1_000_000), 1.0);
        assert_eq!(cdf.probability_at(0).min(0.1), cdf.probability_at(0));
    }

    #[test]
    fn uniform_cdf_is_close_to_linear() {
        let cdf = PiecewiseCdf::from_histogram(&uniform_hist(100_000));
        let deviation = cdf.max_deviation_from(|k| (k as f64 + 1.0) / 1000.0);
        assert!(deviation < 0.02, "deviation {deviation}");
    }

    #[test]
    fn quantile_inverts_probability() {
        let cdf = PiecewiseCdf::from_histogram(&uniform_hist(50_000));
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let k = cdf.quantile(p);
            let back = cdf.probability_at(k);
            assert!(
                (back - p).abs() < 0.03,
                "quantile({p}) = {k}, CDF back-maps to {back}"
            );
        }
        assert_eq!(cdf.quantile(0.0), 0);
        assert_eq!(cdf.quantile(1.0), 999);
        assert_eq!(cdf.quantile(-3.0), 0);
        assert_eq!(cdf.quantile(7.0), 999);
    }

    #[test]
    fn skewed_distribution_quantiles_land_in_the_heavy_region() {
        // 90% of samples in [0, 99], 10% in [900, 999].
        let bounds = KeyBounds::new(0, 999);
        let mut samples = Vec::new();
        for i in 0..9_000u64 {
            samples.push(i % 100);
        }
        for i in 0..1_000u64 {
            samples.push(900 + (i % 100));
        }
        let hist = Histogram::from_samples(bounds, 100, &samples);
        let cdf = PiecewiseCdf::from_histogram(&hist);
        // The median must be inside the heavy region.
        assert!(cdf.quantile(0.5) < 100);
        // The 95th percentile must be in the tail region.
        assert!(cdf.quantile(0.95) >= 900);
        assert_eq!(cdf.samples(), 10_000);
    }

    #[test]
    fn point_mass_distribution() {
        let bounds = KeyBounds::new(0, 999);
        let samples = vec![500u64; 1_000];
        let hist = Histogram::from_samples(bounds, 100, &samples);
        let cdf = PiecewiseCdf::from_histogram(&hist);
        assert!(cdf.probability_at(499) < 0.6);
        assert_eq!(cdf.probability_at(999), 1.0);
        let q = cdf.quantile(0.5);
        assert!((490..=509).contains(&q), "median {q} should be near 500");
    }
}
