//! The test driver: timed benchmark runs.
//!
//! "The entire system is orchestrated by a test driver thread, which selects
//! the designated benchmark, starts the producer threads, records the
//! starting time, starts the worker threads, and stops the producer and
//! worker threads after the test period. After the test is stopped, the
//! driver thread collects local statistics from the worker threads and
//! reports the cumulative throughput."
//!
//! [`Driver`] reproduces that protocol for every combination the harness
//! needs: benchmark structure × key distribution × scheduler × worker count,
//! the no-executor baseline of Figure 1(a), the centralized model of
//! Figure 1(b), and the trivial-transaction overhead study of Figure 4.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use katme_collections::{Dictionary, StructureKind, TxDictionary};
use katme_queue::QueueKind;
use katme_stm::{CmKind, Stm, StmConfig, StmStatsSnapshot, TVar};
use katme_workload::{DistributionKind, OpGenerator, OpKind, TxnSpec};

use crate::executor::{Executor, ExecutorConfig};
use crate::key::{BucketKeyMapper, DictKeyMapper, KeyMapper};
use crate::models::ExecutorModel;
use crate::scheduler::SchedulerKind;
use crate::stats::LoadBalance;

/// Configuration of one timed run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Number of producer threads ("we use four parallel producers, eight
    /// for the hash table benchmark").
    pub producers: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Executor wiring (Figure 1).
    pub model: ExecutorModel,
    /// Length of the measurement window (the paper uses 10 seconds; the
    /// harness defaults to a few hundred milliseconds so full sweeps finish
    /// on laptop-class machines — pass `--seconds` to scale up).
    pub duration: Duration,
    /// Task-queue implementation.
    pub queue: QueueKind,
    /// Contention manager for the STM ("Polka" in the paper).
    pub contention_manager: CmKind,
    /// Enable work stealing for idle workers.
    pub work_stealing: bool,
    /// Producer back-pressure bound (tasks per queue).
    pub max_queue_depth: Option<usize>,
    /// Seed for the workload generators (each producer derives its own
    /// stream from this seed).
    pub seed: u64,
    /// Number of keys pre-inserted into the structure before the timed
    /// window, so inserts and deletes both find work to do from the start.
    pub preload: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 4,
            producers: 4,
            scheduler: SchedulerKind::AdaptiveKey,
            model: ExecutorModel::Parallel,
            duration: Duration::from_millis(200),
            queue: QueueKind::TwoLock,
            contention_manager: CmKind::Polka,
            work_stealing: false,
            max_queue_depth: Some(10_000),
            seed: 0x5eed,
            preload: 10_000,
        }
    }
}

impl DriverConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the number of producers.
    pub fn with_producers(mut self, producers: usize) -> Self {
        self.producers = producers.max(1);
        self
    }

    /// Set the scheduling policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Set the executor model.
    pub fn with_model(mut self, model: ExecutorModel) -> Self {
        self.model = model;
        self
    }

    /// Set the measurement window.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Set the contention manager.
    pub fn with_contention_manager(mut self, cm: CmKind) -> Self {
        self.contention_manager = cm;
        self
    }

    /// Enable or disable work stealing.
    pub fn with_work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }

    /// Set the number of pre-inserted keys.
    pub fn with_preload(mut self, preload: usize) -> Self {
        self.preload = preload;
        self
    }

    /// Set the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of one timed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheduler that produced this result.
    pub scheduler: SchedulerKind,
    /// Executor model used.
    pub model: ExecutorModel,
    /// Worker threads used.
    pub workers: usize,
    /// Producer threads used.
    pub producers: usize,
    /// Wall-clock length of the measurement window.
    pub elapsed: Duration,
    /// Transactions completed inside the window.
    pub completed: u64,
    /// Transactions generated by the producers inside the window.
    pub produced: u64,
    /// Completed transactions per second.
    pub throughput: f64,
    /// Per-worker completion counts.
    pub load: LoadBalance,
    /// STM activity during the window (commits, aborts, backoffs).
    pub stm: StmStatsSnapshot,
}

impl RunResult {
    /// Conflict (abort) instances per committed transaction — the
    /// "frequency of contentions" the paper reports alongside throughput.
    pub fn contention_ratio(&self) -> f64 {
        self.stm.contention_ratio()
    }
}

/// The timed-run driver.
#[derive(Debug, Clone, Default)]
pub struct Driver {
    config: DriverConfig,
}

impl Driver {
    /// Create a driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        Driver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Run the dictionary microbenchmark (the paper's §4.2): `producers`
    /// threads generate insert/delete transactions with keys drawn from
    /// `distribution` and `workers` threads execute them against a freshly
    /// built `structure`.
    pub fn run_dictionary(
        &self,
        structure: StructureKind,
        distribution: DistributionKind,
    ) -> RunResult {
        let cfg = &self.config;
        let stm = Stm::new(
            StmConfig::default().with_contention_manager(cfg.contention_manager),
        );
        let dict = structure.build(stm.clone());
        preload(&*dict, cfg.preload, cfg.seed, distribution);
        let stm_before = stm.snapshot();

        let result = match cfg.model {
            ExecutorModel::NoExecutor => self.run_no_executor(&*dict, distribution),
            ExecutorModel::Parallel => {
                self.run_with_executor(structure, Arc::clone(&dict), distribution, false)
            }
            ExecutorModel::Centralized => {
                self.run_with_executor(structure, Arc::clone(&dict), distribution, true)
            }
        };

        let mut result = result;
        result.stm = stm.snapshot().since(&stm_before);
        result
    }

    /// The Figure-4 overhead study: trivial transactions (a single-TVar
    /// increment) executed either by `workers` free-running threads
    /// (`use_executor == false`, Figure 1(a)) or through the executor with
    /// the configured number of producers (`use_executor == true`).
    pub fn run_trivial(&self, use_executor: bool) -> RunResult {
        let cfg = &self.config;
        let stm = Stm::new(
            StmConfig::default().with_contention_manager(cfg.contention_manager),
        );
        // One counter per worker: trivial transactions do not conflict, so
        // the measurement isolates executor overhead exactly as in the paper.
        let counters: Arc<Vec<TVar<u64>>> =
            Arc::new((0..cfg.workers).map(|_| TVar::new(0u64)).collect());
        let stm_before = stm.snapshot();

        if !use_executor {
            // k free-running threads executing transactions in a loop.
            let run = Arc::new(AtomicBool::new(true));
            let started = Instant::now();
            let completed: u64 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..cfg.workers)
                    .map(|w| {
                        let stm = stm.clone();
                        let counters = Arc::clone(&counters);
                        let run = Arc::clone(&run);
                        s.spawn(move || {
                            let mut local = 0u64;
                            while run.load(Ordering::Relaxed) {
                                stm.atomically(|tx| tx.modify(&counters[w], |v| v + 1));
                                local += 1;
                            }
                            local
                        })
                    })
                    .collect();
                std::thread::sleep(cfg.duration);
                run.store(false, Ordering::Relaxed);
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            let elapsed = started.elapsed();
            return RunResult {
                scheduler: cfg.scheduler,
                model: ExecutorModel::NoExecutor,
                workers: cfg.workers,
                producers: 0,
                elapsed,
                completed,
                produced: completed,
                throughput: completed as f64 / elapsed.as_secs_f64(),
                load: LoadBalance::new(vec![completed / cfg.workers.max(1) as u64]),
                stm: stm.snapshot().since(&stm_before),
            };
        }

        // Executor mode: producers enqueue unit tasks, workers run the
        // trivial transaction.
        let scheduler = cfg
            .scheduler
            .build(cfg.workers, crate::key::KeyBounds::new(0, u16::MAX as u64));
        let stm_for_workers = stm.clone();
        let counters_for_workers = Arc::clone(&counters);
        let executor = Executor::start(
            self.executor_config(),
            scheduler,
            move |worker, _task: TxnSpec| {
                stm_for_workers
                    .atomically(|tx| tx.modify(&counters_for_workers[worker], |v| v + 1));
            },
        );
        let (completed, produced, elapsed, load) =
            self.drive_producers(&executor, DistributionKind::Uniform);
        executor.shutdown();
        RunResult {
            scheduler: cfg.scheduler,
            model: ExecutorModel::Parallel,
            workers: cfg.workers,
            producers: cfg.producers,
            elapsed,
            completed,
            produced,
            throughput: completed as f64 / elapsed.as_secs_f64(),
            load,
            stm: stm.snapshot().since(&stm_before),
        }
    }

    fn executor_config(&self) -> ExecutorConfig {
        ExecutorConfig::default()
            .with_queue(self.config.queue)
            .with_work_stealing(self.config.work_stealing)
            .with_max_queue_depth(self.config.max_queue_depth)
            .with_drain_on_shutdown(false)
    }

    /// Figure 1(a): each of `workers` threads generates and synchronously
    /// executes its own transactions.
    fn run_no_executor(&self, dict: &dyn Dictionary, distribution: DistributionKind) -> RunResult {
        let cfg = &self.config;
        let run = Arc::new(AtomicBool::new(true));
        let started = Instant::now();
        let per_worker: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.workers)
                .map(|w| {
                    let run = Arc::clone(&run);
                    let mut gen = OpGenerator::paper(distribution, cfg.seed.wrapping_add(w as u64));
                    s.spawn(move || {
                        let mut local = 0u64;
                        while run.load(Ordering::Relaxed) {
                            let spec = gen.next_spec();
                            apply_spec(dict, &spec);
                            local += 1;
                        }
                        local
                    })
                })
                .collect();
            std::thread::sleep(cfg.duration);
            run.store(false, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();
        let completed: u64 = per_worker.iter().sum();
        RunResult {
            scheduler: cfg.scheduler,
            model: ExecutorModel::NoExecutor,
            workers: cfg.workers,
            producers: cfg.workers,
            elapsed,
            completed,
            produced: completed,
            throughput: completed as f64 / elapsed.as_secs_f64(),
            load: LoadBalance::new(per_worker),
            stm: StmStatsSnapshot::default(),
        }
    }

    /// Figures 1(b)/(c): producers feed the executor, workers apply the
    /// operations to the shared dictionary.
    fn run_with_executor(
        &self,
        structure: StructureKind,
        dict: Arc<dyn TxDictionary>,
        distribution: DistributionKind,
        centralized: bool,
    ) -> RunResult {
        let cfg = &self.config;
        // The transaction key: the hash-bucket index for the hash table (the
        // paper's §4.2), the dictionary key itself for tree and list.
        let bucket_mapper = BucketKeyMapper::paper();
        let dict_mapper = DictKeyMapper;
        let bounds = match structure {
            StructureKind::HashTable => KeyMapper::<TxnSpec>::bounds(&bucket_mapper),
            _ => KeyMapper::<TxnSpec>::bounds(&dict_mapper),
        };
        let scheduler = cfg.scheduler.build(cfg.workers, bounds);

        let dict_for_workers = Arc::clone(&dict);
        let executor = Executor::start(
            self.executor_config(),
            Arc::clone(&scheduler),
            move |_worker, spec: TxnSpec| {
                apply_spec(&*dict_for_workers, &spec);
            },
        );

        let (completed, produced, elapsed, load) = if centralized {
            self.drive_producers_centralized(&executor, structure, distribution)
        } else {
            self.drive_producers_keyed(&executor, structure, distribution)
        };
        executor.shutdown();

        RunResult {
            scheduler: cfg.scheduler,
            model: if centralized {
                ExecutorModel::Centralized
            } else {
                ExecutorModel::Parallel
            },
            workers: cfg.workers,
            producers: cfg.producers,
            elapsed,
            completed,
            produced,
            throughput: completed as f64 / elapsed.as_secs_f64(),
            load,
            stm: StmStatsSnapshot::default(),
        }
    }

    /// Producer loop for the parallel-executor model: each producer maps the
    /// spec to its transaction key and submits directly.
    fn drive_producers_keyed(
        &self,
        executor: &Executor<TxnSpec>,
        structure: StructureKind,
        distribution: DistributionKind,
    ) -> (u64, u64, Duration, LoadBalance) {
        let cfg = &self.config;
        let run = Arc::new(AtomicBool::new(true));
        let produced = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        std::thread::scope(|s| {
            for p in 0..cfg.producers {
                let run = Arc::clone(&run);
                let produced = Arc::clone(&produced);
                let mut gen =
                    OpGenerator::paper(distribution, cfg.seed.wrapping_add(1000 + p as u64));
                s.spawn(move || {
                    let bucket_mapper = BucketKeyMapper::paper();
                    let dict_mapper = DictKeyMapper;
                    while run.load(Ordering::Relaxed) {
                        let spec = gen.next_spec();
                        let key = match structure {
                            StructureKind::HashTable => bucket_mapper.key(&spec),
                            _ => dict_mapper.key(&spec),
                        };
                        executor.submit(key, spec);
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(cfg.duration);
            run.store(false, Ordering::Relaxed);
        });
        let completed = executor.completed();
        let elapsed = started.elapsed();
        let load = LoadBalance::new(executor.per_worker_completed());
        (completed, produced.load(Ordering::Relaxed), elapsed, load)
    }

    /// Producer loop for the trivial-transaction overhead study (keys are
    /// uniform, the payload is ignored by the handler).
    fn drive_producers(
        &self,
        executor: &Executor<TxnSpec>,
        distribution: DistributionKind,
    ) -> (u64, u64, Duration, LoadBalance) {
        self.drive_producers_keyed(executor, StructureKind::RbTree, distribution)
    }

    /// Producer loop for the centralized model: producers push raw specs to
    /// one shared queue; a single dispatcher thread runs the scheduler.
    fn drive_producers_centralized(
        &self,
        executor: &Executor<TxnSpec>,
        structure: StructureKind,
        distribution: DistributionKind,
    ) -> (u64, u64, Duration, LoadBalance) {
        let cfg = &self.config;
        let run = Arc::new(AtomicBool::new(true));
        let produced = Arc::new(AtomicU64::new(0));
        let central: Arc<katme_queue::TwoLockQueue<TxnSpec>> =
            Arc::new(katme_queue::TwoLockQueue::new());
        let started = Instant::now();
        std::thread::scope(|s| {
            // Producers: generate and push to the central queue.
            for p in 0..cfg.producers {
                let run = Arc::clone(&run);
                let produced = Arc::clone(&produced);
                let central = Arc::clone(&central);
                let mut gen =
                    OpGenerator::paper(distribution, cfg.seed.wrapping_add(2000 + p as u64));
                s.spawn(move || {
                    while run.load(Ordering::Relaxed) {
                        if central.count() > 20_000 {
                            std::thread::yield_now();
                            continue;
                        }
                        central.enqueue(gen.next_spec());
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // The single dispatcher (the "executor thread" of Figure 1(b)).
            {
                let run = Arc::clone(&run);
                let central = Arc::clone(&central);
                s.spawn(move || {
                    let bucket_mapper = BucketKeyMapper::paper();
                    let dict_mapper = DictKeyMapper;
                    let mut backoff = katme_queue::Backoff::new();
                    loop {
                        match central.dequeue() {
                            Some(spec) => {
                                let key = match structure {
                                    StructureKind::HashTable => bucket_mapper.key(&spec),
                                    _ => dict_mapper.key(&spec),
                                };
                                executor.submit(key, spec);
                                backoff.reset();
                            }
                            None => {
                                if !run.load(Ordering::Relaxed) {
                                    break;
                                }
                                backoff.snooze();
                            }
                        }
                    }
                });
            }
            std::thread::sleep(cfg.duration);
            run.store(false, Ordering::Relaxed);
        });
        let completed = executor.completed();
        let elapsed = started.elapsed();
        let load = LoadBalance::new(executor.per_worker_completed());
        (completed, produced.load(Ordering::Relaxed), elapsed, load)
    }
}

/// Apply one generated transaction to a dictionary.
fn apply_spec(dict: &dyn Dictionary, spec: &TxnSpec) {
    match spec.op {
        OpKind::Insert => {
            dict.insert(spec.key, spec.value);
        }
        OpKind::Delete => {
            dict.remove(spec.key);
        }
        OpKind::Lookup => {
            dict.lookup(spec.key);
        }
    }
}

/// Pre-populate a dictionary so deletes find keys to remove from the start.
fn preload(dict: &dyn Dictionary, count: usize, seed: u64, distribution: DistributionKind) {
    let mut gen = OpGenerator::paper(distribution, seed.wrapping_mul(31).wrapping_add(7));
    for _ in 0..count {
        let spec = gen.next_spec();
        dict.insert(spec.key, spec.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_config_builder() {
        let cfg = DriverConfig::new()
            .with_workers(8)
            .with_producers(2)
            .with_scheduler(SchedulerKind::FixedKey)
            .with_model(ExecutorModel::Centralized)
            .with_duration(Duration::from_millis(50))
            .with_contention_manager(CmKind::Karma)
            .with_work_stealing(true)
            .with_preload(5)
            .with_seed(9);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.producers, 2);
        assert_eq!(cfg.scheduler, SchedulerKind::FixedKey);
        assert_eq!(cfg.model, ExecutorModel::Centralized);
        assert_eq!(cfg.contention_manager, CmKind::Karma);
        assert!(cfg.work_stealing);
        assert_eq!(cfg.preload, 5);
        assert_eq!(cfg.seed, 9);
    }
}
