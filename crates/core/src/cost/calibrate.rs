//! Online calibration of swap costs.
//!
//! The decision "is this repartition worth it?" needs a price for the swap
//! itself, and that price is host- and load-dependent: a partition publish
//! costs microseconds on an idle laptop and much more under cache pressure,
//! a thread spawn costs whatever the OS charges today, a telemetry rebucket
//! scales with the bucket count. Instead of hard-coding constants, the cost
//! plane *measures* every swap it performs — publish latency in
//! [`crate::AdaptiveKeyScheduler`], spawn/retire time in the executor's
//! `WorkerSet`, rebucket time around the CDF observer — and folds the
//! measurements into EWMA estimates here.

/// Exponentially-weighted moving average over a stream of samples.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    samples: u64,
}

impl Ewma {
    /// Create an estimator with smoothing factor `alpha` (clamped into
    /// `(0, 1]`; 1 = only the latest sample counts).
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: 0.0,
            samples: 0,
        }
    }

    /// Fold one sample into the estimate. The first sample seeds the
    /// average directly.
    pub fn observe(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        self.value = if self.samples == 0 {
            sample
        } else {
            self.value + self.alpha * (sample - self.value)
        };
        self.samples += 1;
    }

    /// Current estimate, `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.value)
    }

    /// Current estimate, or 0 before the first sample.
    pub fn value_or_zero(&self) -> f64 {
        self.value().unwrap_or(0.0)
    }

    /// Samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Default EWMA smoothing for the swap-cost estimates: heavy enough that a
/// couple of swaps establish a usable price, light enough that an outlier
/// (a page fault mid-publish) does not own the estimate.
pub const DEFAULT_COST_ALPHA: f64 = 0.3;

/// Calibrated one-time costs of performing a configuration swap, all in
/// seconds. Fed by the scheduler (publish, rebucket) and the executor's
/// pool telemetry (spawn/retire, via `PoolSample::resize_nanos`).
#[derive(Debug, Clone)]
pub struct SwapCostCalibrator {
    publish: Ewma,
    rebucket: Ewma,
    resize_per_worker: Ewma,
    min_samples: u64,
}

impl SwapCostCalibrator {
    /// Create a calibrator that counts as *warm* once `min_samples` publish
    /// latencies have been observed (every adaptation — including the
    /// initial one — produces a publish sample, so warm-up completes with
    /// the paper's first adaptation when `min_samples` is 1).
    pub fn new(alpha: f64, min_samples: u64) -> Self {
        SwapCostCalibrator {
            publish: Ewma::new(alpha),
            rebucket: Ewma::new(alpha),
            resize_per_worker: Ewma::new(alpha),
            min_samples: min_samples.max(1),
        }
    }

    /// Fold in a measured partition-publish latency (seconds).
    pub fn observe_publish(&mut self, seconds: f64) {
        self.publish.observe(seconds.max(0.0));
    }

    /// Fold in a measured telemetry-rebucket latency (seconds).
    pub fn observe_rebucket(&mut self, seconds: f64) {
        self.rebucket.observe(seconds.max(0.0));
    }

    /// Fold in a measured per-worker spawn/retire latency (seconds per
    /// worker changed).
    pub fn observe_resize_per_worker(&mut self, seconds: f64) {
        self.resize_per_worker.observe(seconds.max(0.0));
    }

    /// True once enough publishes have been measured for the estimates to
    /// be trusted; until then the scheduler stays on its threshold triggers.
    pub fn is_warm(&self) -> bool {
        self.publish.samples() >= self.min_samples
    }

    /// Predicted wall-clock cost (seconds) of a swap that changes the pool
    /// width by `width_delta` workers: publish + rebucket + per-worker
    /// spawn/retire. Components without samples price at 0 (they have never
    /// been paid, e.g. rebucket when no telemetry is attached).
    pub fn swap_seconds(&self, width_delta: usize) -> f64 {
        self.publish.value_or_zero()
            + self.rebucket.value_or_zero()
            + width_delta as f64 * self.resize_per_worker.value_or_zero()
    }

    /// Point-in-time view of the calibration state.
    pub fn view(&self) -> CalibrationView {
        CalibrationView {
            warm: self.is_warm(),
            publish_seconds: self.publish.value(),
            rebucket_seconds: self.rebucket.value(),
            resize_seconds_per_worker: self.resize_per_worker.value(),
            publish_samples: self.publish.samples(),
        }
    }
}

/// Snapshot of the swap-cost calibration, surfaced through
/// `StatsView::cost_model`.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationView {
    /// True once the calibrator has seen enough publishes to price a swap.
    pub warm: bool,
    /// EWMA partition-publish latency (seconds), if measured.
    pub publish_seconds: Option<f64>,
    /// EWMA telemetry-rebucket latency (seconds), if measured.
    pub rebucket_seconds: Option<f64>,
    /// EWMA thread spawn/retire latency per worker (seconds), if measured.
    pub resize_seconds_per_worker: Option<f64>,
    /// Publish latencies observed so far.
    pub publish_samples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0), "first sample seeds directly");
        e.observe(20.0);
        assert!((e.value().unwrap() - 15.0).abs() < 1e-12);
        assert_eq!(e.samples(), 2);
        e.observe(f64::NAN); // ignored
        assert_eq!(e.samples(), 2);
    }

    #[test]
    fn ewma_converges_to_a_constant_feed() {
        // Scripted feed: a burst of noisy samples followed by a constant
        // stream — the estimate must converge to the constant.
        let mut e = Ewma::new(DEFAULT_COST_ALPHA);
        for noisy in [5.0e-5, 2.0e-4, 8.0e-5] {
            e.observe(noisy);
        }
        for _ in 0..30 {
            e.observe(1.0e-4);
        }
        let value = e.value().unwrap();
        assert!(
            (value - 1.0e-4).abs() < 1.0e-6,
            "EWMA must converge to the steady feed: {value}"
        );
    }

    #[test]
    fn calibrator_warms_after_min_publish_samples() {
        let mut c = SwapCostCalibrator::new(0.5, 2);
        assert!(!c.is_warm());
        c.observe_publish(1.0e-4);
        assert!(!c.is_warm(), "one sample below min_samples=2");
        c.observe_publish(1.0e-4);
        assert!(c.is_warm());
        let view = c.view();
        assert!(view.warm);
        assert_eq!(view.publish_samples, 2);
        assert!(view.rebucket_seconds.is_none());
    }

    #[test]
    fn swap_seconds_prices_width_changes_per_worker() {
        let mut c = SwapCostCalibrator::new(1.0, 1);
        c.observe_publish(1.0e-4);
        c.observe_rebucket(2.0e-5);
        c.observe_resize_per_worker(5.0e-4);
        let fixed = c.swap_seconds(0);
        assert!((fixed - 1.2e-4).abs() < 1e-12);
        let grow_two = c.swap_seconds(2);
        assert!((grow_two - (1.2e-4 + 1.0e-3)).abs() < 1e-12);
        // Unmeasured components price at zero, not at a made-up constant.
        let bare = SwapCostCalibrator::new(1.0, 1);
        assert_eq!(bare.swap_seconds(4), 0.0);
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        let mut c = SwapCostCalibrator::new(1.0, 1);
        c.observe_publish(-5.0);
        assert_eq!(c.swap_seconds(0), 0.0);
    }
}
