//! The per-epoch cost model: what does running the next epoch on a given
//! configuration *cost*, in task-equivalents?
//!
//! Every term is denominated in wasted task-executions per epoch, so plan
//! costs, the keep-baseline, and the calibrated swap price (seconds × the
//! observed service rate) share one currency:
//!
//! * **queueing** — imbalance-induced waiting. A partition whose hottest
//!   worker carries `I`× the mean load stretches the epoch's makespan by
//!   the same factor; the excess, `(I − deadband) × tasks` (clamped at 0),
//!   is work the rest of the pool idles behind. The deadband absorbs
//!   sampling noise: an epoch histogram re-fit to its own noise always
//!   promises `I ≈ 1`, and chasing that promise would churn on stationary
//!   load.
//! * **aborts** — each abort wastes roughly one execution. Predicted aborts
//!   scale with concurrency (pairwise conflict opportunities ∝ width − 1)
//!   and with how much contended key mass a plan's boundaries *cut*: a hot
//!   range co-located on one worker serializes its conflicts (the paper's
//!   locality argument), so plans that stop splitting contended telemetry
//!   ranges are predicted to abort less.
//! * **overload** — demand beyond what the width can drain in an epoch
//!   (unserved tasks queue up; each costs one task of latency debt). This
//!   is the grow signal, priced instead of thresholded.
//! * **idle** — capacity beyond demand, priced at a discount
//!   ([`CostModelConfig::idle_weight`]): an unneeded worker is cheaper than
//!   a queued task, but not free. This is the shrink signal.

/// Tuning of the cost model and its decision feedback loop.
#[derive(Debug, Clone)]
pub struct CostModelConfig {
    /// Projected max-over-mean imbalance below which queueing cost reads 0 —
    /// the noise floor that keeps stationary load from ever pricing a swap
    /// above zero gain.
    pub imbalance_deadband: f64,
    /// Price of one worker-epoch of unneeded capacity, in task-equivalents
    /// per task of surplus capacity (1.0 would price idle capacity like
    /// queued work; the default prices it well below).
    pub idle_weight: f64,
    /// Fraction of a *co-located* contended range's aborts that are
    /// predicted to survive co-location (1.0 = co-location does not help;
    /// 0.0 = perfectly serialized).
    pub colocation_discount: f64,
    /// EWMA smoothing for the prediction-error feed.
    pub error_alpha: f64,
    /// Relative prediction error below which a prediction counts as
    /// accurate (rebuilding trust) rather than wrong (spending it).
    pub accuracy_tolerance: f64,
    /// Multiplier applied to trust after a mispredicted *adopted* swap
    /// (multiplicative decrease — a model that keeps being wrong quickly
    /// stops being allowed to spend swaps).
    pub trust_decay: f64,
    /// Trust regained per accurately-predicted epoch (additive increase,
    /// capped at 1).
    pub trust_recovery: f64,
    /// How strongly the smoothed prediction error widens the decision
    /// margin: a swap must clear `swap_cost × (1 + margin_gain × error)`.
    pub margin_gain: f64,
    /// Materiality floor: a plan is only considered when its raw predicted
    /// gain is at least this fraction of the epoch's dispatched tasks.
    /// Marginal wins — re-fitting to shave a 1.6x imbalance to 1.5x — are
    /// noise-level improvements whose realized value rounds to zero, and
    /// buying them repeatedly is exactly the churn the cost plane exists to
    /// avoid.
    pub min_gain_fraction: f64,
    /// Publish-latency samples required before the cost policy takes over
    /// from the threshold triggers (see
    /// [`super::calibrate::SwapCostCalibrator::is_warm`]).
    pub min_calibration_samples: u64,
    /// EWMA smoothing for the observed phase length (epochs between
    /// prediction misses) that estimates the amortization horizon — how
    /// many epochs an adopted plan is expected to stay valid, so its swap
    /// price is spread over its expected lifetime instead of charged to a
    /// single epoch.
    pub horizon_alpha: f64,
    /// Upper bound on the amortization horizon in epochs: however stable
    /// the load looks, a swap is never priced cheaper than
    /// `swap_cost / max_horizon` (bounds the damage of a phase change the
    /// history did not predict).
    pub max_horizon: f64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig {
            imbalance_deadband: 1.5,
            idle_weight: 0.1,
            colocation_discount: 0.8,
            error_alpha: 0.5,
            accuracy_tolerance: 0.5,
            trust_decay: 0.25,
            trust_recovery: 0.25,
            margin_gain: 4.0,
            min_gain_fraction: 0.25,
            min_calibration_samples: 1,
            horizon_alpha: 0.3,
            max_horizon: 8.0,
        }
    }
}

impl CostModelConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the imbalance noise floor (clamped to at least 1).
    pub fn with_imbalance_deadband(mut self, deadband: f64) -> Self {
        self.imbalance_deadband = deadband.max(1.0);
        self
    }

    /// Set the idle-capacity price (clamped to at least 0).
    pub fn with_idle_weight(mut self, weight: f64) -> Self {
        self.idle_weight = weight.max(0.0);
        self
    }

    /// Set the co-location abort discount (clamped into `[0, 1]`).
    pub fn with_colocation_discount(mut self, discount: f64) -> Self {
        self.colocation_discount = discount.clamp(0.0, 1.0);
        self
    }

    /// Set the prediction-error EWMA smoothing (clamped into `(0, 1]`).
    pub fn with_error_alpha(mut self, alpha: f64) -> Self {
        self.error_alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set the accuracy tolerance (clamped to positive).
    pub fn with_accuracy_tolerance(mut self, tolerance: f64) -> Self {
        self.accuracy_tolerance = tolerance.max(f64::MIN_POSITIVE);
        self
    }

    /// Set the trust decay factor (clamped into `[0, 1)`).
    pub fn with_trust_decay(mut self, decay: f64) -> Self {
        self.trust_decay = decay.clamp(0.0, 0.999);
        self
    }

    /// Set the trust recovery step (clamped into `(0, 1]`).
    pub fn with_trust_recovery(mut self, recovery: f64) -> Self {
        self.trust_recovery = recovery.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set the error-to-margin gain (clamped to at least 0).
    pub fn with_margin_gain(mut self, gain: f64) -> Self {
        self.margin_gain = gain.max(0.0);
        self
    }

    /// Set the materiality floor (clamped to at least 0).
    pub fn with_min_gain_fraction(mut self, fraction: f64) -> Self {
        self.min_gain_fraction = fraction.max(0.0);
        self
    }

    /// Set the calibration warm-up sample count (clamped to at least 1).
    pub fn with_min_calibration_samples(mut self, samples: u64) -> Self {
        self.min_calibration_samples = samples.max(1);
        self
    }

    /// Set the phase-length EWMA smoothing (clamped into `(0, 1]`).
    pub fn with_horizon_alpha(mut self, alpha: f64) -> Self {
        self.horizon_alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set the amortization-horizon ceiling (clamped to at least 1 epoch).
    pub fn with_max_horizon(mut self, horizon: f64) -> Self {
        self.max_horizon = horizon.max(1.0);
        self
    }
}

/// Everything the cost plane observed over one epoch — the inputs every
/// prediction is made from. Assembled by the scheduler from the epoch
/// histogram, the STM contention deltas, and the executor's pool feed;
/// built by hand in scripted tests.
#[derive(Debug, Clone, Default)]
pub struct EpochObservation {
    /// Keys observed (dispatched) this epoch.
    pub tasks: u64,
    /// Tasks the pool executed this epoch (0 when no pool feed is
    /// attached).
    pub executed: u64,
    /// Wall-clock length of the epoch in seconds.
    pub epoch_seconds: f64,
    /// STM commits this epoch.
    pub commits: u64,
    /// STM aborts this epoch.
    pub aborts: u64,
    /// Per-key-range abort deltas as `(lo, hi, aborts)`, from the quantile
    /// telemetry buckets.
    pub abort_ranges: Vec<(u64, u64, u64)>,
    /// Active workers during the epoch.
    pub active: usize,
    /// Tasks queued at the epoch boundary (worker queues plus dispatcher).
    pub backlog: usize,
    /// Instantaneous per-slot queue depths (used to price residual drain on
    /// shrink plans).
    pub queue_depths: Vec<usize>,
    /// Idle fraction of the pool's wakeups this epoch (idle polls + parks
    /// over all wakeups).
    pub idle_fraction: f64,
    /// Estimated probability (in `[0, 1]`) that this epoch's key
    /// distribution persists into the next epoch — one minus the
    /// total-variation distance between this epoch's histogram and the
    /// previous one's. A plan's predicted gain is an expectation over the
    /// *next* epoch, so it is discounted by this factor: a shape that
    /// flip-flops epoch to epoch (back-pressure-serialized producers under
    /// a phase shift do exactly that) prices its gain near zero, which is
    /// what keeps the cost plane from churning without any two-epoch
    /// confirmation rule.
    pub persistence: f64,
}

impl EpochObservation {
    /// Observed service rate in tasks per second (falls back to the
    /// dispatch rate when the pool feed is absent, and to a floor of one
    /// task per second so seconds→tasks conversions stay finite).
    pub fn service_rate(&self) -> f64 {
        let served = if self.executed > 0 {
            self.executed
        } else {
            self.tasks
        };
        served as f64 / self.epoch_seconds.max(1.0e-9)
    }

    /// Tasks one worker drains per epoch at the observed service rate.
    pub fn per_worker_capacity(&self) -> f64 {
        self.executed as f64 / self.active.max(1) as f64
    }
}

/// The cost model proper: stateless scoring of a (imbalance, width,
/// boundary-cut) configuration against an epoch observation.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    config: CostModelConfig,
}

impl CostModel {
    /// Create a model with the given tuning.
    pub fn new(config: CostModelConfig) -> Self {
        CostModel { config }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &CostModelConfig {
        &self.config
    }

    /// Predicted aborts over the next epoch for a configuration of `width`
    /// workers whose boundaries cut `cut_fraction` of the epoch's observed
    /// abort mass, relative to the current configuration (`current_width`,
    /// `current_cut`).
    pub fn predicted_aborts(
        &self,
        epoch: &EpochObservation,
        width: usize,
        cut_fraction: f64,
        current_width: usize,
        current_cut: f64,
    ) -> f64 {
        if epoch.aborts == 0 {
            return 0.0;
        }
        // Concurrency scaling: pairwise conflict opportunities grow with the
        // number of concurrent peers.
        let concurrency = if current_width > 1 {
            (width.saturating_sub(1)) as f64 / (current_width - 1) as f64
        } else {
            width as f64
        };
        // Co-location scaling: aborts in ranges a partition boundary cuts
        // persist; aborts in co-located ranges are discounted. Normalize by
        // the current configuration's factor so the prediction is anchored
        // at the observed abort count.
        let kappa = self.config.colocation_discount;
        let factor = |cut: f64| cut + (1.0 - cut) * kappa;
        let colocation = factor(cut_fraction) / factor(current_cut).max(f64::MIN_POSITIVE);
        epoch.aborts as f64 * concurrency * colocation
    }

    /// Total predicted cost (task-equivalents) of running the next epoch on
    /// a configuration with projected imbalance `imbalance`, `width`
    /// workers, and `cut_fraction` of the abort mass split by boundaries.
    pub fn epoch_cost(
        &self,
        epoch: &EpochObservation,
        imbalance: f64,
        width: usize,
        cut_fraction: f64,
        current_width: usize,
        current_cut: f64,
    ) -> f64 {
        let demand = epoch.tasks as f64;
        let queueing = (imbalance - self.config.imbalance_deadband).max(0.0) * demand;
        let aborts = self.predicted_aborts(epoch, width, cut_fraction, current_width, current_cut);
        let capacity = width as f64 * epoch.per_worker_capacity();
        let overload = (demand + epoch.backlog as f64 - capacity).max(0.0);
        let idle = (capacity - demand).max(0.0) * self.config.idle_weight;
        queueing + aborts + overload + idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch() -> EpochObservation {
        EpochObservation {
            tasks: 1_000,
            executed: 1_000,
            epoch_seconds: 0.1,
            commits: 1_000,
            aborts: 100,
            abort_ranges: Vec::new(),
            active: 4,
            backlog: 0,
            queue_depths: vec![0; 4],
            idle_fraction: 0.0,
            persistence: 1.0,
        }
    }

    #[test]
    fn config_builders_clamp() {
        let config = CostModelConfig::new()
            .with_imbalance_deadband(0.5)
            .with_idle_weight(-1.0)
            .with_colocation_discount(2.0)
            .with_error_alpha(5.0)
            .with_trust_decay(1.5)
            .with_trust_recovery(9.0)
            .with_margin_gain(-3.0)
            .with_min_calibration_samples(0)
            .with_horizon_alpha(7.0)
            .with_max_horizon(0.0);
        assert_eq!(config.imbalance_deadband, 1.0);
        assert_eq!(config.idle_weight, 0.0);
        assert_eq!(config.colocation_discount, 1.0);
        assert_eq!(config.error_alpha, 1.0);
        assert!(config.trust_decay < 1.0);
        assert_eq!(config.trust_recovery, 1.0);
        assert_eq!(config.margin_gain, 0.0);
        assert_eq!(config.min_calibration_samples, 1);
        assert_eq!(config.horizon_alpha, 1.0);
        assert_eq!(config.max_horizon, 1.0);
    }

    #[test]
    fn queueing_cost_respects_the_deadband() {
        let model = CostModel::new(CostModelConfig::default());
        let epoch = epoch();
        // Imbalance inside the deadband: queueing reads zero, cost is
        // aborts only (capacity matches demand exactly).
        let balanced = model.epoch_cost(&epoch, 1.1, 4, 0.0, 4, 0.0);
        assert!((balanced - 100.0).abs() < 1e-9, "{balanced}");
        // A 4x imbalance prices (4 - deadband) x tasks of queueing.
        let skewed = model.epoch_cost(&epoch, 4.0, 4, 0.0, 4, 0.0);
        assert!(skewed > balanced + 2_000.0, "{skewed}");
    }

    #[test]
    fn aborts_scale_with_width_and_boundary_cuts() {
        let model = CostModel::new(CostModelConfig::default());
        let epoch = epoch();
        let current = model.predicted_aborts(&epoch, 4, 0.5, 4, 0.5);
        assert!((current - 100.0).abs() < 1e-9, "anchored at the observed");
        // Fewer workers → fewer concurrent conflicts.
        assert!(model.predicted_aborts(&epoch, 2, 0.5, 4, 0.5) < current);
        // Boundaries that stop cutting contended ranges → discounted.
        assert!(model.predicted_aborts(&epoch, 4, 0.0, 4, 0.5) < current);
        // Splitting more contended mass → penalized.
        assert!(model.predicted_aborts(&epoch, 4, 1.0, 4, 0.5) > current);
        // No observed aborts → nothing to predict.
        let calm = EpochObservation {
            aborts: 0,
            ..epoch.clone()
        };
        assert_eq!(model.predicted_aborts(&calm, 8, 1.0, 4, 0.0), 0.0);
    }

    #[test]
    fn overload_and_idle_price_width_changes_in_opposite_directions() {
        let model = CostModel::new(CostModelConfig::default());
        let mut epoch = epoch();
        epoch.aborts = 0;
        epoch.backlog = 2_000; // deep backlog: demand far above capacity
        let narrow = model.epoch_cost(&epoch, 1.0, 4, 0.0, 4, 0.0);
        let wide = model.epoch_cost(&epoch, 1.0, 8, 0.0, 4, 0.0);
        assert!(
            wide < narrow,
            "growing must relieve overload: {wide} vs {narrow}"
        );

        epoch.backlog = 0;
        epoch.tasks = 100; // demand collapsed: capacity mostly idle
        let still_wide = model.epoch_cost(&epoch, 1.0, 8, 0.0, 8, 0.0);
        let shrunk = model.epoch_cost(&epoch, 1.0, 1, 0.0, 8, 0.0);
        assert!(
            shrunk < still_wide,
            "shrinking must shed idle capacity: {shrunk} vs {still_wide}"
        );
    }

    #[test]
    fn service_rate_falls_back_to_dispatch_rate() {
        let mut epoch = epoch();
        assert!((epoch.service_rate() - 10_000.0).abs() < 1e-6);
        epoch.executed = 0;
        assert!((epoch.service_rate() - 10_000.0).abs() < 1e-6);
    }
}
