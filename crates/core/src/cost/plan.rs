//! Candidate-plan enumeration: the configurations a cost-mode epoch chooses
//! between, each scored with a predicted next-epoch cost and a calibrated
//! swap price.
//!
//! Three families of change are considered, per the unified cost model the
//! roadmap asked for (boundaries *and* width in one currency):
//!
//! * **boundary moves at the current width** — re-fit the equal-mass
//!   partition to the epoch's key CDF;
//! * **width changes at frozen boundaries** — grow or shrink the pool while
//!   keeping the boundary *shape* pinned to the current partition's
//!   reference distribution (a pure sizing move: the new partition is fit
//!   to the reference CDF, not to the fresh epoch);
//! * **joint changes** — new width *and* boundaries re-fit to the epoch CDF
//!   in one swap (one publish, one resize — cheaper than doing the two
//!   separately).

use crate::cdf::PiecewiseCdf;
use crate::drift::imbalance_under;
use crate::partition::KeyPartition;

use super::calibrate::SwapCostCalibrator;
use super::model::{CostModel, EpochObservation};

/// Which family of change a candidate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Boundary move at the current width (re-fit to the epoch CDF).
    Boundaries,
    /// Width change with boundaries frozen to the current reference
    /// distribution.
    Width,
    /// Width change and boundary re-fit in one swap.
    Joint,
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlanKind::Boundaries => "boundaries",
            PlanKind::Width => "width",
            PlanKind::Joint => "joint",
        })
    }
}

/// One scored candidate configuration.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// Family of change.
    pub kind: PlanKind,
    /// Worker count the plan routes to.
    pub width: usize,
    /// The partition the plan would publish.
    pub partition: KeyPartition,
    /// Projected max-over-mean imbalance under the epoch CDF.
    pub predicted_imbalance: f64,
    /// Predicted cost of the next epoch under this plan (task-equivalents).
    pub predicted_cost: f64,
    /// One-time cost of swapping to this plan (task-equivalents): the
    /// calibrated publish/rebucket/spawn-retire seconds at the observed
    /// service rate, plus the residual backlog a shrink strands on retiring
    /// workers.
    pub swap_cost: f64,
}

/// Inputs to one round of plan enumeration.
pub struct PlanContext<'a> {
    /// CDF estimated from this epoch's key histogram (abort-weighted, so
    /// contended quantile buckets already pull boundaries toward narrower
    /// hot ranges).
    pub epoch_cdf: &'a PiecewiseCdf,
    /// CDF behind the *current* partition, when available — the frozen
    /// boundary shape pure-width plans are fit to.
    pub reference_cdf: Option<&'a PiecewiseCdf>,
    /// The partition currently routing.
    pub current: &'a KeyPartition,
    /// Smallest width the pool may shrink to.
    pub min_workers: usize,
    /// Largest width the pool may grow to.
    pub max_workers: usize,
    /// The epoch's observations.
    pub observation: &'a EpochObservation,
}

/// Fraction of the epoch's per-range abort mass that falls in ranges an
/// interior partition boundary cuts through (0 when no aborts were
/// observed). A cut range's conflicting keys execute on two workers
/// concurrently; a co-located range serializes them.
pub fn cut_abort_fraction(partition: &KeyPartition, ranges: &[(u64, u64, u64)]) -> f64 {
    let total: u64 = ranges.iter().map(|&(_, _, aborts)| aborts).sum();
    if total == 0 {
        return 0.0;
    }
    let cut: u64 = ranges
        .iter()
        .filter(|&&(lo, hi, _)| {
            partition
                .boundaries()
                .iter()
                .any(|&boundary| boundary > lo && boundary <= hi)
        })
        .map(|&(_, _, aborts)| aborts)
        .sum();
    cut as f64 / total as f64
}

/// Convert a calibrated swap duration into task-equivalents and add the
/// shrink-residual price: every task queued on a slot the plan retires will
/// be drained by a retiring worker or adopted by a survivor — one extra
/// hand-off each.
fn swap_cost_tasks(calibrator: &SwapCostCalibrator, ctx: &PlanContext<'_>, width: usize) -> f64 {
    let current = ctx.current.workers();
    let delta = current.abs_diff(width);
    let base = calibrator.swap_seconds(delta) * ctx.observation.service_rate();
    let residual: usize = if width < current {
        ctx.observation
            .queue_depths
            .iter()
            .skip(width)
            .take(current - width)
            .sum()
    } else {
        0
    };
    base + residual as f64
}

/// Score one candidate partition.
fn score(
    kind: PlanKind,
    partition: KeyPartition,
    ctx: &PlanContext<'_>,
    model: &CostModel,
    calibrator: &SwapCostCalibrator,
    current_cut: f64,
) -> CandidatePlan {
    let width = partition.workers();
    let imbalance = imbalance_under(&partition, ctx.epoch_cdf);
    let cut = cut_abort_fraction(&partition, &ctx.observation.abort_ranges);
    let predicted_cost = model.epoch_cost(
        ctx.observation,
        imbalance,
        width,
        cut,
        ctx.current.workers(),
        current_cut,
    );
    let swap_cost = swap_cost_tasks(calibrator, ctx, width);
    CandidatePlan {
        kind,
        width,
        partition,
        predicted_imbalance: imbalance,
        predicted_cost,
        swap_cost,
    }
}

/// Cost of running the next epoch on the *current* configuration — the
/// keep-baseline every plan's gain is measured against, and (scored against
/// the epoch that actually materialized) the realized cost the policy's
/// prediction feedback consumes.
pub fn keep_cost(ctx: &PlanContext<'_>, model: &CostModel) -> f64 {
    let active = ctx.current.workers();
    let obs = ctx.observation;
    let current_cut = cut_abort_fraction(ctx.current, &obs.abort_ranges);
    let current_imbalance = imbalance_under(ctx.current, ctx.epoch_cdf);
    model.epoch_cost(
        obs,
        current_imbalance,
        active,
        current_cut,
        active,
        current_cut,
    )
}

/// Enumerate and score the candidate plans for this epoch, returning the
/// keep-baseline cost (the current configuration run for another epoch)
/// alongside the candidates.
pub fn enumerate(
    ctx: &PlanContext<'_>,
    model: &CostModel,
    calibrator: &SwapCostCalibrator,
) -> (f64, Vec<CandidatePlan>) {
    let active = ctx.current.workers();
    let obs = ctx.observation;
    let current_cut = cut_abort_fraction(ctx.current, &obs.abort_ranges);
    let keep_cost = keep_cost(ctx, model);

    let mut plans = Vec::with_capacity(5);
    // Boundary move at the current width.
    plans.push(score(
        PlanKind::Boundaries,
        KeyPartition::from_cdf(ctx.epoch_cdf, active),
        ctx,
        model,
        calibrator,
        current_cut,
    ));

    // Width targets: double into a burst, shed down to the busy share —
    // the same moves the threshold controller makes, now priced instead of
    // confirmed.
    let mut widths = Vec::with_capacity(2);
    let grow = (active * 2).min(ctx.max_workers);
    if grow > active {
        widths.push(grow);
    }
    if active > ctx.min_workers {
        let busy = ((1.0 - obs.idle_fraction) * active as f64).ceil() as usize;
        widths.push(busy.clamp(ctx.min_workers, active - 1));
    }
    for width in widths {
        if let Some(reference) = ctx.reference_cdf {
            plans.push(score(
                PlanKind::Width,
                KeyPartition::from_cdf(reference, width),
                ctx,
                model,
                calibrator,
                current_cut,
            ));
        }
        plans.push(score(
            PlanKind::Joint,
            KeyPartition::from_cdf(ctx.epoch_cdf, width),
            ctx,
            model,
            calibrator,
            current_cut,
        ));
    }
    (keep_cost, plans)
}

/// Tunables for lane-flip candidate pricing.
///
/// A lane flip moves a contended key range onto the multi-version optimistic
/// lane (or back). Designation is priced exactly like a repartition: the
/// predicted wasted work saved (abort mass the lane converts into cheaper
/// targeted re-executions) against the one-time lane-swap cost.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Minimum share of the epoch's total abort mass the candidate range
    /// must carry before designation is proposed. Keeps the lane cold under
    /// uniform contention, where no range dominates.
    pub min_abort_share: f64,
    /// Absolute abort floor per epoch below which no designation is
    /// proposed, regardless of share (share is noise at tiny counts).
    pub min_aborts: u64,
    /// A bucket adjacent to the peak joins the candidate range when its
    /// abort mass is at least this fraction of the peak bucket's.
    pub neighbor_share: f64,
    /// A designated range whose share of total traffic (commits + aborts)
    /// falls below this proposes undesignation — hysteresis for contention
    /// that moved away (designated ranges stop aborting, so abort mass
    /// cannot drive the reverse flip).
    pub cold_traffic_share: f64,
    /// Fraction of the saved abort mass the lane is predicted to pay back
    /// as re-executions; the gain is discounted by this.
    pub reexec_discount: f64,
    /// Largest fraction of the telemetry buckets a candidate range may
    /// span. A range that extends past this is not a contended *range* but
    /// uniform contention — wholesale lane migration, which the hybrid is
    /// not — so no designation is proposed.
    pub max_span_share: f64,
}

impl Default for LaneConfig {
    fn default() -> Self {
        Self {
            min_abort_share: 0.5,
            min_aborts: 32,
            neighbor_share: 0.5,
            cold_traffic_share: 0.02,
            reexec_discount: 0.3,
            max_span_share: 0.5,
        }
    }
}

/// One scored lane-flip candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct LanePlan {
    /// Inclusive key range to flip.
    pub range: (u64, u64),
    /// `true` proposes designating the range to the multi-version lane;
    /// `false` proposes undesignating it.
    pub designate: bool,
    /// Predicted wasted work saved per epoch (task-equivalents): the
    /// range's abort mass discounted by the expected re-execution payback.
    /// Zero for undesignations, which are hysteresis, not priced wins.
    pub predicted_gain: f64,
    /// One-time cost of the flip (task-equivalents): the calibrated swap
    /// duration at the observed service rate.
    pub swap_cost: f64,
}

impl LanePlan {
    /// Whether the flip should be applied: designations must beat their
    /// swap cost; undesignations (cold-range cleanup) always apply.
    pub fn profitable(&self) -> bool {
        !self.designate || self.predicted_gain > self.swap_cost
    }
}

/// Enumerate lane-flip candidates for one epoch.
///
/// `buckets` is the epoch's per-bucket telemetry as `(lo, hi, commits,
/// aborts)` tuples (inclusive bounds); `mv_ranges` the ranges currently
/// designated. `swap_seconds * service_rate` converts the calibrated flip
/// duration into task-equivalents, the same currency [`CandidatePlan`]
/// prices repartitions in.
///
/// At most one designation is proposed per call — the hottest undesignated
/// bucket, extended across adjacent buckets carrying at least
/// [`LaneConfig::neighbor_share`] of its abort mass — plus one
/// undesignation per designated range whose traffic went cold.
pub fn lane_candidates(
    buckets: &[(u64, u64, u64, u64)],
    mv_ranges: &[(u64, u64)],
    swap_seconds: f64,
    service_rate: f64,
    config: &LaneConfig,
) -> Vec<LanePlan> {
    let mut plans = Vec::new();
    let swap_cost = (swap_seconds * service_rate).max(0.0);
    let total_aborts: u64 = buckets.iter().map(|&(_, _, _, aborts)| aborts).sum();
    let total_traffic: u64 = buckets
        .iter()
        .map(|&(_, _, commits, aborts)| commits + aborts)
        .sum();
    let in_mv = |lo: u64, hi: u64| mv_ranges.iter().any(|&(a, b)| a <= hi && lo <= b);

    if total_aborts >= config.min_aborts.max(1) {
        let mut sorted = buckets.to_vec();
        sorted.sort_unstable_by_key(|&(lo, ..)| lo);
        let peak = sorted
            .iter()
            .enumerate()
            .filter(|&(_, &(lo, hi, _, _))| !in_mv(lo, hi))
            .max_by_key(|&(_, &(_, _, _, aborts))| aborts)
            .map(|(i, _)| i);
        if let Some(peak) = peak {
            let peak_aborts = sorted[peak].3;
            if peak_aborts > 0 {
                let floor = ((peak_aborts as f64) * config.neighbor_share).ceil() as u64;
                let joins = |&(lo, hi, _, aborts): &(u64, u64, u64, u64)| {
                    aborts >= floor.max(1) && !in_mv(lo, hi)
                };
                let mut lo_i = peak;
                while lo_i > 0 && joins(&sorted[lo_i - 1]) {
                    lo_i -= 1;
                }
                let mut hi_i = peak;
                while hi_i + 1 < sorted.len() && joins(&sorted[hi_i + 1]) {
                    hi_i += 1;
                }
                let mass: u64 = sorted[lo_i..=hi_i]
                    .iter()
                    .map(|&(_, _, _, aborts)| aborts)
                    .sum();
                let span_ok =
                    (hi_i - lo_i + 1) as f64 <= config.max_span_share * sorted.len() as f64;
                if span_ok && mass as f64 / total_aborts as f64 >= config.min_abort_share {
                    plans.push(LanePlan {
                        range: (sorted[lo_i].0, sorted[hi_i].1),
                        designate: true,
                        predicted_gain: mass as f64 * (1.0 - config.reexec_discount),
                        swap_cost,
                    });
                }
            }
        }
    }

    if total_traffic > 0 {
        for &(lo, hi) in mv_ranges {
            let traffic: u64 = buckets
                .iter()
                .filter(|&&(a, b, _, _)| a <= hi && lo <= b)
                .map(|&(_, _, commits, aborts)| commits + aborts)
                .sum();
            if (traffic as f64) / (total_traffic as f64) < config.cold_traffic_share {
                plans.push(LanePlan {
                    range: (lo, hi),
                    designate: false,
                    predicted_gain: 0.0,
                    swap_cost,
                });
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::key::KeyBounds;

    fn skewed_cdf() -> PiecewiseCdf {
        // All mass in the low tenth of the space.
        let hist = Histogram::from_samples(
            KeyBounds::new(0, 999),
            100,
            &(0..2_000u64).map(|i| i % 100).collect::<Vec<_>>(),
        );
        PiecewiseCdf::from_histogram(&hist)
    }

    fn observation() -> EpochObservation {
        EpochObservation {
            tasks: 2_000,
            executed: 2_000,
            epoch_seconds: 0.1,
            commits: 2_000,
            aborts: 0,
            abort_ranges: Vec::new(),
            active: 4,
            backlog: 0,
            queue_depths: vec![0; 4],
            idle_fraction: 0.0,
            persistence: 1.0,
        }
    }

    #[test]
    fn cut_fraction_counts_only_split_ranges() {
        let partition = KeyPartition::equal_width(KeyBounds::new(0, 99), 2); // boundary at 50
        let ranges = vec![(0u64, 39u64, 60u64), (40, 59, 30), (60, 99, 10)];
        // Only the middle range straddles the boundary.
        let cut = cut_abort_fraction(&partition, &ranges);
        assert!((cut - 0.3).abs() < 1e-12, "{cut}");
        assert_eq!(cut_abort_fraction(&partition, &[]), 0.0);
    }

    #[test]
    fn boundary_plan_beats_a_mismatched_partition() {
        let model = CostModel::default();
        let calibrator = SwapCostCalibrator::new(1.0, 1);
        let cdf = skewed_cdf();
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        let (keep_cost, plans) = enumerate(&ctx, &model, &calibrator);
        assert_eq!(plans.len(), 1, "fixed width: boundary plan only");
        let plan = &plans[0];
        assert_eq!(plan.kind, PlanKind::Boundaries);
        assert_eq!(plan.width, 4);
        assert!(
            plan.predicted_imbalance < 1.2,
            "re-fit plan is balanced: {plan:?}"
        );
        assert!(
            keep_cost > plan.predicted_cost + 1_000.0,
            "the mismatched partition must price high: keep {keep_cost}, plan {}",
            plan.predicted_cost
        );
    }

    #[test]
    fn elastic_range_adds_width_and_joint_plans() {
        let model = CostModel::default();
        let calibrator = SwapCostCalibrator::new(1.0, 1);
        let cdf = skewed_cdf();
        let reference = skewed_cdf();
        let current = KeyPartition::from_cdf(&reference, 4);
        let mut obs = observation();
        obs.idle_fraction = 0.8;
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: Some(&reference),
            current: &current,
            min_workers: 1,
            max_workers: 8,
            observation: &obs,
        };
        let (_, plans) = enumerate(&ctx, &model, &calibrator);
        // Boundaries + (grow, shrink) x (Width, Joint).
        assert_eq!(plans.len(), 5, "{plans:?}");
        assert!(plans
            .iter()
            .any(|p| p.kind == PlanKind::Width && p.width == 8));
        assert!(plans
            .iter()
            .any(|p| p.kind == PlanKind::Joint && p.width < 4));
        for plan in &plans {
            assert!(plan.width >= 1 && plan.width <= 8);
            assert!(plan.swap_cost >= 0.0);
        }
    }

    #[test]
    fn shrink_swap_cost_prices_the_residual_backlog() {
        let mut calibrator = SwapCostCalibrator::new(1.0, 1);
        calibrator.observe_publish(1.0e-4);
        let cdf = skewed_cdf();
        let current = KeyPartition::from_cdf(&cdf, 4);
        let mut obs = observation();
        obs.queue_depths = vec![10, 10, 25, 40];
        obs.idle_fraction = 0.9;
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 1,
            max_workers: 4,
            observation: &obs,
        };
        let (_, plans) = enumerate(&ctx, &CostModel::default(), &calibrator);
        let shrink = plans
            .iter()
            .find(|p| p.width == 1)
            .expect("a 90%-idle pool proposes shrinking to the busy share");
        // Residual on slots 1..4 = 10 + 25 + 40 = 75 tasks, plus the timed
        // publish cost (1e-4 s x 20k tasks/s = 2 tasks).
        assert!(
            shrink.swap_cost >= 75.0 && shrink.swap_cost < 85.0,
            "{shrink:?}"
        );
    }

    /// Ten contiguous buckets over [0, 999], keyed by per-bucket aborts.
    fn lane_buckets(aborts: [u64; 10]) -> Vec<(u64, u64, u64, u64)> {
        (0..10u64)
            .map(|i| (i * 100, i * 100 + 99, 1_000, aborts[i as usize]))
            .collect()
    }

    #[test]
    fn dominant_hot_bucket_proposes_a_priced_designation() {
        let buckets = lane_buckets([0, 0, 0, 500, 0, 0, 0, 0, 0, 0]);
        let plans = lane_candidates(&buckets, &[], 1.0e-3, 20_000.0, &LaneConfig::default());
        assert_eq!(plans.len(), 1, "{plans:?}");
        let plan = &plans[0];
        assert!(plan.designate);
        assert_eq!(plan.range, (300, 399));
        // 500 aborts discounted by the 0.3 re-execution payback.
        assert!((plan.predicted_gain - 350.0).abs() < 1e-9, "{plan:?}");
        // 1 ms flip at 20k tasks/s = 20 task-equivalents.
        assert!((plan.swap_cost - 20.0).abs() < 1e-9, "{plan:?}");
        assert!(plan.profitable());
    }

    #[test]
    fn neighbor_buckets_above_half_the_peak_join_the_range() {
        let buckets = lane_buckets([0, 0, 260, 500, 300, 10, 0, 0, 0, 0]);
        let plans = lane_candidates(&buckets, &[], 0.0, 20_000.0, &LaneConfig::default());
        assert_eq!(plans.len(), 1, "{plans:?}");
        // Buckets 2..=4 all carry >= 50% of the peak's 500; bucket 5 does not.
        assert_eq!(plans[0].range, (200, 499));
        assert!((plans[0].predicted_gain - 1060.0 * 0.7).abs() < 1e-9);
    }

    #[test]
    fn uniform_abort_mass_designates_nothing() {
        // Every neighbour joins a uniform peak, so the candidate would span
        // the whole space — the max-span guard rejects it.
        let buckets = lane_buckets([50; 10]);
        let plans = lane_candidates(&buckets, &[], 1.0e-3, 20_000.0, &LaneConfig::default());
        assert!(plans.is_empty(), "{plans:?}");
    }

    #[test]
    fn tiny_abort_counts_are_ignored() {
        let buckets = lane_buckets([0, 0, 0, 20, 0, 0, 0, 0, 0, 0]);
        let plans = lane_candidates(&buckets, &[], 1.0e-3, 20_000.0, &LaneConfig::default());
        assert!(plans.is_empty(), "{plans:?}");
    }

    #[test]
    fn designated_ranges_are_not_proposed_again() {
        let buckets = lane_buckets([0, 0, 0, 500, 0, 0, 0, 40, 0, 0]);
        let mv = [(300u64, 399u64)];
        let plans = lane_candidates(&buckets, &mv, 1.0e-3, 20_000.0, &LaneConfig::default());
        // Bucket 7 is the hottest undesignated bucket but carries well under
        // half the total abort mass, so nothing is proposed.
        assert!(plans.iter().all(|p| !p.designate), "{plans:?}");
    }

    #[test]
    fn cold_designated_range_proposes_undesignation() {
        // Designated range [300, 399] sees no traffic at all this epoch.
        let mut buckets = lane_buckets([0; 10]);
        buckets[3].2 = 0;
        let mv = [(300u64, 399u64)];
        let plans = lane_candidates(&buckets, &mv, 1.0e-3, 20_000.0, &LaneConfig::default());
        assert_eq!(plans.len(), 1, "{plans:?}");
        let plan = &plans[0];
        assert!(!plan.designate);
        assert_eq!(plan.range, (300, 399));
        assert!(plan.profitable(), "cold cleanup always applies");
    }

    #[test]
    fn warm_designated_range_is_kept() {
        let buckets = lane_buckets([0; 10]);
        let mv = [(300u64, 399u64)];
        let plans = lane_candidates(&buckets, &mv, 1.0e-3, 20_000.0, &LaneConfig::default());
        assert!(plans.is_empty(), "{plans:?}");
    }
}
