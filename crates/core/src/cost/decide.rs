//! The decision layer: one [`CostPolicy`] that turns "did a threshold
//! trip?" into "which plan has the best net expected benefit?".
//!
//! Each epoch the policy scores the keep-baseline and every candidate plan
//! (see [`super::plan`]), then adopts the plan maximizing
//!
//! ```text
//! trust × persistence × (keep_cost − predicted_cost)  −  swap_cost × margin
//! ```
//!
//! if that net benefit is positive. `persistence` (measured by the caller
//! as the epoch-over-epoch histogram similarity, see
//! `EpochObservation::persistence`) discounts a gain predicted from a
//! distribution shape unlikely to recur. Two further feedback loops keep
//! the model honest, together replacing the threshold plane's two-epoch
//! confirmation:
//!
//! * **trust** multiplies every predicted gain. A swap whose predicted
//!   next-epoch cost turns out badly wrong (an oscillating load flips back
//!   the moment the swap lands) decays trust multiplicatively, so a model
//!   that keeps being wrong rapidly loses the ability to spend swaps;
//!   accurate predictions rebuild it additively.
//! * **margin** multiplies every swap cost: the smoothed relative
//!   prediction error widens the bar a swap must clear, so even while trust
//!   is partially intact a noisy model pays a risk premium.
//! * **horizon** divides every swap cost: the swap price is amortized over
//!   the plan's expected lifetime in epochs, estimated from the observed
//!   phase-change rate (how many consecutive epochs predictions stay
//!   accurate before one misses). A stable phase buys cheaper swaps; the
//!   first miss resets the streak, so a freshly shifted load pays full
//!   price again.

use super::calibrate::{CalibrationView, SwapCostCalibrator};
use super::model::{CostModel, CostModelConfig};
use super::plan::{enumerate, keep_cost, CandidatePlan, PlanContext};
use crate::cost::calibrate::DEFAULT_COST_ALPHA;

/// What the policy chose for this epoch.
#[derive(Debug)]
pub enum CostDecision {
    /// No plan's trusted gain cleared its margined swap cost: keep the
    /// current configuration.
    Keep,
    /// Adopt `plan`: publish its partition (and resize to its width). The
    /// logged gain and cost are the decision-rule values — trusted gain and
    /// margined swap cost — so `predicted_gain > swap_cost` holds for every
    /// adopted swap by construction.
    Adopt {
        /// The winning plan.
        plan: CandidatePlan,
        /// Trust-discounted predicted saving (task-equivalents).
        predicted_gain: f64,
        /// Margin-adjusted swap cost (task-equivalents).
        swap_cost: f64,
    },
}

/// A prediction awaiting its realized outcome (scored at the next epoch
/// boundary).
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Predicted next-epoch cost of the configuration left in effect.
    predicted: f64,
    /// Scale the prediction error is judged against. For an adopted swap
    /// this is the *raw promised gain*: a swap is mispredicted when its
    /// outcome misses by a meaningful fraction of what it promised, not of
    /// the total cost — backlog-driven terms shared by every plan would
    /// otherwise drown the signal and let a churning model keep scoring
    /// "accurate". 0 = use the default total-cost scale (keeps).
    scale: f64,
    /// Whether the prediction came from an adopted swap (mispredicted
    /// swaps decay trust; mispredicted keeps only widen the margin).
    adopted: bool,
}

/// Point-in-time view of the cost plane, surfaced through
/// `StatsView::cost_model`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelView {
    /// True once calibration is warm and the policy (not the threshold
    /// triggers) is deciding.
    pub calibrated: bool,
    /// The swap-cost calibration state.
    pub calibration: CalibrationView,
    /// Current trust in `[0, 1]` multiplying every predicted gain.
    pub trust: f64,
    /// Current decision margin (≥ 1) multiplying every swap cost.
    pub margin: f64,
    /// Relative error of the most recently scored prediction.
    pub last_prediction_error: Option<f64>,
    /// Smoothed (EWMA) relative prediction error.
    pub error_ewma: Option<f64>,
    /// Epoch decisions made by the policy so far (keep or adopt).
    pub decisions: u64,
    /// Decisions that adopted a plan.
    pub adoptions: u64,
    /// Current amortization horizon in epochs (≥ 1) dividing every swap
    /// cost — the plan lifetime the phase-change history predicts.
    pub horizon: f64,
    /// Consecutive accurately-predicted epochs in the current phase.
    pub phase_epochs: u64,
}

/// The cost plane's decision state: model + calibrator + prediction-error
/// feedback. One per scheduler, locked around epoch boundaries only.
#[derive(Debug)]
pub struct CostPolicy {
    model: CostModel,
    calibrator: SwapCostCalibrator,
    trust: f64,
    error_ewma: f64,
    error_samples: u64,
    last_error: Option<f64>,
    pending: Option<Pending>,
    decisions: u64,
    adoptions: u64,
    /// Consecutive scored epochs whose prediction landed inside the
    /// accuracy tolerance — the length of the current stable phase so far.
    phase_epochs: u64,
    /// Smoothed observed phase length (epochs between prediction misses),
    /// in epochs. Starts at 1: no history, no amortization.
    horizon_ewma: f64,
}

impl CostPolicy {
    /// Create a policy from the model tuning (the calibrator's warm-up
    /// threshold and error smoothing come from the same config).
    pub fn new(config: CostModelConfig) -> Self {
        let calibrator =
            SwapCostCalibrator::new(DEFAULT_COST_ALPHA, config.min_calibration_samples);
        CostPolicy {
            model: CostModel::new(config),
            calibrator,
            trust: 1.0,
            error_ewma: 0.0,
            error_samples: 0,
            last_error: None,
            pending: None,
            decisions: 0,
            adoptions: 0,
            phase_epochs: 0,
            horizon_ewma: 1.0,
        }
    }

    /// True once the swap-cost calibration is warm — before that the
    /// scheduler keeps using its threshold triggers (whose swaps feed the
    /// calibrator).
    pub fn is_calibrated(&self) -> bool {
        self.calibrator.is_warm()
    }

    /// Feed a measured partition-publish latency.
    pub fn note_publish(&mut self, seconds: f64) {
        self.calibrator.observe_publish(seconds);
    }

    /// Feed a measured telemetry-rebucket latency.
    pub fn note_rebucket(&mut self, seconds: f64) {
        self.calibrator.observe_rebucket(seconds);
    }

    /// Feed a measured per-worker spawn/retire latency.
    pub fn note_resize_per_worker(&mut self, seconds: f64) {
        self.calibrator.observe_resize_per_worker(seconds);
    }

    /// The cost of running the next epoch on the current configuration,
    /// under this epoch's observations. Evaluated at an epoch boundary
    /// against the configuration the previous decision left in effect,
    /// this is the *realized* cost that decision predicted — the feed for
    /// [`CostPolicy::score_pending`].
    pub fn realized_keep_cost(&self, ctx: &PlanContext<'_>) -> f64 {
        keep_cost(ctx, &self.model)
    }

    /// Current decision margin: 1 plus the smoothed prediction error scaled
    /// by [`CostModelConfig::margin_gain`].
    pub fn margin(&self) -> f64 {
        1.0 + self.model.config().margin_gain * self.error_ewma
    }

    /// Current amortization horizon in epochs (≥ 1, capped at
    /// [`CostModelConfig::max_horizon`]): the expected lifetime of a plan
    /// adopted now. The smoothed phase length carries history across phase
    /// changes; a current streak already longer than that history raises
    /// the estimate with it (the phase is provably at least this long).
    pub fn horizon(&self) -> f64 {
        let current_streak = (self.phase_epochs + 1) as f64;
        self.horizon_ewma
            .max(current_streak)
            .clamp(1.0, self.model.config().max_horizon)
    }

    /// Score the pending prediction (if any) against the realized cost of
    /// the epoch that just closed. Call once per epoch boundary, *before*
    /// [`CostPolicy::decide`].
    pub fn score_pending(&mut self, realized_cost: f64) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        let config = self.model.config();
        let scale = if pending.scale > 0.0 {
            pending.scale
        } else {
            pending.predicted.max(realized_cost).max(1.0)
        };
        let error = ((pending.predicted - realized_cost).abs() / scale).min(1.0);
        self.last_error = Some(error);
        self.error_ewma = if self.error_samples == 0 {
            error
        } else {
            self.error_ewma + config.error_alpha * (error - self.error_ewma)
        };
        self.error_samples += 1;
        if error > config.accuracy_tolerance {
            // Phase change: the load stopped behaving as predicted. Fold
            // the phase that just ended (its accurate streak plus this
            // terminating miss) into the expected-lifetime estimate and
            // start counting the new phase from zero.
            let ended_phase = (self.phase_epochs + 1) as f64;
            self.horizon_ewma += config.horizon_alpha * (ended_phase - self.horizon_ewma);
            self.phase_epochs = 0;
        } else {
            self.phase_epochs += 1;
        }
        if pending.adopted {
            if error <= config.accuracy_tolerance {
                // A swap that delivered what it promised rebuilds trust.
                self.trust = (self.trust + config.trust_recovery).min(1.0);
            } else {
                // A swap we paid for did not deliver: spend trust fast.
                self.trust *= config.trust_decay;
            }
        }
        // Keep-predictions never move trust directly — a mispredicted keep
        // (the load changed under us) is the model detecting drift, not
        // lying — but their accuracy still drives the error EWMA, so a run
        // of honest keeps narrows the margin and re-opens the door for a
        // low-trust model to attempt (and be scored on) a small swap.
    }

    /// Choose between keeping the current configuration and the best
    /// candidate plan. Records the chosen configuration's predicted cost as
    /// the pending prediction for the next boundary's
    /// [`CostPolicy::score_pending`].
    pub fn decide(&mut self, ctx: &PlanContext<'_>) -> CostDecision {
        self.decisions += 1;
        let (keep_cost, plans) = enumerate(ctx, &self.model, &self.calibrator);
        let margin = self.margin();
        let horizon = self.horizon();
        let persistence = ctx.observation.persistence.clamp(0.0, 1.0);
        let materiality = self.model.config().min_gain_fraction * ctx.observation.tasks as f64;
        let mut best: Option<(f64, f64, f64, CandidatePlan)> = None;
        for plan in plans {
            if keep_cost - plan.predicted_cost < materiality {
                // Below the materiality floor: a win this marginal is noise.
                continue;
            }
            let gain = self.trust * persistence * (keep_cost - plan.predicted_cost);
            // Swap price: widened by the noise margin, amortized over the
            // plan's expected lifetime — a stable phase buys cheaper swaps.
            let cost = plan.swap_cost * margin / horizon;
            let net = gain - cost;
            if net > 0.0 && best.as_ref().map_or(true, |(b, _, _, _)| net > *b) {
                best = Some((net, gain, cost, plan));
            }
        }
        match best {
            Some((_, predicted_gain, swap_cost, plan)) => {
                self.adoptions += 1;
                self.pending = Some(Pending {
                    predicted: plan.predicted_cost,
                    scale: (keep_cost - plan.predicted_cost).max(1.0),
                    adopted: true,
                });
                CostDecision::Adopt {
                    plan,
                    predicted_gain,
                    swap_cost,
                }
            }
            None => {
                self.pending = Some(Pending {
                    predicted: keep_cost,
                    scale: 0.0,
                    adopted: false,
                });
                CostDecision::Keep
            }
        }
    }

    /// Point-in-time view for the stats surface.
    pub fn view(&self) -> CostModelView {
        CostModelView {
            calibrated: self.is_calibrated(),
            calibration: self.calibrator.view(),
            trust: self.trust,
            margin: self.margin(),
            last_prediction_error: self.last_error,
            error_ewma: (self.error_samples > 0).then_some(self.error_ewma),
            decisions: self.decisions,
            adoptions: self.adoptions,
            horizon: self.horizon(),
            phase_epochs: self.phase_epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::PiecewiseCdf;
    use crate::cost::EpochObservation;
    use crate::histogram::Histogram;
    use crate::key::KeyBounds;
    use crate::partition::KeyPartition;

    fn cdf_over(keys: impl Iterator<Item = u64>) -> PiecewiseCdf {
        let hist = Histogram::from_samples(KeyBounds::new(0, 999), 100, &keys.collect::<Vec<_>>());
        PiecewiseCdf::from_histogram(&hist)
    }

    fn observation() -> EpochObservation {
        EpochObservation {
            tasks: 2_000,
            executed: 2_000,
            epoch_seconds: 0.1,
            commits: 2_000,
            aborts: 0,
            abort_ranges: Vec::new(),
            active: 4,
            backlog: 0,
            queue_depths: vec![0; 4],
            idle_fraction: 0.0,
            persistence: 1.0,
        }
    }

    fn warm_policy() -> CostPolicy {
        let mut policy = CostPolicy::new(CostModelConfig::default());
        policy.note_publish(1.0e-4);
        assert!(policy.is_calibrated());
        policy
    }

    #[test]
    fn cold_policy_defers_to_thresholds() {
        let policy = CostPolicy::new(CostModelConfig::default().with_min_calibration_samples(3));
        assert!(!policy.is_calibrated());
        let view = policy.view();
        assert!(!view.calibrated);
        assert_eq!(view.trust, 1.0);
        assert_eq!(view.margin, 1.0);
    }

    #[test]
    fn imbalanced_epoch_adopts_a_boundary_plan() {
        let mut policy = warm_policy();
        let cdf = cdf_over((0..2_000u64).map(|i| i % 100)); // low-end mass
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        match policy.decide(&ctx) {
            CostDecision::Adopt {
                plan,
                predicted_gain,
                swap_cost,
            } => {
                assert!(
                    predicted_gain > swap_cost,
                    "decision rule guarantees gain > cost"
                );
                assert!(plan.predicted_imbalance < 1.5);
            }
            CostDecision::Keep => panic!("a 4x-imbalanced epoch must swap"),
        }
        assert_eq!(policy.view().adoptions, 1);
    }

    #[test]
    fn balanced_epoch_keeps_with_zero_gain() {
        let mut policy = warm_policy();
        let cdf = cdf_over((0..2_000u64).map(|i| i % 1_000)); // uniform over the space
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        assert!(matches!(policy.decide(&ctx), CostDecision::Keep));
        assert_eq!(policy.view().adoptions, 0);
    }

    #[test]
    fn zero_persistence_vetoes_even_a_huge_gain() {
        // A flip-flopping load reads as persistence ≈ 0: the tempting gain
        // from re-fitting to a shape that will not recur prices at nothing.
        let mut policy = warm_policy();
        let cdf = cdf_over((0..2_000u64).map(|i| i % 100));
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let mut obs = observation();
        obs.persistence = 0.0;
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        assert!(matches!(policy.decide(&ctx), CostDecision::Keep));
    }

    #[test]
    fn sustained_prediction_error_widens_the_margin_and_spends_trust() {
        let mut policy = warm_policy();
        let cdf = cdf_over((0..2_000u64).map(|i| i % 100));
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        let margin_before = policy.view().margin;
        assert_eq!(margin_before, 1.0);
        // Oscillation script: every adopted swap predicts a near-zero next
        // epoch but realizes huge (the load flipped back), and every keep
        // predicts the high status quo but realizes low (it flipped again) —
        // the faithful shape of a phase-oscillating workload.
        let mut swaps = 0;
        for _ in 0..10 {
            let adopted = matches!(policy.decide(&ctx), CostDecision::Adopt { .. });
            if adopted {
                swaps += 1;
            }
            policy.score_pending(if adopted { 5_000.0 } else { 300.0 });
        }
        let view = policy.view();
        assert!(
            view.margin > margin_before,
            "sustained error must widen the margin: {view:?}"
        );
        assert!(view.trust < 0.1, "trust must collapse: {view:?}");
        assert!(
            swaps < 6,
            "the feedback loop must stop the churn well before the script ends: {swaps}"
        );
        assert!(view.last_prediction_error.unwrap() > 0.5);
        // The wrecked model refuses the same tempting swap it took before.
        assert!(matches!(policy.decide(&ctx), CostDecision::Keep));
    }

    #[test]
    fn horizon_grows_with_accurate_streaks_and_resets_on_a_miss() {
        let mut policy = warm_policy();
        let uniform = cdf_over((0..2_000u64).map(|i| i % 1_000));
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &uniform,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        assert_eq!(policy.view().horizon, 1.0, "no history, no amortization");
        // A long stable phase: every keep prediction lands.
        for _ in 0..20 {
            assert!(matches!(policy.decide(&ctx), CostDecision::Keep));
            let realized = policy.realized_keep_cost(&ctx);
            policy.score_pending(realized);
        }
        let stable = policy.view();
        assert_eq!(
            stable.horizon,
            CostModelConfig::default().max_horizon,
            "a long streak saturates at the ceiling: {stable:?}"
        );
        assert_eq!(stable.phase_epochs, 20);
        // One phase change: the streak resets, but the EWMA remembers that
        // phases have historically been long — the horizon drops without
        // collapsing all the way back to 1.
        let _ = policy.decide(&ctx);
        policy.score_pending(1.0e9);
        let shifted = policy.view();
        assert_eq!(shifted.phase_epochs, 0);
        assert!(
            shifted.horizon < stable.horizon && shifted.horizon > 1.0,
            "{shifted:?}"
        );
    }

    #[test]
    fn stable_phase_amortizes_a_swap_full_price_would_veto() {
        // Measure the raw gain/cost of the canonical imbalanced swap with a
        // near-free publish calibration (trust = 1, margin = 1, horizon = 1,
        // so the Adopt's logged values are the raw decision inputs).
        let cdf = cdf_over((0..2_000u64).map(|i| i % 100));
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        let mut probe = warm_policy();
        let (raw_gain, raw_cost) = match probe.decide(&ctx) {
            CostDecision::Adopt {
                predicted_gain,
                swap_cost,
                ..
            } => (predicted_gain, swap_cost),
            CostDecision::Keep => panic!("probe must adopt at near-zero swap cost"),
        };

        // Price the publish so the swap costs 5x its gain: vetoed at full
        // price, and still vetoed until the amortization horizon exceeds 5
        // epochs. (Calibrated cost scales linearly with publish seconds.)
        let seconds = 1.0e-4 * 5.0 * raw_gain / raw_cost;
        let mut policy = CostPolicy::new(CostModelConfig::default());
        policy.note_publish(seconds);
        assert!(policy.is_calibrated());
        assert!(
            matches!(policy.decide(&ctx), CostDecision::Keep),
            "full price must veto a swap costing 5x its gain"
        );

        // Five accurately-predicted epochs: the streak pushes the horizon
        // to 6, pricing the same swap at ~0.83x its gain. Every decide
        // along the way still keeps (the horizon has not yet cleared 5).
        policy.score_pending(policy.realized_keep_cost(&ctx));
        for _ in 0..4 {
            assert!(matches!(policy.decide(&ctx), CostDecision::Keep));
            policy.score_pending(policy.realized_keep_cost(&ctx));
        }
        assert!(policy.view().horizon >= 6.0, "{:?}", policy.view());
        assert!(
            matches!(policy.decide(&ctx), CostDecision::Adopt { .. }),
            "the amortized phase must admit the swap: {:?}",
            policy.view()
        );
    }

    #[test]
    fn accurate_predictions_rebuild_trust() {
        let mut policy = warm_policy();
        // Crash trust with three bad adopted predictions.
        let cdf = cdf_over((0..2_000u64).map(|i| i % 100));
        let current = KeyPartition::equal_width(KeyBounds::new(0, 999), 4);
        let obs = observation();
        let ctx = PlanContext {
            epoch_cdf: &cdf,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        for _ in 0..3 {
            let _ = policy.decide(&ctx);
            policy.score_pending(50_000.0);
        }
        let crashed = policy.view().trust;
        assert!(crashed < 0.1, "{crashed}");
        // A run of accurately-predicted keeps on balanced load decays the
        // error EWMA, narrowing the margin back toward 1 (trust itself is
        // only rebuilt by swaps that deliver).
        let uniform = cdf_over((0..2_000u64).map(|i| i % 1_000));
        let balanced_ctx = PlanContext {
            epoch_cdf: &uniform,
            reference_cdf: None,
            current: &current,
            min_workers: 4,
            max_workers: 4,
            observation: &obs,
        };
        for _ in 0..10 {
            assert!(matches!(policy.decide(&balanced_ctx), CostDecision::Keep));
            // Realized ≈ predicted keep cost (stationary balanced load).
            policy.score_pending(0.0);
        }
        let view = policy.view();
        assert!(
            view.margin < 1.1,
            "honest keeps narrow the margin: {view:?}"
        );
        assert_eq!(view.trust, crashed, "keeps alone never move trust");
        // With the margin narrowed, a genuine sustained imbalance clears the
        // bar even at low trust — and the delivered swap rebuilds trust.
        match policy.decide(&ctx) {
            CostDecision::Adopt { plan, .. } => {
                policy.score_pending(plan.predicted_cost); // delivered exactly
            }
            CostDecision::Keep => panic!("narrowed margin must re-admit a real gain"),
        }
        assert!(
            policy.view().trust > crashed,
            "a delivered swap rebuilds trust: {:?}",
            policy.view()
        );
    }
}
