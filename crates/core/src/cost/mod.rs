//! The predictive cost plane: model-driven repartitioning and sizing with
//! calibrated swap costs.
//!
//! The continuous adaptation plane (see [`crate::drift`]) decides with
//! thresholds: drift past a distance, contention past a ratio, backlog past
//! a bound — each with its own hand-tuned hysteresis. This module replaces
//! that question with the one "On the Cost of Concurrency in TM"-style
//! reasoning actually asks: *adapt only when the predicted saving exceeds
//! the measured cost of the change itself*. It is organised as four layers:
//!
//! | module | role |
//! |---|---|
//! | [`calibrate`] | EWMA estimates of what a swap actually costs on this host — publish latency, thread spawn/retire time, telemetry rebucket — measured online from the swaps the system performs, never assumed |
//! | [`model`] | the per-epoch cost model: queueing-imbalance, abort, overload, and idle-capacity terms, all in task-equivalents |
//! | [`plan`] | candidate enumeration: boundary moves at fixed width, width changes at frozen boundaries, and joint changes, each scored with a predicted next-epoch cost and a calibrated swap price |
//! | [`decide`] | the [`CostPolicy`]: adopt the plan maximizing trusted gain minus margined swap cost, with prediction-error feedback (trust decay / margin widening) in place of the threshold plane's two-epoch confirmation |
//!
//! The scheduler consumes exactly one type from here —
//! [`CostPolicy`] via
//! [`crate::AdaptiveKeyScheduler::with_cost_model`] — and stays on its
//! threshold triggers until the calibrator is warm (the first adaptations
//! feed it), so cost mode degrades gracefully to the proven behaviour when
//! it has nothing to price with.

pub mod calibrate;
pub mod decide;
pub mod model;
pub mod plan;

pub use calibrate::{CalibrationView, Ewma, SwapCostCalibrator, DEFAULT_COST_ALPHA};
pub use decide::{CostDecision, CostModelView, CostPolicy};
pub use model::{CostModel, CostModelConfig, EpochObservation};
pub use plan::{
    cut_abort_fraction, lane_candidates, CandidatePlan, LaneConfig, LanePlan, PlanContext, PlanKind,
};
