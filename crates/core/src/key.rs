//! Transaction keys and key mappers.
//!
//! Section 3.1 of the paper distinguishes *dictionary keys* from *transaction
//! keys*: the executor schedules on the latter, which are produced by a
//! mapping from whatever the transaction's inputs are into a linear key space
//! in which "numerical proximity should correlate strongly (though not
//! necessarily precisely) with data locality (and thus likelihood of
//! conflict)". The paper uses manually specified mappings; this module
//! provides the ones its benchmarks need.

use katme_workload::TxnSpec;

/// The linear transaction-key space used by the schedulers.
pub type TxnKey = u64;

/// Inclusive bounds of a key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyBounds {
    /// Smallest key value.
    pub min: TxnKey,
    /// Largest key value (inclusive).
    pub max: TxnKey,
}

impl KeyBounds {
    /// Create bounds; `min` must not exceed `max`.
    ///
    /// # Panics
    /// Panics when `min > max`.
    pub fn new(min: TxnKey, max: TxnKey) -> Self {
        assert!(min <= max, "invalid key bounds: {min} > {max}");
        KeyBounds { min, max }
    }

    /// The 16-bit dictionary-key space used by the paper's benchmarks.
    pub fn dict16() -> Self {
        KeyBounds::new(0, 0xFFFF)
    }

    /// Width of the key space (number of representable keys).
    pub fn width(&self) -> u64 {
        self.max - self.min + 1
    }

    /// Clamp a key into the bounds.
    pub fn clamp(&self, key: TxnKey) -> TxnKey {
        key.clamp(self.min, self.max)
    }

    /// True when the key lies within the bounds.
    pub fn contains(&self, key: TxnKey) -> bool {
        key >= self.min && key <= self.max
    }
}

/// Maps transaction inputs into the linear transaction-key space.
pub trait KeyMapper<T>: Send + Sync {
    /// Transaction key for the given input.
    fn key(&self, input: &T) -> TxnKey;

    /// Bounds of the key space this mapper produces.
    fn bounds(&self) -> KeyBounds;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Uses the dictionary key itself as the transaction key — the natural
/// mapping for the red-black tree and sorted list, where data location
/// correlates with key order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DictKeyMapper;

impl KeyMapper<TxnSpec> for DictKeyMapper {
    fn key(&self, input: &TxnSpec) -> TxnKey {
        TxnKey::from(input.key)
    }

    fn bounds(&self) -> KeyBounds {
        KeyBounds::dict16()
    }

    fn name(&self) -> &'static str {
        "dict-key"
    }
}

/// Uses the hash-bucket index as the transaction key — the paper's mapping
/// for the hash-table benchmark: "We use the output of the hash function
/// (not the dictionary key) as the value of the transaction key."
#[derive(Debug, Clone, Copy)]
pub struct BucketKeyMapper {
    buckets: u64,
}

impl BucketKeyMapper {
    /// Mapper for a table with the given number of buckets.
    ///
    /// # Panics
    /// Panics when `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "bucket count must be positive");
        BucketKeyMapper {
            buckets: buckets as u64,
        }
    }

    /// Mapper matching the paper's 30031-bucket table.
    pub fn paper() -> Self {
        BucketKeyMapper::new(katme_collections::PAPER_BUCKETS)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> u64 {
        self.buckets
    }
}

impl KeyMapper<TxnSpec> for BucketKeyMapper {
    fn key(&self, input: &TxnSpec) -> TxnKey {
        TxnKey::from(input.key) % self.buckets
    }

    fn bounds(&self) -> KeyBounds {
        KeyBounds::new(0, self.buckets - 1)
    }

    fn name(&self) -> &'static str {
        "hash-bucket"
    }
}

/// Maps every transaction to the same key — the stack example of §3.1, where
/// every operation races for the top-of-stack element.
#[derive(Debug, Clone, Copy)]
pub struct ConstantKeyMapper {
    key: TxnKey,
}

impl ConstantKeyMapper {
    /// Mapper that always produces `key`.
    pub fn new(key: TxnKey) -> Self {
        ConstantKeyMapper { key }
    }
}

impl<T> KeyMapper<T> for ConstantKeyMapper {
    fn key(&self, _input: &T) -> TxnKey {
        self.key
    }

    fn bounds(&self) -> KeyBounds {
        KeyBounds::new(self.key, self.key)
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use katme_workload::OpKind;

    fn spec(key: u32) -> TxnSpec {
        TxnSpec {
            key,
            value: 0,
            op: OpKind::Insert,
        }
    }

    #[test]
    fn bounds_width_and_clamp() {
        let b = KeyBounds::new(10, 19);
        assert_eq!(b.width(), 10);
        assert_eq!(b.clamp(5), 10);
        assert_eq!(b.clamp(25), 19);
        assert!(b.contains(15));
        assert!(!b.contains(20));
        assert_eq!(KeyBounds::dict16().width(), 65_536);
    }

    #[test]
    #[should_panic(expected = "invalid key bounds")]
    fn inverted_bounds_panic() {
        KeyBounds::new(5, 4);
    }

    #[test]
    fn dict_mapper_passes_key_through() {
        let m = DictKeyMapper;
        assert_eq!(m.key(&spec(1234)), 1234);
        assert_eq!(m.bounds(), KeyBounds::dict16());
    }

    #[test]
    fn bucket_mapper_is_modulo() {
        let m = BucketKeyMapper::new(100);
        assert_eq!(m.key(&spec(1234)), 34);
        assert_eq!(m.bounds(), KeyBounds::new(0, 99));
        assert_eq!(BucketKeyMapper::paper().buckets(), 30_031);
        // The paper's skew: with 30031 buckets and 65536 keys, low bucket
        // indices receive 3 keys while high ones receive 2 ("the modulo
        // function produces 50% 'too many' values at the low end").
        let paper = BucketKeyMapper::paper();
        let low = (0..65_536u32).filter(|k| paper.key(&spec(*k)) == 0).count();
        let high = (0..65_536u32)
            .filter(|k| paper.key(&spec(*k)) == 30_030)
            .count();
        assert_eq!(low, 3);
        assert_eq!(high, 2);
    }

    #[test]
    fn constant_mapper_ignores_input() {
        let m = ConstantKeyMapper::new(7);
        assert_eq!(KeyMapper::<TxnSpec>::key(&m, &spec(1)), 7);
        assert_eq!(KeyMapper::<TxnSpec>::key(&m, &spec(999)), 7);
        assert_eq!(KeyMapper::<TxnSpec>::bounds(&m).width(), 1);
    }
}
