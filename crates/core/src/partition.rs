//! Key-space partitions.
//!
//! A [`KeyPartition`] divides the transaction-key space into one contiguous
//! range per worker. The fixed scheduler uses equal-*width* ranges; the
//! adaptive scheduler uses the PD-partition — equal-*probability* ranges
//! computed from an estimated CDF (step (e) of the paper's Figure 2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cdf::PiecewiseCdf;
use crate::key::{KeyBounds, TxnKey};

/// A partition of a bounded key space into contiguous per-worker ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPartition {
    bounds: KeyBounds,
    /// `boundaries[i]` is the first key that belongs to worker `i + 1`;
    /// there are `workers - 1` entries, non-decreasing.
    boundaries: Vec<TxnKey>,
}

impl KeyPartition {
    /// Equal-width partition: worker `i` owns `[min + i*width/w, ...)`.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn equal_width(bounds: KeyBounds, workers: usize) -> Self {
        assert!(workers > 0, "partition needs at least one worker");
        let width = bounds.width();
        let boundaries = (1..workers)
            .map(|i| bounds.min + (width * i as u64) / workers as u64)
            .collect();
        KeyPartition { bounds, boundaries }
    }

    /// PD-partition: boundaries at the `i/w` quantiles of the estimated CDF,
    /// so each worker receives (approximately) the same probability mass.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn from_cdf(cdf: &PiecewiseCdf, workers: usize) -> Self {
        assert!(workers > 0, "partition needs at least one worker");
        let bounds = cdf.bounds();
        let mut boundaries: Vec<TxnKey> = (1..workers)
            .map(|i| cdf.quantile(i as f64 / workers as f64))
            .collect();
        // Quantiles of a discrete estimate can repeat; enforce monotonicity
        // so each worker still owns a well-formed (possibly empty) range.
        for i in 1..boundaries.len() {
            if boundaries[i] < boundaries[i - 1] {
                boundaries[i] = boundaries[i - 1];
            }
        }
        KeyPartition { bounds, boundaries }
    }

    /// Build a partition from explicit boundaries (primarily for tests).
    ///
    /// # Panics
    /// Panics when the boundaries are not non-decreasing or fall outside the
    /// bounds.
    pub fn from_boundaries(bounds: KeyBounds, boundaries: Vec<TxnKey>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be non-decreasing"
        );
        assert!(
            boundaries.iter().all(|b| bounds.contains(*b)),
            "boundaries must lie inside the key bounds"
        );
        KeyPartition { bounds, boundaries }
    }

    /// Number of workers this partition routes to.
    pub fn workers(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The key bounds.
    pub fn bounds(&self) -> KeyBounds {
        self.bounds
    }

    /// The internal boundaries (first key owned by each worker after the
    /// first).
    pub fn boundaries(&self) -> &[TxnKey] {
        &self.boundaries
    }

    /// Which worker a key is routed to.
    pub fn worker_for(&self, key: TxnKey) -> usize {
        let key = self.bounds.clamp(key);
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// The inclusive key range owned by a worker (may be empty when adjacent
    /// boundaries coincide, in which case `None` is returned).
    pub fn range_of(&self, worker: usize) -> Option<(TxnKey, TxnKey)> {
        assert!(worker < self.workers(), "worker index out of range");
        let lo = if worker == 0 {
            self.bounds.min
        } else {
            self.boundaries[worker - 1]
        };
        let hi = if worker == self.workers() - 1 {
            self.bounds.max
        } else {
            let next = self.boundaries[worker];
            if next == self.bounds.min {
                return None;
            }
            next - 1
        };
        if lo > hi {
            None
        } else {
            Some((lo, hi))
        }
    }

    /// Expected fraction of keys routed to each worker under the given CDF —
    /// the balance metric the adaptive partition optimizes.
    pub fn expected_shares(&self, cdf: &PiecewiseCdf) -> Vec<f64> {
        let mut shares = Vec::with_capacity(self.workers());
        let mut prev = 0.0;
        for w in 0..self.workers() {
            let upper = if w == self.workers() - 1 {
                1.0
            } else {
                cdf.probability_at(self.boundaries[w].saturating_sub(1))
            };
            shares.push((upper - prev).max(0.0));
            prev = upper;
        }
        shares
    }
}

/// One published routing generation: a [`KeyPartition`] stamped with the
/// monotonically increasing generation number it was installed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionGeneration {
    /// Generation counter: 0 is the initial (pre-adaptation) partition;
    /// every [`PartitionTable::publish`] increments it.
    pub generation: u64,
    /// The routing partition of this generation.
    pub partition: KeyPartition,
}

/// A versioned, atomically swappable routing table — the hinge of the
/// continuous adaptation plane.
///
/// # Swap protocol
///
/// * **Readers** ([`PartitionTable::load`]) take a brief read lock and clone
///   an `Arc` to the current [`PartitionGeneration`]; they then route any
///   number of keys against that immutable snapshot with no further
///   synchronization. A reader is never blocked by more than the O(1)
///   pointer swap of a concurrent publish.
/// * **Writers** ([`PartitionTable::publish`]) build the new partition
///   *outside* the table, then swap the `Arc` under the write lock and bump
///   the generation counter. Old generations stay alive for as long as any
///   in-flight dispatch still holds their `Arc`, so a swap never invalidates
///   routing decisions already being made.
/// * **Drain safety**: a task routed under generation *g* is pushed onto the
///   worker queue generation *g* chose, and workers drain their queues
///   regardless of the current generation — so a swap can neither lose a
///   task (its queue keeps being drained) nor double-dispatch one (each key
///   is routed against exactly one snapshot). Only *placement* of tasks
///   dispatched after the swap changes.
///
/// [`PartitionTable::generation`] is a lock-free monotonic counter, letting
/// hot paths detect "a swap happened" without touching the lock.
#[derive(Debug)]
pub struct PartitionTable {
    current: RwLock<Arc<PartitionGeneration>>,
    generation: AtomicU64,
}

impl PartitionTable {
    /// Create a table at generation 0 with the given initial partition.
    pub fn new(initial: KeyPartition) -> Self {
        PartitionTable {
            current: RwLock::new(Arc::new(PartitionGeneration {
                generation: 0,
                partition: initial,
            })),
            generation: AtomicU64::new(0),
        }
    }

    /// The current generation number (0 until the first publish). Lock-free.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Snapshot the current generation for routing: the returned `Arc` stays
    /// valid (and immutable) across any number of concurrent publishes.
    pub fn load(&self) -> Arc<PartitionGeneration> {
        Arc::clone(&self.current.read())
    }

    /// Clone of the current partition (convenience for reports).
    pub fn partition(&self) -> KeyPartition {
        self.current.read().partition.clone()
    }

    /// Route one key through the current generation.
    pub fn worker_for(&self, key: TxnKey) -> usize {
        self.current.read().partition.worker_for(key)
    }

    /// Install a new partition as the next generation and return its
    /// generation number. In-flight readers keep routing against whichever
    /// snapshot they loaded (see the swap protocol above).
    ///
    /// The new partition **may route to a different number of workers** than
    /// the current one — this is how the elastic execution plane changes
    /// pool size and boundaries in one atomic swap. Dispatchers must route
    /// against a single snapshot's own width (they do: a snapshot's
    /// partition can only ever return indices below its own `workers()`),
    /// and the executor sizes its queue set by the scheduler's
    /// [`crate::scheduler::Scheduler::max_workers`], so every index a
    /// published generation can produce has a live queue.
    pub fn publish(&self, partition: KeyPartition) -> u64 {
        let mut current = self.current.write();
        let generation = current.generation + 1;
        *current = Arc::new(PartitionGeneration {
            generation,
            partition,
        });
        self.generation.store(generation, Ordering::Release);
        generation
    }
}

impl std::fmt::Display for KeyPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}", self.bounds.min)?;
        for b in &self.boundaries {
            write!(f, " | {b}")?;
        }
        write!(f, " .. {}]", self.bounds.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn bounds() -> KeyBounds {
        KeyBounds::new(0, 999)
    }

    #[test]
    fn equal_width_covers_the_space() {
        let p = KeyPartition::equal_width(bounds(), 4);
        assert_eq!(p.workers(), 4);
        assert_eq!(p.boundaries(), &[250, 500, 750]);
        assert_eq!(p.worker_for(0), 0);
        assert_eq!(p.worker_for(249), 0);
        assert_eq!(p.worker_for(250), 1);
        assert_eq!(p.worker_for(999), 3);
        assert_eq!(p.worker_for(10_000), 3, "out-of-range keys clamp");
        // Ranges tile the space.
        let mut covered = 0;
        for w in 0..4 {
            let (lo, hi) = p.range_of(w).unwrap();
            covered += hi - lo + 1;
        }
        assert_eq!(covered, bounds().width());
    }

    #[test]
    fn single_worker_partition() {
        let p = KeyPartition::equal_width(bounds(), 1);
        assert_eq!(p.workers(), 1);
        assert!(p.boundaries().is_empty());
        assert_eq!(p.worker_for(0), 0);
        assert_eq!(p.worker_for(999), 0);
        assert_eq!(p.range_of(0), Some((0, 999)));
    }

    #[test]
    fn every_key_routes_to_exactly_one_worker() {
        for workers in [2usize, 3, 5, 8, 16] {
            let p = KeyPartition::equal_width(bounds(), workers);
            for key in 0..1000u64 {
                let w = p.worker_for(key);
                assert!(w < workers);
                let (lo, hi) = p.range_of(w).unwrap();
                assert!(key >= lo && key <= hi, "key {key} outside worker {w} range");
            }
        }
    }

    #[test]
    fn pd_partition_balances_a_skewed_distribution() {
        // 90% of mass in the first tenth of the space.
        let mut samples = Vec::new();
        for i in 0..90_000u64 {
            samples.push(i % 100);
        }
        for i in 0..10_000u64 {
            samples.push(100 + i % 900);
        }
        let hist = Histogram::from_samples(bounds(), 200, &samples);
        let cdf = PiecewiseCdf::from_histogram(&hist);

        let fixed = KeyPartition::equal_width(bounds(), 4);
        let adaptive = KeyPartition::from_cdf(&cdf, 4);

        // Route the sample stream through both partitions and compare load.
        let route = |p: &KeyPartition| -> Vec<usize> {
            let mut counts = vec![0usize; 4];
            for &s in &samples {
                counts[p.worker_for(s)] += 1;
            }
            counts
        };
        let fixed_counts = route(&fixed);
        let adaptive_counts = route(&adaptive);

        let imbalance = |counts: &[usize]| {
            let max = *counts.iter().max().unwrap() as f64;
            let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            max / avg
        };
        assert!(
            imbalance(&fixed_counts) > 3.0,
            "fixed partition should be badly imbalanced: {fixed_counts:?}"
        );
        assert!(
            imbalance(&adaptive_counts) < 1.3,
            "adaptive partition should be balanced: {adaptive_counts:?}"
        );
        // The heaviest adaptive share should be close to 1/workers.
        let shares = adaptive.expected_shares(&cdf);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pd_partition_on_uniform_matches_equal_width_roughly() {
        let samples: Vec<TxnKey> = (0..100_000u64).map(|i| i % 1000).collect();
        let hist = Histogram::from_samples(bounds(), 100, &samples);
        let cdf = PiecewiseCdf::from_histogram(&hist);
        let adaptive = KeyPartition::from_cdf(&cdf, 4);
        let fixed = KeyPartition::equal_width(bounds(), 4);
        for (a, f) in adaptive.boundaries().iter().zip(fixed.boundaries()) {
            let diff = a.abs_diff(*f);
            assert!(diff <= 30, "boundary {a} too far from equal-width {f}");
        }
    }

    #[test]
    fn explicit_boundaries_validation() {
        let p = KeyPartition::from_boundaries(bounds(), vec![100, 100, 500]);
        assert_eq!(p.workers(), 4);
        assert_eq!(p.worker_for(99), 0);
        // Worker 1 owns an empty range because two boundaries coincide.
        assert_eq!(p.worker_for(100), 2);
        assert!(p.range_of(1).is_none());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_boundaries_are_rejected() {
        KeyPartition::from_boundaries(bounds(), vec![500, 100]);
    }

    #[test]
    fn partition_table_swaps_generations_without_invalidating_readers() {
        let table = PartitionTable::new(KeyPartition::equal_width(bounds(), 4));
        assert_eq!(table.generation(), 0);
        let snapshot = table.load();
        assert_eq!(snapshot.generation, 0);
        assert_eq!(table.worker_for(0), 0);

        let gen1 = table.publish(KeyPartition::from_boundaries(bounds(), vec![900, 950, 980]));
        assert_eq!(gen1, 1);
        assert_eq!(table.generation(), 1);
        // The pre-swap snapshot still routes with the old boundaries.
        assert_eq!(snapshot.partition.worker_for(500), 2);
        // New loads see the new generation.
        assert_eq!(table.worker_for(500), 0);
        assert_eq!(table.load().generation, 1);
        assert_eq!(table.partition().boundaries(), &[900, 950, 980]);
    }

    #[test]
    fn concurrent_publishes_and_reads_stay_consistent() {
        use std::sync::Arc;
        let table = Arc::new(PartitionTable::new(KeyPartition::equal_width(bounds(), 2)));
        std::thread::scope(|s| {
            let writer = Arc::clone(&table);
            s.spawn(move || {
                for b in 1..500u64 {
                    writer.publish(KeyPartition::from_boundaries(bounds(), vec![b]));
                }
            });
            for _ in 0..3 {
                let reader = Arc::clone(&table);
                s.spawn(move || {
                    for key in 0..5_000u64 {
                        let snap = reader.load();
                        // Every snapshot is internally consistent.
                        assert!(snap.partition.worker_for(key % 1_000) < 2);
                    }
                });
            }
        });
        assert_eq!(table.generation(), 499);
    }

    #[test]
    fn publishing_a_different_width_swaps_atomically() {
        // The elastic plane shrinks and grows the routing width through the
        // same swap protocol; old snapshots keep their own width.
        let table = PartitionTable::new(KeyPartition::equal_width(bounds(), 4));
        let wide = table.load();
        assert_eq!(table.publish(KeyPartition::equal_width(bounds(), 2)), 1);
        assert_eq!(table.partition().workers(), 2);
        assert_eq!(wide.partition.workers(), 4, "old snapshot keeps its width");
        assert!(table.worker_for(999) < 2);
        assert_eq!(table.publish(KeyPartition::equal_width(bounds(), 8)), 2);
        assert_eq!(table.partition().workers(), 8);
    }

    #[test]
    fn display_formats_boundaries() {
        let p = KeyPartition::equal_width(bounds(), 2);
        let s = p.to_string();
        assert!(s.contains("500"));
        assert!(s.contains("999"));
    }
}
