//! Execution-lane designation: which key ranges run on the multi-version
//! optimistic lane instead of the default single-version STM path.
//!
//! The adaptation/cost plane prices lane flips like repartitions (see
//! [`crate::cost::plan::lane_candidates`]): a contended range whose abort
//! mass would be cheaper to absorb as multi-version re-executions gets
//! *designated*, and a designated range whose traffic has gone cold gets
//! *undesignated*. This module holds only the routing table those decisions
//! publish — a small, read-mostly set of `[lo, hi]` key ranges consulted on
//! every batch submission.
//!
//! The hot-path query [`LaneTable::is_mv`] is a single relaxed atomic load
//! when no range is designated (the common case for uniform workloads), so
//! leaving the lane enabled costs nothing until the cost plane actually
//! flips a range.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Routing table for the multi-version execution lane.
///
/// Holds the set of inclusive key ranges currently designated to the
/// multi-version lane, plus flip telemetry (generation counter and total
/// flips) surfaced through the facade's stats view.
#[derive(Debug, Default)]
pub struct LaneTable {
    ranges: RwLock<Vec<(u64, u64)>>,
    /// Bumped on every successful designate/undesignate; lets readers cheaply
    /// detect staleness of a cached copy of [`LaneTable::ranges`].
    generation: AtomicU64,
    /// Total designations + undesignations since construction.
    flips: AtomicU64,
    /// Fast-path flag: `false` exactly when no range is designated.
    nonempty: AtomicBool,
}

impl LaneTable {
    /// New table with no ranges designated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `key` currently routes to the multi-version lane.
    pub fn is_mv(&self, key: u64) -> bool {
        if !self.nonempty.load(Ordering::Relaxed) {
            return false;
        }
        self.ranges
            .read()
            .expect("lane table lock poisoned")
            .iter()
            .any(|&(lo, hi)| lo <= key && key <= hi)
    }

    /// Designate the inclusive range `[lo, hi]` to the multi-version lane.
    ///
    /// Overlapping or adjacent existing ranges are merged so the table stays
    /// a minimal sorted set. Returns `true` if the table changed.
    pub fn designate(&self, lo: u64, hi: u64) -> bool {
        if lo > hi {
            return false;
        }
        let mut ranges = self.ranges.write().expect("lane table lock poisoned");
        // Already fully covered by one existing range?
        if ranges.iter().any(|&(a, b)| a <= lo && hi <= b) {
            return false;
        }
        let (mut lo, mut hi) = (lo, hi);
        ranges.retain(|&(a, b)| {
            // Merge every range that overlaps or abuts the new one.
            let abuts = b.checked_add(1) == Some(lo) || hi.checked_add(1) == Some(a);
            if a <= hi && lo <= b || abuts {
                lo = lo.min(a);
                hi = hi.max(b);
                false
            } else {
                true
            }
        });
        ranges.push((lo, hi));
        ranges.sort_unstable();
        self.nonempty.store(true, Ordering::Relaxed);
        drop(ranges);
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.flips.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Remove every designated range that intersects `[lo, hi]`.
    ///
    /// Partial overlaps are trimmed, not dropped wholesale: undesignating the
    /// middle of a wide range leaves its cold edges designated only if they
    /// fall outside `[lo, hi]`. Returns `true` if the table changed.
    pub fn undesignate(&self, lo: u64, hi: u64) -> bool {
        if lo > hi {
            return false;
        }
        let mut ranges = self.ranges.write().expect("lane table lock poisoned");
        let mut changed = false;
        let mut next = Vec::with_capacity(ranges.len());
        for &(a, b) in ranges.iter() {
            if b < lo || hi < a {
                next.push((a, b));
                continue;
            }
            changed = true;
            if a < lo {
                next.push((a, lo - 1));
            }
            if hi < b {
                next.push((hi + 1, b));
            }
        }
        if !changed {
            return false;
        }
        *ranges = next;
        self.nonempty.store(!ranges.is_empty(), Ordering::Relaxed);
        drop(ranges);
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.flips.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Snapshot of the currently designated ranges, sorted by lower bound.
    pub fn ranges(&self) -> Vec<(u64, u64)> {
        self.ranges
            .read()
            .expect("lane table lock poisoned")
            .clone()
    }

    /// Monotone counter bumped on every table change.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Total lane flips (designations plus undesignations) so far.
    pub fn flips(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_routes_nothing() {
        let table = LaneTable::new();
        assert!(!table.is_mv(0));
        assert!(!table.is_mv(u64::MAX));
        assert_eq!(table.generation(), 0);
        assert_eq!(table.flips(), 0);
    }

    #[test]
    fn designate_routes_the_inclusive_range() {
        let table = LaneTable::new();
        assert!(table.designate(100, 199));
        assert!(!table.is_mv(99));
        assert!(table.is_mv(100));
        assert!(table.is_mv(150));
        assert!(table.is_mv(199));
        assert!(!table.is_mv(200));
        assert_eq!(table.ranges(), vec![(100, 199)]);
        assert_eq!(table.generation(), 1);
    }

    #[test]
    fn overlapping_and_adjacent_designations_merge() {
        let table = LaneTable::new();
        table.designate(100, 199);
        table.designate(150, 250); // overlap
        assert_eq!(table.ranges(), vec![(100, 250)]);
        table.designate(251, 300); // abuts
        assert_eq!(table.ranges(), vec![(100, 300)]);
        table.designate(0, 10); // disjoint
        assert_eq!(table.ranges(), vec![(0, 10), (100, 300)]);
    }

    #[test]
    fn redundant_designation_is_a_no_op() {
        let table = LaneTable::new();
        table.designate(0, 100);
        let gen = table.generation();
        assert!(!table.designate(10, 20));
        assert_eq!(table.generation(), gen);
        assert_eq!(table.flips(), 1);
    }

    #[test]
    fn undesignate_trims_partial_overlaps() {
        let table = LaneTable::new();
        table.designate(0, 100);
        assert!(table.undesignate(40, 60));
        assert_eq!(table.ranges(), vec![(0, 39), (61, 100)]);
        assert!(table.is_mv(39));
        assert!(!table.is_mv(50));
        assert!(table.is_mv(61));
    }

    #[test]
    fn undesignate_clears_the_fast_path_flag() {
        let table = LaneTable::new();
        table.designate(5, 9);
        assert!(table.undesignate(0, 100));
        assert!(!table.is_mv(7));
        assert_eq!(table.ranges(), Vec::<(u64, u64)>::new());
        assert_eq!(table.flips(), 2);
        // Nothing left to undesignate.
        assert!(!table.undesignate(0, 100));
        assert_eq!(table.flips(), 2);
    }

    #[test]
    fn inverted_bounds_are_rejected() {
        let table = LaneTable::new();
        assert!(!table.designate(10, 5));
        assert!(!table.undesignate(10, 5));
        assert_eq!(table.generation(), 0);
    }
}
