//! Scheduling policies: round-robin and fixed key-based.
//!
//! Section 3.2 of the paper: "We have experimented with three schemes to
//! schedule transactions ... The baseline scheme is a round robin scheduler
//! that dispatches new transactions to the next task queue in cyclic order.
//! The second scheme is a key-based fixed scheduler that addresses locality
//! by dividing the key space into w equal-sized ranges, one for each of w
//! workers. ... The third scheme is a key-based adaptive scheduler" (see
//! [`crate::adaptive`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::adaptive::AdaptiveKeyScheduler;
use crate::cost::CostModelView;
use crate::drift::{AdaptationEvent, PoolController};
use crate::key::{KeyBounds, TxnKey};
use crate::partition::KeyPartition;

/// A transaction-dispatch policy: maps a transaction key to a worker index.
///
/// Implementations must be cheap and thread-safe — in the parallel-executor
/// model every producer thread calls [`dispatch`](Scheduler::dispatch) on the
/// shared scheduler for every transaction it creates.
pub trait Scheduler: Send + Sync {
    /// Choose the worker that should execute a transaction with this key.
    fn dispatch(&self, key: TxnKey) -> usize;

    /// Route a whole slice of keys in one call, appending one worker index
    /// per key to `out` (in key order).
    ///
    /// This is the batched dispatch plane's entry point: implementations
    /// with per-dispatch bookkeeping (the adaptive scheduler's sampling)
    /// amortize their synchronization over the batch while observing every
    /// key exactly once, so a batched submission leaves the scheduler in
    /// the same state — same samples, same adaptations, same partition — as
    /// the equivalent sequence of per-task [`dispatch`](Scheduler::dispatch)
    /// calls. The default simply loops.
    fn dispatch_batch(&self, keys: &[TxnKey], out: &mut Vec<usize>) {
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&key| self.dispatch(key)));
    }

    /// Number of workers this scheduler currently routes to (the active
    /// width of an elastic pool).
    fn workers(&self) -> usize;

    /// The largest worker count this scheduler may ever route to. The
    /// executor sizes its queue set by this, so an elastic scheduler can
    /// grow the pool without reallocating queues. Static policies route to
    /// a fixed width, so the default equals [`workers`](Scheduler::workers).
    fn max_workers(&self) -> usize {
        self.workers()
    }

    /// Hand the scheduler a handle to the executor's worker pool: a
    /// telemetry feed (per-worker throughput, steals, idle polls, queue
    /// depths) and the resize control the elastic concurrency controller
    /// drives. Static policies ignore it (default no-op).
    fn attach_pool(&self, _pool: Arc<dyn PoolController>) {}

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// The key partition currently in effect, when the policy is key-based.
    fn partition(&self) -> Option<KeyPartition> {
        None
    }

    /// How many times the policy has recomputed its partition (0 for static
    /// policies; the adaptive scheduler counts its PD-partition adaptations).
    fn repartitions(&self) -> u64 {
        0
    }

    /// The routing-table generation currently in effect (0 for static
    /// policies; the adaptive scheduler reports its
    /// [`crate::partition::PartitionTable`] generation).
    fn generation(&self) -> u64 {
        0
    }

    /// The adaptation log: one [`AdaptationEvent`] per published partition
    /// generation, oldest first (empty for static policies).
    fn adaptation_log(&self) -> Vec<AdaptationEvent> {
        Vec::new()
    }

    /// Point-in-time view of the predictive cost plane — calibration
    /// state, trust, margin, last prediction error — `None` unless the
    /// policy runs one (see
    /// [`crate::AdaptiveKeyScheduler::with_cost_model`]).
    fn cost_model(&self) -> Option<CostModelView> {
        None
    }

    /// One-line description of the current state (partition boundaries,
    /// adaptation status) for the harness' verbose output.
    fn describe(&self) -> String {
        self.name().to_string()
    }
}

/// The paper's three scheduling policies, for configuration sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Key-less cyclic dispatch.
    RoundRobin,
    /// Equal-width key ranges.
    FixedKey,
    /// Adaptive equal-probability key ranges (PD-partition).
    AdaptiveKey,
}

impl SchedulerKind {
    /// All three policies, in the order the paper's figures list them.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::FixedKey,
        SchedulerKind::AdaptiveKey,
    ];

    /// Name used in reports ("round robin", "fixed", "adaptive" in the
    /// paper's figures).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::FixedKey => "fixed",
            SchedulerKind::AdaptiveKey => "adaptive",
        }
    }

    /// Instantiate the scheduler for the given worker count and key bounds.
    pub fn build(&self, workers: usize, bounds: KeyBounds) -> std::sync::Arc<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => std::sync::Arc::new(RoundRobinScheduler::new(workers)),
            SchedulerKind::FixedKey => std::sync::Arc::new(FixedKeyScheduler::new(workers, bounds)),
            SchedulerKind::AdaptiveKey => {
                std::sync::Arc::new(AdaptiveKeyScheduler::new(workers, bounds))
            }
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Ok(SchedulerKind::RoundRobin),
            "fixed" | "fixed-key" => Ok(SchedulerKind::FixedKey),
            "adaptive" | "adaptive-key" => Ok(SchedulerKind::AdaptiveKey),
            other => Err(format!("unknown scheduler '{other}'")),
        }
    }
}

/// Key-less baseline: dispatches transactions to workers in cyclic order.
/// Load is perfectly balanced by construction, but nearby keys are scattered
/// across all workers, destroying locality.
#[derive(Debug)]
pub struct RoundRobinScheduler {
    workers: usize,
    next: AtomicUsize,
}

impl RoundRobinScheduler {
    /// Create a round-robin scheduler over `workers` workers.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        RoundRobinScheduler {
            workers,
            next: AtomicUsize::new(0),
        }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn dispatch(&self, _key: TxnKey) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.workers
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Key-based fixed scheduler: the key space is split into equal-width ranges,
/// one per worker. Maximizes locality but balances load only when the key
/// distribution is (close to) uniform.
#[derive(Debug)]
pub struct FixedKeyScheduler {
    partition: KeyPartition,
}

impl FixedKeyScheduler {
    /// Create a fixed scheduler over `workers` equal-width ranges.
    pub fn new(workers: usize, bounds: KeyBounds) -> Self {
        FixedKeyScheduler {
            partition: KeyPartition::equal_width(bounds, workers),
        }
    }

    /// Create a fixed scheduler from an explicit partition.
    pub fn from_partition(partition: KeyPartition) -> Self {
        FixedKeyScheduler { partition }
    }
}

impl Scheduler for FixedKeyScheduler {
    fn dispatch(&self, key: TxnKey) -> usize {
        self.partition.worker_for(key)
    }

    fn workers(&self) -> usize {
        self.partition.workers()
    }

    fn name(&self) -> &'static str {
        "fixed"
    }

    fn partition(&self) -> Option<KeyPartition> {
        Some(self.partition.clone())
    }

    fn describe(&self) -> String {
        format!("fixed {}", self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn round_robin_cycles_evenly() {
        let s = RoundRobinScheduler::new(4);
        let mut counts = vec![0usize; 4];
        for _ in 0..400 {
            counts[s.dispatch(12345)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
        assert_eq!(s.workers(), 4);
        assert_eq!(s.name(), "round-robin");
        assert!(s.partition().is_none());
    }

    #[test]
    fn round_robin_ignores_keys() {
        let s = RoundRobinScheduler::new(3);
        // Same key goes to different workers on consecutive dispatches.
        let a = s.dispatch(5);
        let b = s.dispatch(5);
        let c = s.dispatch(5);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn fixed_scheduler_routes_by_range() {
        let s = FixedKeyScheduler::new(4, KeyBounds::new(0, 99));
        assert_eq!(s.dispatch(0), 0);
        assert_eq!(s.dispatch(24), 0);
        assert_eq!(s.dispatch(25), 1);
        assert_eq!(s.dispatch(99), 3);
        assert_eq!(s.workers(), 4);
        assert!(s.describe().contains("fixed"));
        assert!(s.partition().is_some());
    }

    #[test]
    fn fixed_scheduler_keeps_similar_keys_together() {
        let s = FixedKeyScheduler::new(8, KeyBounds::dict16());
        for base in (0..65_000u64).step_by(1_000) {
            let w = s.dispatch(base);
            // Keys within a small neighbourhood land on the same worker.
            for delta in 0..8 {
                assert_eq!(s.dispatch(base + delta), w);
            }
        }
    }

    #[test]
    fn scheduler_kind_builds_all_policies() {
        for kind in SchedulerKind::ALL {
            let s = kind.build(4, KeyBounds::dict16());
            assert_eq!(s.workers(), 4);
            let w = s.dispatch(123);
            assert!(w < 4);
            assert_eq!(SchedulerKind::from_str(kind.name()).unwrap(), kind);
        }
        assert!(SchedulerKind::from_str("??").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        RoundRobinScheduler::new(0);
    }
}
