//! Experiment runners, one per table/figure of the paper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use katme::{
    ClockMode, Driver, DriverConfig, ExecutorModel, Katme, KeyRangeSnapshot, RunResult,
    SchedulerKind, Stm, StmConfig, TVar, WindowReport, WithKey,
};
use katme_collections::StructureKind;
use katme_workload::{ArrivalRamp, DistributionKind, KeyDistribution};

use crate::options::HarnessOptions;

/// One data point of a throughput figure: a (series, worker-count) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Curve this point belongs to (scheduler name, or "no executor" /
    /// "executor" for Figure 4).
    pub series: String,
    /// Number of worker threads.
    pub workers: usize,
    /// Mean completed transactions per second.
    pub throughput: f64,
    /// Aborted attempts per committed transaction.
    pub contention_ratio: f64,
    /// Max-over-mean completed transactions across workers.
    pub imbalance: f64,
    /// Mean completed transactions per repetition.
    pub completed: u64,
}

impl ExperimentRow {
    fn from_results(series: String, workers: usize, results: &[RunResult]) -> Self {
        let n = results.len().max(1) as f64;
        let throughput = results.iter().map(|r| r.throughput).sum::<f64>() / n;
        let contention = results.iter().map(|r| r.contention_ratio()).sum::<f64>() / n;
        let imbalance = results.iter().map(|r| r.load.imbalance()).sum::<f64>() / n;
        let completed = (results.iter().map(|r| r.completed).sum::<u64>() as f64 / n) as u64;
        ExperimentRow {
            series,
            workers,
            throughput,
            contention_ratio: contention,
            imbalance,
            completed,
        }
    }
}

/// One row of the Figure-4 overhead comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Number of worker threads.
    pub workers: usize,
    /// Throughput of free-running transaction loops (no executor).
    pub no_executor: f64,
    /// Throughput of the same trivial transactions through the executor.
    pub executor: f64,
}

impl Fig4Row {
    /// Executor overhead expressed as the throughput ratio (≥ 1 means the
    /// free-running loops are faster).
    pub fn overhead_factor(&self) -> f64 {
        if self.executor <= 0.0 {
            f64::INFINITY
        } else {
            self.no_executor / self.executor
        }
    }
}

fn base_config(opts: &HarnessOptions, structure: StructureKind) -> DriverConfig {
    DriverConfig::new()
        .with_duration(opts.duration())
        .with_producers(opts.producers_for(structure))
        .with_preload(if opts.quick { 500 } else { opts.preload })
}

fn sweep_structure(
    opts: &HarnessOptions,
    structure: StructureKind,
    distribution: DistributionKind,
) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    for &workers in &opts.worker_counts() {
        for scheduler in SchedulerKind::ALL {
            let mut results = Vec::new();
            for rep in 0..opts.repetitions() {
                let config = base_config(opts, structure)
                    .with_workers(workers)
                    .with_scheduler(scheduler)
                    .with_seed(0x5eed + rep as u64);
                results.push(Driver::new(config).run_dictionary(structure, distribution));
            }
            rows.push(ExperimentRow::from_results(
                scheduler.name().to_string(),
                workers,
                &results,
            ));
        }
    }
    rows
}

/// **Figure 3**: hash-table throughput for the three key distributions under
/// the three schedulers, across worker counts. Returns one row set per
/// distribution, in the paper's order (uniform, Gaussian, exponential).
pub fn fig3_hashtable(opts: &HarnessOptions) -> Vec<(DistributionKind, Vec<ExperimentRow>)> {
    DistributionKind::paper_distributions()
        .into_iter()
        .map(|dist| (dist, sweep_structure(opts, StructureKind::HashTable, dist)))
        .collect()
}

/// **Tech-report companion**: the same sweep for the red-black tree and the
/// sorted list (the paper reports these in its technical-report appendix).
pub fn tree_list(
    opts: &HarnessOptions,
) -> Vec<(StructureKind, DistributionKind, Vec<ExperimentRow>)> {
    let mut out = Vec::new();
    for structure in [StructureKind::RbTree, StructureKind::SortedList] {
        for dist in DistributionKind::paper_distributions() {
            out.push((structure, dist, sweep_structure(opts, structure, dist)));
        }
    }
    out
}

/// **Figure 4**: executor overhead on trivial transactions — k free-running
/// threads vs. the executor with k workers and six producers.
pub fn fig4_overhead(opts: &HarnessOptions) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &workers in &opts.worker_counts() {
        let mut no_exec = Vec::new();
        let mut with_exec = Vec::new();
        for rep in 0..opts.repetitions() {
            let config = DriverConfig::new()
                .with_duration(opts.duration())
                .with_workers(workers)
                // "For executor mode, we constantly use six producers."
                .with_producers(6)
                .with_scheduler(SchedulerKind::RoundRobin)
                .with_seed(0xf16 + rep as u64);
            let driver = Driver::new(config);
            no_exec.push(driver.run_trivial(false));
            with_exec.push(driver.run_trivial(true));
        }
        let mean =
            |rs: &[RunResult]| rs.iter().map(|r| r.throughput).sum::<f64>() / rs.len() as f64;
        rows.push(Fig4Row {
            workers,
            no_executor: mean(&no_exec),
            executor: mean(&with_exec),
        });
    }
    rows
}

/// **Contention table**: aborts per committed transaction for each structure
/// and scheduler (the supporting data the paper cites: "the total number of
/// contention instances is small enough (less than 1/100th the number of
/// completed transactions)" for the hash table, rising for the list/tree).
pub fn contention_table(
    opts: &HarnessOptions,
    distribution: DistributionKind,
) -> Vec<(StructureKind, SchedulerKind, f64)> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    let mut out = Vec::new();
    for structure in StructureKind::ALL {
        for scheduler in SchedulerKind::ALL {
            let config = base_config(opts, structure)
                .with_workers(workers)
                .with_scheduler(scheduler);
            let result = Driver::new(config).run_dictionary(structure, distribution);
            out.push((structure, scheduler, result.contention_ratio()));
        }
    }
    out
}

/// **Load-balance table**: the per-worker share of completed transactions
/// under each scheduler, demonstrating the §4.4 claim that the fixed
/// partition leaves "50% too many" keys at the low end under the modulo key
/// map while the adaptive partition evens the queues out.
pub fn balance_table(
    opts: &HarnessOptions,
    structure: StructureKind,
    distribution: DistributionKind,
) -> Vec<(SchedulerKind, Vec<u64>, f64)> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    let mut out = Vec::new();
    for scheduler in SchedulerKind::ALL {
        let config = base_config(opts, structure)
            .with_workers(workers)
            .with_scheduler(scheduler);
        let result = Driver::new(config).run_dictionary(structure, distribution);
        let imbalance = result.load.imbalance();
        out.push((scheduler, result.load.per_worker, imbalance));
    }
    out
}

/// Batch sizes swept by [`batch_dispatch`]: 1 is the paper's per-task
/// submission protocol; the rest exercise the batched dispatch plane.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

/// **Batched dispatch**: per-task vs. batched submission at equal workload —
/// the same structures, distribution, scheduler, workers and window as the
/// contention table, with only the dispatch-plane granularity varied. Each
/// row reports the throughput of one (structure, batch-size) pair; batch
/// size 1 is the per-task baseline the batched paths are compared against.
pub fn batch_dispatch(
    opts: &HarnessOptions,
    distribution: DistributionKind,
) -> Vec<(StructureKind, usize, ExperimentRow)> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    let mut out = Vec::new();
    for structure in StructureKind::ALL {
        for &batch in &BATCH_SIZES {
            let mut results = Vec::new();
            for rep in 0..opts.repetitions() {
                let config = base_config(opts, structure)
                    .with_workers(workers)
                    .with_scheduler(SchedulerKind::AdaptiveKey)
                    .with_batch_size(batch)
                    .with_seed(0xba7c + rep as u64);
                results.push(Driver::new(config).run_dictionary(structure, distribution));
            }
            out.push((
                structure,
                batch,
                ExperimentRow::from_results(format!("batch={batch}"), workers, &results),
            ));
        }
    }
    out
}

/// Measurement windows per `drift_adaptation` run: enough slices that the
/// pre-shift, shifting, and post-shift phases each cover several windows.
pub const DRIFT_WINDOWS: usize = 6;

/// One row of the [`drift_adaptation`] comparison: a (structure, scheduler
/// mode) pair run under the phase-shift distribution.
#[derive(Debug, Clone)]
pub struct DriftRow {
    /// Dictionary structure under test.
    pub structure: StructureKind,
    /// `"one-shot"` (the paper's adapt-once protocol) or `"continuous"`
    /// (the epoch-based adaptation plane).
    pub mode: &'static str,
    /// Overall run result.
    pub result: RunResult,
    /// Per-window deltas (throughput and windowed contention ratio).
    pub windows: Vec<WindowReport>,
}

impl DriftRow {
    /// Mean throughput of the first third of the windows (pre-shift phase).
    pub fn pre_shift_throughput(&self) -> f64 {
        mean_throughput(&self.windows[..(self.windows.len() / 3).max(1)])
    }

    /// Mean throughput of the last third of the windows (post-shift phase —
    /// the number the continuous plane is supposed to defend).
    pub fn post_shift_throughput(&self) -> f64 {
        let tail = (self.windows.len() / 3).max(1);
        mean_throughput(&self.windows[self.windows.len() - tail..])
    }

    /// Partition recomputations over the whole run.
    pub fn repartitions(&self) -> u64 {
        self.result.repartitions
    }

    /// Max-over-mean per-worker completion imbalance over the whole run —
    /// the architecture-independent signal of the adaptation plane's value:
    /// a one-shot partition frozen on pre-shift traffic funnels the
    /// post-shift stream through one worker (imbalance → workers), while
    /// continuous adaptation re-balances it. (On few-core hosts the
    /// throughput columns understate the difference, since one core
    /// time-slices all workers anyway.)
    pub fn imbalance(&self) -> f64 {
        self.result.load.imbalance()
    }
}

fn mean_throughput(windows: &[WindowReport]) -> f64 {
    if windows.is_empty() {
        return 0.0;
    }
    windows.iter().map(|w| w.throughput).sum::<f64>() / windows.len() as f64
}

/// **Drift adaptation (extension)**: one-shot vs. continuous adaptation on
/// a mid-run phase shift, across all three structures. Both sides run the
/// adaptive scheduler on the [`DistributionKind::Phased`] workload (keys
/// concentrated at the low end of the space, jumping to the mirrored high
/// end after a fixed number of per-producer samples); only the continuous
/// side enables the epoch-based adaptation plane. The one-shot scheduler's
/// partition — computed on pre-shift traffic — routes the entire post-shift
/// stream to the last worker, while the continuous scheduler re-balances
/// within an epoch or two, which shows up as higher post-shift throughput.
pub fn drift_adaptation(opts: &HarnessOptions) -> Vec<DriftRow> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    // The shift point is in per-producer samples (the scheduler observes at
    // dispatch, so this is independent of how fast workers drain): early
    // enough that even the short smoke window crosses it, late enough that
    // the initial adaptation settles on pre-shift traffic first.
    let (threshold, shift_after) = if opts.quick {
        (1_000, 2_000)
    } else {
        (5_000, 20_000)
    };
    let distribution = DistributionKind::phased(shift_after);
    let mut rows = Vec::new();
    for structure in StructureKind::ALL {
        for continuous in [false, true] {
            let mut config = base_config(opts, structure)
                .with_workers(workers)
                .with_scheduler(SchedulerKind::AdaptiveKey)
                .with_sample_threshold(threshold)
                .with_seed(0xd1f7);
            if continuous {
                config = config
                    .with_adaptation_interval(threshold as u64)
                    .with_drift_threshold(0.2);
            }
            let (result, windows) =
                Driver::new(config).run_dictionary_windowed(structure, distribution, DRIFT_WINDOWS);
            rows.push(DriftRow {
                structure,
                mode: if continuous { "continuous" } else { "one-shot" },
                result,
                windows,
            });
        }
    }
    rows
}

/// Measurement windows per `elastic_scaling` run: three per load phase
/// (quiet → burst → quiet).
pub const ELASTIC_WINDOWS: usize = 9;

/// Quiet-phase arrival intensity of the elastic-scaling ramp.
pub const ELASTIC_QUIET_INTENSITY: f64 = 0.05;

/// One row of the [`elastic_scaling`] comparison: a (structure, pool mode)
/// pair run under the quiet → burst → quiet arrival ramp.
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// Dictionary structure under test.
    pub structure: StructureKind,
    /// `"fixed"` (always-max pool) or `"elastic"` (partition-coupled
    /// worker scaling).
    pub mode: &'static str,
    /// Overall run result.
    pub result: RunResult,
    /// Per-window deltas, including the active-worker trace.
    pub windows: Vec<WindowReport>,
}

impl ElasticRow {
    fn thirds(&self) -> usize {
        (self.windows.len() / 3).max(1)
    }

    /// Largest active worker count observed during the burst (middle
    /// third) — the capacity the elastic pool is expected to shed once the
    /// load drops.
    pub fn burst_workers(&self) -> usize {
        let third = self.thirds();
        self.windows[third..self.windows.len() - third]
            .iter()
            .map(|w| w.active_workers)
            .max()
            .unwrap_or(0)
    }

    /// Active workers at the end of the run, after the post-burst quiet
    /// phase.
    pub fn final_workers(&self) -> usize {
        self.windows.last().map_or(0, |w| w.active_workers)
    }

    /// Mean windowed throughput over the burst third.
    pub fn burst_throughput(&self) -> f64 {
        let third = self.thirds();
        mean_throughput(&self.windows[third..self.windows.len() - third])
    }

    /// Fraction of the burst-time workers shed by the end of the run.
    pub fn shed_fraction(&self) -> f64 {
        let burst = self.burst_workers();
        if burst == 0 {
            return 0.0;
        }
        1.0 - self.final_workers() as f64 / burst as f64
    }

    /// Pool resizes over the whole run.
    pub fn resizes(&self) -> u64 {
        self.result.resizes
    }
}

/// **Elastic scaling (extension)**: fixed always-max pool vs. elastic
/// partition-coupled pool under a quiet → burst → quiet arrival ramp,
/// across all three structures. Both sides run the adaptive scheduler with
/// the continuous adaptation plane and identical workloads; only the
/// elastic side may resize within `1..=max`. The interesting numbers are
/// the active-worker trace (the elastic pool should ride the ramp: shed in
/// the quiet phases, grow through the burst) and the burst throughput
/// (which should stay within noise of the always-max pool).
pub fn elastic_scaling(opts: &HarnessOptions) -> Vec<ElasticRow> {
    let max_workers = opts.worker_counts().into_iter().max().unwrap_or(4).max(4);
    // Epoch length and window floor sized so each quiet phase spans at
    // least two epochs (the confirmation hysteresis needs two) at the
    // throttled arrival rate.
    let (threshold, interval, floor_ms) = if opts.quick {
        (300usize, 300u64, 300u64)
    } else {
        (1_000, 600, 600)
    };
    let duration = opts.duration().max(Duration::from_millis(floor_ms));
    let ramp = ArrivalRamp::quiet_burst_quiet(ELASTIC_QUIET_INTENSITY);
    let mut rows = Vec::new();
    for structure in StructureKind::ALL {
        for elastic in [false, true] {
            let mut config = base_config(opts, structure)
                .with_duration(duration)
                .with_workers(max_workers)
                .with_scheduler(SchedulerKind::AdaptiveKey)
                .with_sample_threshold(threshold)
                .with_adaptation_interval(interval)
                .with_batch_size(16)
                // A tight depth bound keeps the burst backlog proportional
                // to what the workers can actually drain, so "the load
                // dropped" is visible to the pool shortly after the ramp
                // turns quiet even on the slow structures.
                .with_max_queue_depth(Some(512))
                .with_ramp(ramp.clone())
                .with_seed(0xe1a5);
            if elastic {
                config = config.with_elastic_workers(1, max_workers);
            }
            let (result, windows) = Driver::new(config).run_dictionary_windowed(
                structure,
                DistributionKind::Uniform,
                ELASTIC_WINDOWS,
            );
            rows.push(ElasticRow {
                structure,
                mode: if elastic { "elastic" } else { "fixed" },
                result,
                windows,
            });
        }
    }
    rows
}

/// Measurement windows per `cost_adaptation` run.
pub const COST_WINDOWS: usize = 6;

/// One row of the [`cost_adaptation`] comparison: a (structure, adaptation
/// mode, workload) triple.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Dictionary structure under test.
    pub structure: StructureKind,
    /// `"threshold"` (the drift/contention trigger plane) or `"cost-model"`
    /// (the predictive cost plane).
    pub mode: &'static str,
    /// `"phased"` (mid-run phase shift) or `"stationary"`.
    pub workload: &'static str,
    /// Overall run result (including the adaptation log).
    pub result: RunResult,
    /// Per-window deltas.
    pub windows: Vec<WindowReport>,
}

impl CostRow {
    /// Partition swaps beyond the initial adaptation.
    pub fn swaps(&self) -> u64 {
        self.result.repartitions.saturating_sub(1)
    }

    /// Cost-model swaps whose logged `predicted_gain` did **not** exceed
    /// their logged `swap_cost` — must be zero: the decision rule only
    /// adopts net-positive plans.
    pub fn unjustified_swaps(&self) -> usize {
        self.result
            .adaptations
            .iter()
            .filter(|event| {
                matches!(
                    event.cause,
                    katme::AdaptationCause::CostModel {
                        predicted_gain,
                        swap_cost,
                    } if predicted_gain <= swap_cost
                )
            })
            .count()
    }

    /// Mean throughput of the last third of the windows (post-shift phase).
    pub fn post_shift_throughput(&self) -> f64 {
        let tail = (self.windows.len() / 3).max(1);
        mean_throughput(&self.windows[self.windows.len() - tail..])
    }
}

/// **Cost adaptation (extension)**: threshold triggers vs. the predictive
/// cost plane, on the phased (mid-run shift) workload across all three
/// structures plus a stationary control on the hash table. Both sides run
/// the continuous adaptation plane with identical epochs; only the
/// cost-model side replaces the threshold triggers with per-epoch plan
/// scoring once its swap-cost calibration warms. Expected shape: the cost
/// plane performs no more swaps than the threshold plane on the shift (it
/// reacts in one epoch instead of the threshold plane's two, and its
/// trust/margin feedback replaces the two-epoch confirmation), every
/// cost-model swap's logged `predicted_gain` exceeds its `swap_cost`, and
/// the stationary control performs zero swaps.
pub fn cost_adaptation(opts: &HarnessOptions) -> Vec<CostRow> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    let (threshold, shift_after) = if opts.quick {
        (1_000, 2_000)
    } else {
        (5_000, 20_000)
    };
    let run = |structure: StructureKind,
               cost_model: bool,
               distribution: DistributionKind,
               workload: &'static str| {
        let mut config = base_config(opts, structure)
            .with_workers(workers)
            // One producer gives both modes the *same, clean* phase shift to
            // respond to. With several back-pressure-serialized producers
            // the observed mixture wanders for most of the window (each
            // producer crosses its shift point at its own pace), which is a
            // fine stress for the drift_adaptation experiment but makes the
            // swap-count comparison measure the workload's messiness rather
            // than the decision policies.
            .with_producers(1)
            .with_scheduler(SchedulerKind::AdaptiveKey)
            .with_sample_threshold(threshold)
            .with_adaptation_interval(threshold as u64)
            .with_drift_threshold(0.2)
            .with_seed(0xc057);
        if cost_model {
            config = config.with_cost_model(true);
        }
        let (result, windows) =
            Driver::new(config).run_dictionary_windowed(structure, distribution, COST_WINDOWS);
        CostRow {
            structure,
            mode: if cost_model {
                "cost-model"
            } else {
                "threshold"
            },
            workload,
            result,
            windows,
        }
    };
    let mut rows = Vec::new();
    for structure in StructureKind::ALL {
        for cost_model in [false, true] {
            rows.push(run(
                structure,
                cost_model,
                DistributionKind::phased(shift_after),
                "phased",
            ));
        }
    }
    // Stationary control: the cost plane must not spend a single swap.
    for cost_model in [false, true] {
        rows.push(run(
            StructureKind::HashTable,
            cost_model,
            DistributionKind::exponential_paper(),
            "stationary",
        ));
    }
    rows
}

/// One row of the durability experiment: the same workload on the same
/// structure, volatile vs. through the group-commit WAL.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Dictionary structure under test.
    pub structure: StructureKind,
    /// The baseline run (no WAL).
    pub volatile: RunResult,
    /// The durable run: every insert/delete logged, commits acknowledged
    /// after their group's fsync, dictionary checkpointed in the
    /// background.
    pub durable: RunResult,
}

impl DurabilityRow {
    /// Durable throughput as a fraction of volatile throughput (the price
    /// of durability; 1.0 = free).
    pub fn throughput_ratio(&self) -> f64 {
        if self.volatile.throughput <= 0.0 {
            0.0
        } else {
            self.durable.throughput / self.volatile.throughput
        }
    }

    /// Physical fsyncs per logged commit in the durable run — group commit
    /// keeps this *below 1.0* under concurrent load.
    pub fn fsyncs_per_commit(&self) -> f64 {
        self.durable.fsyncs_per_commit()
    }

    /// Mean records batched into one append+fsync group.
    pub fn mean_group_size(&self) -> f64 {
        self.durable
            .durability
            .map_or(0.0, |view| view.mean_group_size)
    }

    /// Checkpoints the background checkpointer completed during the run.
    pub fn checkpoints(&self) -> u64 {
        self.durable.durability.map_or(0, |view| view.checkpoints)
    }
}

/// **Durability (extension)**: durable vs. volatile throughput side by
/// side, per structure. The durable side routes every writing commit
/// through the group-commit WAL (one dedicated log-writer thread batches
/// concurrent commits into one append + one fsync; each commit blocks only
/// until its group is on disk) and checkpoints the dictionary in the
/// background. Expected shape: fsyncs-per-commit well below 1.0 (the group
/// commit amortization), mean group sizes above 1, and durable throughput
/// a modest fraction of volatile — the cost of never losing an
/// acknowledged commit.
pub fn durability(opts: &HarnessOptions) -> Vec<DurabilityRow> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    StructureKind::ALL
        .into_iter()
        .map(|structure| {
            let config = base_config(opts, structure)
                .with_workers(workers)
                .with_scheduler(SchedulerKind::AdaptiveKey)
                .with_seed(0xd07a);
            let volatile =
                Driver::new(config.clone()).run_dictionary(structure, DistributionKind::Uniform);
            let dir = std::env::temp_dir().join(format!(
                "katme-durability-{}-{}",
                std::process::id(),
                structure.name()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let durable = Driver::new(config.with_durability(&dir))
                .run_dictionary_durable(structure, DistributionKind::Uniform);
            let _ = std::fs::remove_dir_all(&dir);
            DurabilityRow {
                structure,
                volatile,
                durable,
            }
        })
        .collect()
}

/// Zipf skew exponents swept by [`hot_key`]: mild, the classic ~1, and
/// heavily concentrated.
pub const HOT_KEY_SKEWS: [f64; 3] = [0.6, 0.99, 1.2];

/// Accounts in the [`hot_key`] transfer array — the 16-bit dictionary key
/// space, so the Zipf head sits at the low end of the key range.
const HOT_KEY_ACCOUNTS: usize = 1 << 16;

/// Tasks per submitted batch in [`hot_key`] — the MV block granularity.
const HOT_KEY_BATCH: usize = 32;

/// One row of the [`hot_key`] comparison: a (distribution, lane mode) pair
/// on the write-heavy transfer workload.
#[derive(Debug, Clone)]
pub struct HotKeyRow {
    /// Key distribution of this row (Zipfian at one of
    /// [`HOT_KEY_SKEWS`], or the uniform control).
    pub distribution: DistributionKind,
    /// `"single-version"` (the baseline abort-and-retry STM) or
    /// `"mv-lane"` (the multi-version optimistic lane enabled, ranges
    /// designated by the adaptive lane controller).
    pub mode: &'static str,
    /// Mean committed STM transactions per second across repetitions.
    pub commits_per_sec: f64,
    /// Mean completed tasks per second across repetitions.
    pub throughput: f64,
    /// Mean aborted attempts per committed transaction.
    pub aborts_per_commit: f64,
    /// Mean MV re-executions per committed transaction — counted against
    /// *all* commits, the same denominator as the abort ratio, so the two
    /// waste currencies compare directly.
    pub reexec_per_commit: f64,
    /// Mean fraction of commits that went through the MV lane.
    pub mv_residency: f64,
    /// MV-designated ranges at the end of the last repetition.
    pub lane_ranges: Vec<(u64, u64)>,
    /// Lane designations plus undesignations in the last repetition.
    pub lane_flips: u64,
    /// Per-bucket key-range telemetry at the end of the last repetition
    /// (present whenever the adaptation plane ran).
    pub key_ranges: Option<KeyRangeSnapshot>,
    /// Completed tasks in the last repetition.
    pub completed: u64,
}

impl HotKeyRow {
    /// Wasted work per commit, whichever lane paid it: aborted attempts
    /// plus MV re-executions per committed transaction. The comparable
    /// currency across the two modes.
    pub fn wasted_per_commit(&self) -> f64 {
        self.aborts_per_commit + self.reexec_per_commit
    }

    /// MV-designated ranges at the end of the last repetition.
    pub fn lane_ranges(&self) -> &[(u64, u64)] {
        &self.lane_ranges
    }
}

/// One repetition's measurements, before averaging into a [`HotKeyRow`].
struct HotKeyMeasurement {
    commits_per_sec: f64,
    throughput: f64,
    aborts_per_commit: f64,
    reexec_per_commit: f64,
    mv_residency: f64,
    lane_ranges: Vec<(u64, u64)>,
    lane_flips: u64,
    key_ranges: Option<KeyRangeSnapshot>,
    completed: u64,
}

/// Deliberate in-transaction work: a short keyed hash chain between the
/// reads and the writes of each transfer. It widens the read-to-commit
/// window so concurrently scheduled hot-key transactions actually overlap
/// in time — with microsecond transactions, conflicts would otherwise
/// require an OS preemption in exactly the wrong place, which (especially
/// on few cores) almost never happens and the experiment would measure
/// nothing. Real contended transactions are long for the same reason:
/// they compute something between reading and writing.
fn conflict_window(seed: u64, spins: u32) -> u64 {
    let mut x = seed | 1;
    for _ in 0..spins / 2 {
        x = std::hint::black_box(x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7));
    }
    // One scheduler yield mid-transaction: on machines with fewer cores
    // than runnable threads, this is what actually lets concurrently
    // scheduled transactions interleave (a pure spin just runs to
    // completion inside one timeslice and conflicts with nobody).
    std::thread::yield_now();
    for _ in 0..spins / 2 {
        x = std::hint::black_box(x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7));
    }
    x
}

/// One repetition of the [`hot_key`] transfer workload: `producers`
/// threads each submit batches of [`HOT_KEY_BATCH`] two-account transfer
/// tasks with both endpoints drawn from `distribution`, scheduled on the
/// lower endpoint (the one most likely contended — the Zipf head is at the
/// low keys). The second endpoint is what defeats key partitioning: the
/// adaptive scheduler serializes same-key tasks on one worker, but the
/// other endpoint's writes land on accounts owned by other workers'
/// partitions, so hot accounts still see concurrent conflicting writers —
/// the irreducible contention the MV lane exists for.
fn run_hot_key(
    opts: &HarnessOptions,
    distribution: DistributionKind,
    mv: bool,
    workers: usize,
    threshold: usize,
    spins: u32,
    seed: u64,
) -> HotKeyMeasurement {
    let producers = opts.producers.unwrap_or(4);
    let accounts: Arc<Vec<TVar<u64>>> = Arc::new(
        (0..HOT_KEY_ACCOUNTS)
            .map(|_| TVar::new(1_000_000_u64))
            .collect(),
    );
    let stm = Stm::new(StmConfig::default());
    let handler_stm = stm.clone();
    let handler_accounts = Arc::clone(&accounts);
    let mut builder = Katme::builder()
        .workers(workers)
        .producers(producers)
        .scheduler(SchedulerKind::AdaptiveKey)
        .key_range(0, (HOT_KEY_ACCOUNTS - 1) as u64)
        .stm(stm.clone())
        .sample_threshold(threshold)
        .adaptation_interval(threshold as u64)
        .work_stealing(true)
        .batch_size(HOT_KEY_BATCH)
        .drain_on_shutdown(false);
    if mv {
        // First-pass parallelism 1: the in-order pass reads every
        // predecessor's write through the multi-version memory, so the
        // validation sweep finds nothing to repair and re-executions come
        // only from external (publish-retry) invalidations. Speculative
        // first-pass parallelism pays misspeculation re-executions for a
        // wall-clock win that only exists with spare cores.
        builder = builder.mv_lane(true).mv_parallelism(1);
    }
    let runtime = builder
        .build(move |_worker, task: WithKey<(u32, u32)>| {
            let (debit, credit) = task.task;
            handler_stm.atomically(|tx| {
                let from = *tx.read(&handler_accounts[debit as usize])?;
                let to = *tx.read(&handler_accounts[credit as usize])?;
                let moved = 1 + (conflict_window(from ^ to, spins) & 1);
                tx.write(&handler_accounts[debit as usize], from.wrapping_sub(moved))?;
                tx.write(&handler_accounts[credit as usize], to.wrapping_add(moved))
            });
        })
        .expect("hot_key runtime configuration is valid");

    let stop = AtomicBool::new(false);
    let mut stats_pair = None;
    std::thread::scope(|scope| {
        for producer in 0..producers {
            let stop = &stop;
            let runtime = &runtime;
            let mut sampler =
                KeyDistribution::new(distribution, seed ^ (0x9E37 * (producer as u64 + 1)));
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<WithKey<(u32, u32)>> = (0..HOT_KEY_BATCH)
                        .map(|_| {
                            let debit = sampler.sample_key();
                            let credit = sampler.sample_key();
                            // Schedule on the *lower* endpoint: the Zipf head
                            // sits at the low keys, so min(debit, credit) is
                            // the endpoint most likely to be contended — and a
                            // transaction not keyed inside a designated range
                            // provably touches no account in it (its minimum
                            // is above the range), so a designated range
                            // captures every writer of its keys.
                            let key = debit.min(credit);
                            WithKey::new(u64::from(key), (debit, credit))
                        })
                        .collect();
                    if runtime.submit_batch_detached(batch).is_err() {
                        break;
                    }
                }
            });
        }
        // The first half of the window is warm-up: the lane controller
        // needs a few telemetry epochs of abort mass before it designates,
        // so measuring from cold would average the (identical) ramp into
        // both modes and dilute the steady state being compared. Both
        // modes discard the same warm-up.
        let half = opts.duration() / 2;
        std::thread::sleep(half);
        let warm = runtime.stats();
        std::thread::sleep(half);
        stats_pair = Some((warm, runtime.stats()));
        stop.store(true, Ordering::Relaxed);
    });
    let (warm, end) = stats_pair.expect("stats captured inside the scope");
    let window = end.since(&warm);
    let elapsed = window.duration.as_secs_f64().max(f64::EPSILON);
    runtime.shutdown();
    HotKeyMeasurement {
        commits_per_sec: window.stm.commits as f64 / elapsed,
        throughput: window.throughput(),
        aborts_per_commit: window.contention_ratio(),
        // Per *total* commit, like the abort ratio above — the system-wide
        // wasted-executions currency the two modes are compared in (the
        // per-MV-commit intensity is [`StatsView::mv_reexec_per_commit`]).
        reexec_per_commit: window.stm.mv_reexecutions as f64 / window.stm.commits.max(1) as f64,
        mv_residency: window.stm.mv_residency(),
        lane_ranges: end.lane_ranges.clone(),
        lane_flips: end.lane_flips,
        key_ranges: end.key_ranges.clone(),
        completed: window.completed,
    }
}

/// **Hot-key lane (extension)**: single-version vs. the multi-version
/// optimistic lane on a write-heavy Zipfian transfer workload — each
/// transaction reads two accounts, computes, and writes both, scheduled on
/// the smaller of the two account ids. Key partitioning cannot serialize
/// the second account's writes, so hot accounts abort concurrent readers,
/// and the telemetry attributes each abort to the aborted transaction's
/// own (Zipf-distributed) key — abort mass that concentrates on the Zipf
/// head, which is exactly what the lane controller prices. Expected shape:
/// at skew ≥ 0.99 the MV side designates the hot range (residency > 0) and
/// converts aborts into strictly fewer re-executions at equal-or-better
/// commit throughput; on the uniform control the lane stays cold (no
/// designation, parity throughput).
pub fn hot_key(opts: &HarnessOptions) -> Vec<HotKeyRow> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4).max(2);
    let threshold = if opts.quick { 500 } else { 2_000 };
    let spins = if opts.quick { 200 } else { 4_000 };
    let distributions: Vec<DistributionKind> = HOT_KEY_SKEWS
        .iter()
        .map(|&skew| DistributionKind::Zipfian { skew })
        .chain([DistributionKind::Uniform])
        .collect();
    let mut rows = Vec::new();
    for distribution in distributions {
        for mv in [false, true] {
            let mut results = Vec::new();
            for rep in 0..opts.repetitions() {
                results.push(run_hot_key(
                    opts,
                    distribution,
                    mv,
                    workers,
                    threshold,
                    spins,
                    0x407e + rep as u64,
                ));
            }
            let n = results.len().max(1) as f64;
            let mean =
                |f: &dyn Fn(&HotKeyMeasurement) -> f64| results.iter().map(f).sum::<f64>() / n;
            let commits_per_sec = mean(&|m: &HotKeyMeasurement| m.commits_per_sec);
            let throughput = mean(&|m: &HotKeyMeasurement| m.throughput);
            let aborts_per_commit = mean(&|m: &HotKeyMeasurement| m.aborts_per_commit);
            let reexec_per_commit = mean(&|m: &HotKeyMeasurement| m.reexec_per_commit);
            let mv_residency = mean(&|m: &HotKeyMeasurement| m.mv_residency);
            let last = results.pop().expect("at least one repetition");
            rows.push(HotKeyRow {
                distribution,
                mode: if mv { "mv-lane" } else { "single-version" },
                commits_per_sec,
                throughput,
                aborts_per_commit,
                reexec_per_commit,
                mv_residency,
                lane_ranges: last.lane_ranges,
                lane_flips: last.lane_flips,
                key_ranges: last.key_ranges,
                completed: last.completed,
            });
        }
    }
    rows
}

/// Ablation: executor models of Figure 1 (no executor / centralized /
/// parallel) on the hash table with the adaptive scheduler.
pub fn executor_models(opts: &HarnessOptions) -> Vec<(ExecutorModel, f64)> {
    let workers = opts.worker_counts().into_iter().max().unwrap_or(4);
    ExecutorModel::ALL
        .into_iter()
        .map(|model| {
            let config = base_config(opts, StructureKind::HashTable)
                .with_workers(workers)
                .with_model(model)
                .with_scheduler(SchedulerKind::AdaptiveKey);
            let result = Driver::new(config)
                .run_dictionary(StructureKind::HashTable, DistributionKind::Uniform);
            (model, result.throughput)
        })
        .collect()
}

/// Transactional variables each commit-path worker owns (disjoint across
/// workers, so commits never conflict and the measured cost is pure
/// commit-path bookkeeping: clock traffic, stats counters, registry).
const COMMIT_PATH_VARS_PER_THREAD: usize = 64;

/// One data point of the commit-path microbench.
#[derive(Debug, Clone)]
pub struct CommitPathRow {
    /// Configuration under test ("gv1-ticked + shared", ...).
    pub series: String,
    /// Clock discipline of this series.
    pub clock_mode: ClockMode,
    /// Stats-counter stripes requested (1 = shared baseline, 0 = default
    /// striping).
    pub stats_stripes: usize,
    /// Whether the workload is the read-only fast path.
    pub read_only: bool,
    /// Concurrent committing threads.
    pub threads: usize,
    /// Mean committed transactions per second across all threads.
    pub commits_per_sec: f64,
    /// Scaling efficiency vs. this series' single-thread point
    /// (`throughput / (threads * single_thread_throughput)`).
    pub efficiency: f64,
    /// Global-clock advances per commit: ~1 for GV1 writers (one
    /// `fetch_add` each), ~0 for GV5-lazy disjoint commits and for
    /// read-only commits. Measured from the process-wide clock, so
    /// concurrent STM activity elsewhere in the process inflates it.
    pub clock_advances_per_commit: f64,
    /// Commits counted by the worker loops (mean per repetition).
    pub commits: u64,
    /// Commits the (possibly striped) stats block reported — must equal
    /// [`CommitPathRow::commits`]: striping may not lose updates.
    pub recorded_commits: u64,
}

struct CommitPathMeasurement {
    commits: u64,
    recorded_commits: u64,
    clock_advances: u64,
    window: Duration,
}

fn measure_commit_path(
    mode: ClockMode,
    stripes: usize,
    read_only: bool,
    threads: usize,
    window: Duration,
) -> CommitPathMeasurement {
    let stm = Stm::new(
        StmConfig::default()
            .with_clock_mode(mode)
            .with_stats_stripes(stripes),
    );
    let vars: Vec<Vec<TVar<u64>>> = (0..threads)
        .map(|_| {
            (0..COMMIT_PATH_VARS_PER_THREAD)
                .map(|_| TVar::new(0))
                .collect()
        })
        .collect();
    let barrier = std::sync::Barrier::new(threads + 1);
    let clock_start = std::sync::atomic::AtomicU64::new(0);

    let commits: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = vars
            .iter()
            .map(|mine| {
                let stm = stm.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let deadline = std::time::Instant::now() + window;
                    let mut committed = 0u64;
                    let mut i = 0usize;
                    while std::time::Instant::now() < deadline {
                        let var = &mine[i % COMMIT_PATH_VARS_PER_THREAD];
                        if read_only {
                            let other = &mine[(i + 1) % COMMIT_PATH_VARS_PER_THREAD];
                            stm.atomically(|tx| Ok(*tx.read(var)? + *tx.read(other)?));
                        } else {
                            stm.atomically(|tx| {
                                let v = *tx.read(var)?;
                                tx.write(var, v + 1)
                            });
                        }
                        committed += 1;
                        i += 1;
                    }
                    committed
                })
            })
            .collect();
        clock_start.store(
            katme_stm::clock::now(),
            std::sync::atomic::Ordering::Relaxed,
        );
        barrier.wait();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let clock_advances =
        katme_stm::clock::now() - clock_start.load(std::sync::atomic::Ordering::Relaxed);
    let snapshot = stm.stats().snapshot();
    CommitPathMeasurement {
        commits,
        recorded_commits: snapshot.commits,
        clock_advances,
        window,
    }
}

/// Thread counts for the commit-path sweep: the usual worker sweep, but
/// always anchored at 1 thread so scaling efficiency has its baseline.
fn commit_path_thread_counts(opts: &HarnessOptions) -> Vec<usize> {
    let mut counts = opts.worker_counts();
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    counts
}

/// **Commit-path microbench (extension)**: isolates commit-path cost from
/// structure and executor cost. Tiny read-write transactions over fully
/// disjoint per-thread key sets sweep 1..=N threads for every combination
/// of clock discipline (GV1 ticked vs. GV5 lazy) and stats-counter layout
/// (shared single stripe vs. cache-line-padded per-thread stripes), plus a
/// read-only series exercising the read-only fast path. Disjoint writers
/// never conflict, so any scaling loss is pure commit-path bookkeeping:
/// the clock `fetch_add`, the stats counters, the registry. Expected
/// shape: the lazy clock performs ~0 clock advances per commit (vs. ~1 for
/// GV1) and, on multi-core hosts, the lazy + striped series scales closest
/// to linearly.
pub fn commit_path(opts: &HarnessOptions) -> Vec<CommitPathRow> {
    let series: [(&str, ClockMode, usize, bool); 6] = [
        ("gv1-ticked + shared", ClockMode::Ticked, 1, false),
        ("gv1-ticked + striped", ClockMode::Ticked, 0, false),
        ("gv5-lazy + shared", ClockMode::Lazy, 1, false),
        ("gv5-lazy + striped", ClockMode::Lazy, 0, false),
        ("read-only + shared", ClockMode::Lazy, 1, true),
        ("read-only + striped", ClockMode::Lazy, 0, true),
    ];
    let mut rows = Vec::new();
    for (name, mode, stripes, read_only) in series {
        let mut single_thread: Option<f64> = None;
        for threads in commit_path_thread_counts(opts) {
            let reps = opts.repetitions();
            let mut commits = 0u64;
            let mut recorded = 0u64;
            let mut advances = 0u64;
            let mut seconds = 0.0;
            for _ in 0..reps {
                let m = measure_commit_path(mode, stripes, read_only, threads, opts.duration());
                commits += m.commits;
                recorded += m.recorded_commits;
                advances += m.clock_advances;
                seconds += m.window.as_secs_f64();
            }
            let commits_per_sec = commits as f64 / seconds.max(f64::EPSILON);
            let base = *single_thread.get_or_insert(commits_per_sec);
            rows.push(CommitPathRow {
                series: name.to_string(),
                clock_mode: mode,
                stats_stripes: stripes,
                read_only,
                threads,
                commits_per_sec,
                efficiency: commits_per_sec / (threads as f64 * base).max(f64::EPSILON),
                clock_advances_per_commit: advances as f64 / (commits as f64).max(1.0),
                commits: commits / reps as u64,
                recorded_commits: recorded / reps as u64,
            });
        }
    }
    rows
}

/// One row of the allocation profile: steady-state allocator traffic per
/// committed transaction for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocRow {
    /// Workload name (`read-only`, `read-write`, `mv-lane`, `durable`).
    pub workload: &'static str,
    /// Committed transactions inside the measured window.
    pub commits: u64,
    /// Heap allocations per committed transaction (allocator *traffic*:
    /// `alloc` + `alloc_zeroed` + `realloc` calls; frees not subtracted).
    pub allocs_per_commit: f64,
    /// Bytes requested from the allocator per committed transaction.
    pub bytes_per_commit: f64,
}

/// Steady-state allocation budgets the CI gate asserts (allocs/commit
/// ceilings per workload, with headroom over the measured numbers in
/// README.md so scheduler jitter does not flake the gate). A PR that pushes
/// a workload back above its ceiling fails `alloc_profile --smoke`.
pub const ALLOC_BUDGETS: [(&str, f64); 4] = [
    ("read-only", 0.15),
    ("read-write", 1.2),
    ("mv-lane", 2.0),
    ("durable", 3.0),
];

/// Workers used by the allocation profile (two: enough to exercise the
/// cross-thread dispatch path without making the wait loops spin on an
/// oversubscribed host).
const ALLOC_WORKERS: usize = 2;
/// Submission batch size used by the allocation profile.
const ALLOC_BATCH: usize = 64;

/// **Allocation profile (extension)**: counts steady-state heap allocations
/// per committed transaction on the submit→execute→commit path, per
/// workload — the allocator-traffic companion to [`commit_path`]'s cycle
/// counts. Requires the counting allocator shim
/// ([`crate::install_counting_allocator!`]); returns `None` when the
/// calling binary did not install it, so callers can say "profile
/// unavailable" instead of printing zeros.
///
/// Methodology: a fixed-size warm phase fills the queues, thread-local
/// scratch pools and buffer pools; counters are then read around a
/// fixed-count measured phase that ends only after every submitted
/// transaction has committed. Counts, seeds and preload are deterministic,
/// so the numbers are comparable across runs and hosts (unlike
/// throughput). The hash-table dictionary is preloaded with every even key
/// — exactly half the 16-bit key space — so the paper's 50/50
/// insert/delete stream runs at its stable load factor from the first
/// measured operation.
pub fn alloc_profile(opts: &HarnessOptions) -> Option<Vec<AllocRow>> {
    if !crate::alloc_count::counting() {
        return None;
    }
    let (warm, measured) = if opts.quick {
        (4_000u64, 16_000u64)
    } else {
        (20_000u64, 80_000u64)
    };
    Some(vec![
        alloc_case_volatile("read-only", read_only_generator(), false, warm, measured),
        alloc_case_volatile("read-write", paper_generator(), false, warm, measured),
        alloc_case_volatile("mv-lane", paper_generator(), true, warm, measured),
        alloc_case_durable(warm, measured),
    ])
}

fn paper_generator() -> katme_workload::OpGenerator {
    katme_workload::OpGenerator::paper(DistributionKind::Uniform, 0xa110c)
}

fn read_only_generator() -> katme_workload::OpGenerator {
    katme_workload::OpGenerator::with_mix(
        DistributionKind::Uniform,
        katme_workload::OpMix::new(0.0, 0.0, 1.0),
        0xa110c,
    )
}

fn alloc_dict(stm: &Stm) -> Arc<dyn katme_collections::TxDictionary> {
    let dict = StructureKind::HashTable.build(stm.clone());
    for key in (0..(1u32 << 16)).step_by(2) {
        dict.insert(key, u64::from(key));
    }
    dict
}

fn alloc_builder(stm: Stm) -> katme::Builder {
    Katme::builder()
        .workers(ALLOC_WORKERS)
        .producers(1)
        .model(ExecutorModel::Parallel)
        .batch_size(ALLOC_BATCH)
        .key_bounds(katme::KeyMapper::<katme_workload::TxnSpec>::bounds(
            &katme::BucketKeyMapper::paper(),
        ))
        .stm(stm)
}

fn alloc_case_volatile(
    workload: &'static str,
    gen: katme_workload::OpGenerator,
    mv: bool,
    warm: u64,
    measured: u64,
) -> AllocRow {
    let stm = Stm::new(StmConfig::default());
    let dict = alloc_dict(&stm);
    let bounds =
        katme::KeyMapper::<katme_workload::TxnSpec>::bounds(&katme::BucketKeyMapper::paper());
    let mut builder = alloc_builder(stm);
    if mv {
        // Pin the whole bucket range to the MV lane so every batch takes
        // the optimistic-block path.
        builder = builder
            .mv_range(bounds.min, bounds.max)
            .mv_parallelism(ALLOC_WORKERS);
    }
    let dict_for_workers = Arc::clone(&dict);
    let runtime = builder
        .build(move |_worker, task: WithKey<katme_workload::TxnSpec>| {
            katme::apply_spec(&*dict_for_workers, &task.task);
        })
        .expect("alloc profile builds a valid runtime");
    let mapper = katme::BucketKeyMapper::paper();
    let row = alloc_measure(
        workload,
        &runtime,
        gen,
        move |spec| WithKey::new(katme::KeyMapper::key(&mapper, &spec), spec),
        warm,
        measured,
    );
    runtime.shutdown();
    row
}

fn alloc_case_durable(warm: u64, measured: u64) -> AllocRow {
    let dir = std::env::temp_dir().join(format!("katme-alloc-profile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let stm = Stm::new(StmConfig::default());
    let dict = alloc_dict(&stm);
    let dict_for_workers = Arc::clone(&dict);
    let runtime = alloc_builder(stm)
        .durability(&dir)
        .durable_state(Arc::new(katme::DictState::new(Arc::clone(&dict))))
        // Keep the background checkpointer out of the measured window: a
        // checkpoint snapshots every bucket, which is amortized cost the
        // durability experiment covers — here it would smear one-off
        // allocation spikes over a fixed-count window.
        .checkpoint_interval(Duration::from_secs(3600))
        .build(
            move |_worker, task: katme::Durable<WithKey<katme_workload::TxnSpec>>| {
                katme::apply_spec(&*dict_for_workers, &task.task.task);
            },
        )
        .expect("alloc profile builds a valid durable runtime");
    let mapper = katme::BucketKeyMapper::paper();
    let row = alloc_measure(
        "durable",
        &runtime,
        paper_generator(),
        move |spec| {
            let payload = katme::spec_payload(&spec);
            katme::Durable::new(
                WithKey::new(katme::KeyMapper::key(&mapper, &spec), spec),
                payload,
            )
        },
        warm,
        measured,
    );
    runtime.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    row
}

fn alloc_measure<T, R>(
    workload: &'static str,
    runtime: &katme::Runtime<T, R>,
    mut gen: katme_workload::OpGenerator,
    mut make: impl FnMut(katme_workload::TxnSpec) -> T,
    warm: u64,
    measured: u64,
) -> AllocRow
where
    T: katme::KeyedTask + Clone + Send + 'static,
    R: Send + 'static,
{
    let mut specs: Vec<katme_workload::TxnSpec> = Vec::new();
    let mut tasks: Vec<T> = Vec::with_capacity(ALLOC_BATCH);
    let mut submitted = 0u64;
    let mut submit_upto =
        |target: u64,
         submitted: &mut u64,
         gen: &mut katme_workload::OpGenerator,
         specs: &mut Vec<katme_workload::TxnSpec>,
         make: &mut dyn FnMut(katme_workload::TxnSpec) -> T| {
            while *submitted < target {
                let n = ALLOC_BATCH.min((target - *submitted) as usize);
                gen.batch_into(specs, n);
                tasks.extend(specs.drain(..).map(&mut *make));
                let accepted = runtime
                    .submit_batch_detached_reusing(&mut tasks)
                    .expect("alloc profile batch accepted");
                *submitted += accepted as u64;
            }
            // The wait loop is allocation-free (`Runtime::completed` reads
            // counters), so spinning here cannot pollute the measurement.
            while runtime.completed() < target {
                std::thread::yield_now();
            }
        };
    submit_upto(warm, &mut submitted, &mut gen, &mut specs, &mut make);
    let (allocs_before, bytes_before) = crate::alloc_count::snapshot();
    submit_upto(
        warm + measured,
        &mut submitted,
        &mut gen,
        &mut specs,
        &mut make,
    );
    let (allocs_after, bytes_after) = crate::alloc_count::snapshot();
    AllocRow {
        workload,
        commits: measured,
        allocs_per_commit: (allocs_after - allocs_before) as f64 / measured as f64,
        bytes_per_commit: (bytes_after - bytes_before) as f64 / measured as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessOptions {
        HarnessOptions {
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn fig3_produces_rows_for_every_combination() {
        let panels = fig3_hashtable(&quick());
        assert_eq!(panels.len(), 3, "one panel per distribution");
        for (dist, rows) in &panels {
            // 2 worker counts (quick mode) x 3 schedulers.
            assert_eq!(rows.len(), 6, "{dist}: {rows:?}");
            assert!(rows.iter().all(|r| r.completed > 0), "{dist}: {rows:?}");
        }
    }

    #[test]
    fn fig4_produces_both_series() {
        let rows = fig4_overhead(&quick());
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.no_executor > 0.0);
            assert!(row.executor > 0.0);
            assert!(row.overhead_factor().is_finite());
        }
    }

    #[test]
    fn balance_table_reports_all_schedulers() {
        let rows = balance_table(
            &quick(),
            StructureKind::HashTable,
            DistributionKind::Uniform,
        );
        assert_eq!(rows.len(), 3);
        for (_, per_worker, imbalance) in rows {
            assert_eq!(per_worker.len(), 2);
            assert!(imbalance >= 1.0);
        }
    }

    #[test]
    fn contention_table_covers_structures_and_schedulers() {
        let rows = contention_table(&quick(), DistributionKind::Uniform);
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|(_, _, ratio)| *ratio >= 0.0));
    }

    #[test]
    fn batch_dispatch_covers_structures_and_batch_sizes() {
        let rows = batch_dispatch(&quick(), DistributionKind::Uniform);
        assert_eq!(rows.len(), 3 * BATCH_SIZES.len());
        assert!(rows.iter().all(|(_, _, row)| row.completed > 0));
        assert!(
            rows.iter().any(|(_, batch, _)| *batch == 1),
            "must include the per-task baseline"
        );
    }

    #[test]
    fn drift_adaptation_covers_structures_and_both_modes() {
        let rows = drift_adaptation(&quick());
        assert_eq!(rows.len(), 3 * 2, "3 structures x (one-shot, continuous)");
        for row in &rows {
            assert_eq!(row.windows.len(), DRIFT_WINDOWS);
            assert!(row.result.completed > 0, "{row:?}");
            assert!(
                row.repartitions() >= 1,
                "the adaptive scheduler must at least perform its initial \
                 adaptation: {row:?}"
            );
        }
        assert!(rows.iter().any(|r| r.mode == "one-shot"));
        assert!(rows.iter().any(|r| r.mode == "continuous"));
    }

    #[test]
    fn elastic_scaling_covers_structures_and_both_modes() {
        let rows = elastic_scaling(&quick());
        assert_eq!(rows.len(), 3 * 2, "3 structures x (fixed, elastic)");
        for row in &rows {
            assert_eq!(row.windows.len(), ELASTIC_WINDOWS);
            assert!(row.result.completed > 0, "{row:?}");
            if row.mode == "fixed" {
                assert_eq!(row.resizes(), 0, "fixed pools must not resize: {row:?}");
                assert!(
                    row.windows
                        .iter()
                        .all(|w| w.active_workers == row.result.workers),
                    "{row:?}"
                );
            }
        }
        assert!(rows.iter().any(|r| r.mode == "fixed"));
        assert!(rows.iter().any(|r| r.mode == "elastic"));
    }

    #[test]
    fn cost_adaptation_covers_modes_and_keeps_swaps_justified() {
        let rows = cost_adaptation(&quick());
        assert_eq!(
            rows.len(),
            3 * 2 + 2,
            "3 phased structures x 2 modes + stationary control x 2 modes"
        );
        for row in &rows {
            assert_eq!(row.windows.len(), COST_WINDOWS);
            assert!(row.result.completed > 0, "{row:?}");
            assert_eq!(
                row.unjustified_swaps(),
                0,
                "every cost-model swap must log predicted_gain > swap_cost: {:?}",
                row.result.adaptations
            );
            assert!(
                row.result.repartitions >= 1,
                "the initial adaptation must always land: {row:?}"
            );
        }
        let stationary_cost = rows
            .iter()
            .find(|r| r.workload == "stationary" && r.mode == "cost-model")
            .expect("stationary control present");
        assert_eq!(
            stationary_cost.swaps(),
            0,
            "the cost plane must not spend a swap on stationary load: {:?}",
            stationary_cost.result.adaptations
        );
        // On the clean phased shift the cost plane must not out-churn the
        // threshold plane (a single justified swap when the threshold plane
        // missed its confirmation window inside the tiny smoke run is not
        // churn, hence the max(1)).
        for structure in StructureKind::ALL {
            let of = |mode: &str| {
                rows.iter()
                    .find(|r| r.structure == structure && r.workload == "phased" && r.mode == mode)
                    .expect("phased rows cover every structure and mode")
            };
            let (threshold, cost) = (of("threshold"), of("cost-model"));
            assert!(
                cost.swaps() <= threshold.swaps().max(1),
                "{structure:?}: cost-model churned ({} swaps vs threshold's {}): {:?}",
                cost.swaps(),
                threshold.swaps(),
                cost.result.adaptations
            );
        }
    }

    #[test]
    fn executor_models_compare_all_three() {
        let rows = executor_models(&quick());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, tput)| *tput > 0.0));
    }

    #[test]
    fn commit_path_covers_every_series_and_counts_faithfully() {
        let rows = commit_path(&quick());
        let thread_counts = commit_path_thread_counts(&quick()).len();
        assert_eq!(rows.len(), 6 * thread_counts, "{rows:?}");
        for row in &rows {
            assert!(row.commits > 0, "{row:?}");
            assert!(row.commits_per_sec > 0.0, "{row:?}");
            assert!(row.efficiency > 0.0, "{row:?}");
            // Striping may not lose updates: the stats block must report
            // exactly the commits the worker loops performed.
            assert_eq!(row.recorded_commits, row.commits, "{row:?}");
        }
        // GV1 writers pay (at least) one clock fetch_add per commit.
        for row in rows
            .iter()
            .filter(|r| r.clock_mode == ClockMode::Ticked && !r.read_only)
        {
            assert!(
                row.clock_advances_per_commit >= 1.0,
                "GV1 must tick once per writer commit: {row:?}"
            );
        }
        // The lazy clock stays off the shared cache line for disjoint
        // writers, and the read-only fast path never writes it in either
        // mode. The clock is process-global, so concurrent tests add a
        // little noise; anything close to one advance per commit would
        // mean the fast path regressed to ticking.
        for row in rows
            .iter()
            .filter(|r| r.clock_mode == ClockMode::Lazy || r.read_only)
        {
            assert!(
                row.clock_advances_per_commit < 0.5,
                "lazy/read-only commits must stay off the global clock: {row:?}"
            );
        }
    }

    #[test]
    fn hot_key_covers_distributions_and_both_modes() {
        let rows = hot_key(&quick());
        assert_eq!(
            rows.len(),
            (HOT_KEY_SKEWS.len() + 1) * 2,
            "3 skews + uniform control, x 2 modes: {rows:?}"
        );
        for row in &rows {
            assert!(row.completed > 0, "{row:?}");
            assert!(row.commits_per_sec > 0.0, "{row:?}");
            if row.mode == "single-version" {
                assert_eq!(
                    row.reexec_per_commit, 0.0,
                    "the baseline never re-executes: {row:?}"
                );
                assert_eq!(row.mv_residency, 0.0, "{row:?}");
                assert!(row.lane_ranges().is_empty(), "{row:?}");
            }
        }
        // The uniform control must keep the lane essentially cold: with
        // abort mass spread across every bucket, the span guard rejects
        // any designation that would cover most of the key space.
        let uniform_mv = rows
            .iter()
            .find(|r| r.distribution == DistributionKind::Uniform && r.mode == "mv-lane")
            .expect("uniform mv row present");
        assert!(
            uniform_mv.mv_residency < 0.2,
            "uniform load must not migrate into the MV lane: {uniform_mv:?}"
        );
    }

    #[test]
    fn durability_reports_both_sides_per_structure() {
        let rows = durability(&quick());
        assert_eq!(rows.len(), 3, "one row per structure");
        for row in &rows {
            assert!(row.volatile.completed > 0, "{:?}", row.structure);
            assert!(row.durable.completed > 0, "{:?}", row.structure);
            assert!(
                row.volatile.durability.is_none(),
                "the baseline must not open a WAL"
            );
            let view = row
                .durable
                .durability
                .expect("the durable run reports the plane");
            assert!(view.appends > 0, "writing commits must be logged");
            assert!(
                view.fsyncs <= view.appends,
                "group commit never syncs more often than it appends"
            );
        }
    }
}
