//! Table formatting for experiment output.

use katme::KeyRangeSnapshot;

use crate::experiments::ExperimentRow;

/// Format a throughput value the way the paper's figures scale it
/// (transactions per second, with thousands separators).
pub fn format_throughput(txn_per_sec: f64) -> String {
    let v = txn_per_sec.round() as u64;
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Print a "threads vs. scheduler" throughput table: one row per worker
/// count, one column per scheduler — the textual equivalent of one panel of
/// Figure 3.
pub fn print_series_table(title: &str, rows: &[ExperimentRow]) {
    println!("\n== {title} ==");
    let mut schedulers: Vec<String> = Vec::new();
    for row in rows {
        if !schedulers.contains(&row.series) {
            schedulers.push(row.series.clone());
        }
    }
    let mut threads: Vec<usize> = rows.iter().map(|r| r.workers).collect();
    threads.sort_unstable();
    threads.dedup();

    print!("{:>8}", "threads");
    for s in &schedulers {
        print!("{s:>16}");
    }
    println!();
    for t in threads {
        print!("{t:>8}");
        for s in &schedulers {
            let cell = rows
                .iter()
                .find(|r| r.workers == t && &r.series == s)
                .map(|r| format_throughput(r.throughput))
                .unwrap_or_else(|| "-".to_string());
            print!("{cell:>16}");
        }
        println!();
    }
}

/// Print the per-bucket contention breakdown of a [`KeyRangeSnapshot`]:
/// one line per key-range bucket with its commit count, abort count and
/// contention ratio, plus a crude abort-share bar — the evidence the lane
/// controller and the repartition planner price their decisions from.
/// Buckets with no traffic are skipped.
pub fn print_bucket_contention(title: &str, snapshot: &KeyRangeSnapshot) {
    println!("\n-- per-bucket contention: {title} --");
    println!(
        "{:>16}{:>12}{:>12}{:>10}  abort share",
        "key range", "commits", "aborts", "ratio"
    );
    let total_aborts = snapshot.total_aborts().max(1);
    for index in 0..snapshot.buckets().len() {
        let (commits, aborts) = snapshot.buckets()[index];
        if commits == 0 && aborts == 0 {
            continue;
        }
        let (lo, hi) = snapshot.bucket_range(index);
        let ratio = aborts as f64 / commits.max(1) as f64;
        let share = aborts as f64 / total_aborts as f64;
        let bar = "#".repeat((share * 40.0).round() as usize);
        println!(
            "{:>16}{:>12}{:>12}{:>10.4}  {bar}",
            format!("{lo}..={hi}"),
            commits,
            aborts,
            ratio
        );
    }
    println!(
        "{:>16}{:>12}{:>12}{:>10.4}",
        "total",
        snapshot.total_commits(),
        snapshot.total_aborts(),
        snapshot.contention_ratio()
    );
}

/// Render rows as a machine-readable CSV block (series,threads,throughput,
/// contention, imbalance), which EXPERIMENTS.md snapshots.
pub fn to_csv(rows: &[ExperimentRow]) -> String {
    let mut out = String::from("series,threads,throughput,contention_ratio,imbalance\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.0},{:.4},{:.3}\n",
            r.series, r.workers, r.throughput, r.contention_ratio, r.imbalance
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(series: &str, workers: usize, throughput: f64) -> ExperimentRow {
        ExperimentRow {
            series: series.to_string(),
            workers,
            throughput,
            contention_ratio: 0.01,
            imbalance: 1.0,
            completed: 100,
        }
    }

    #[test]
    fn throughput_formatting_adds_separators() {
        assert_eq!(format_throughput(1234567.4), "1,234,567");
        assert_eq!(format_throughput(999.6), "1,000");
        assert_eq!(format_throughput(12.0), "12");
        assert_eq!(format_throughput(0.0), "0");
    }

    #[test]
    fn csv_contains_every_row() {
        let rows = vec![row("adaptive", 2, 1000.0), row("fixed", 2, 900.0)];
        let csv = to_csv(&rows);
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("adaptive,2,1000"));
        assert!(csv.contains("fixed,2,900"));
    }

    #[test]
    fn table_printing_does_not_panic() {
        let rows = vec![
            row("round-robin", 2, 500.0),
            row("adaptive", 2, 700.0),
            row("round-robin", 4, 800.0),
            row("adaptive", 4, 1200.0),
        ];
        print_series_table("smoke", &rows);
    }
}
