//! Command-line options shared by every experiment binary.
//!
//! A deliberately tiny flag parser (no external dependency): every binary
//! accepts the same handful of knobs that scale the paper's 16-processor,
//! 10-second-per-point methodology down (or back up) to the host at hand.

use std::time::Duration;

/// Options accepted by every harness binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Measurement window per data point (paper: 10 s).
    pub seconds: f64,
    /// Repetitions per data point; the mean is reported (paper: 10).
    pub reps: usize,
    /// Largest worker-thread count in the sweep (paper: 16).
    pub max_threads: usize,
    /// Producer threads (paper: 4, and 8 for the hash table).
    pub producers: Option<usize>,
    /// Number of keys preloaded into each structure.
    pub preload: usize,
    /// Quick mode: single tiny run per point (used by smoke tests and CI).
    pub quick: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            seconds: 0.2,
            reps: 1,
            max_threads: 8,
            producers: None,
            preload: 10_000,
            quick: false,
        }
    }
}

impl HarnessOptions {
    /// Parse options from an argument iterator (excluding the program name).
    ///
    /// Unknown flags produce an error message listing the supported flags.
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = HarnessOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            match arg {
                "--seconds" | "-s" => {
                    opts.seconds = next_value(&mut iter, arg)?.parse().map_err(bad(arg))?
                }
                "--reps" | "-r" => {
                    opts.reps = next_value(&mut iter, arg)?.parse().map_err(bad(arg))?
                }
                "--max-threads" | "-t" => {
                    opts.max_threads = next_value(&mut iter, arg)?.parse().map_err(bad(arg))?
                }
                "--producers" | "-p" => {
                    opts.producers = Some(next_value(&mut iter, arg)?.parse().map_err(bad(arg))?)
                }
                "--preload" => {
                    opts.preload = next_value(&mut iter, arg)?.parse().map_err(bad(arg))?
                }
                "--quick" | "-q" | "--smoke" => opts.quick = true,
                "--paper" => {
                    // The paper's full methodology.
                    opts.seconds = 10.0;
                    opts.reps = 10;
                    opts.max_threads = 16;
                }
                "--help" | "-h" => return Err(Self::usage().to_string()),
                other => {
                    return Err(format!("unknown flag '{other}'\n{}", Self::usage()));
                }
            }
        }
        opts.validate()?;
        Ok(opts)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text.
    pub fn usage() -> &'static str {
        "usage: <experiment> [--seconds S] [--reps N] [--max-threads N] \
         [--producers N] [--preload N] [--quick|--smoke] [--paper]"
    }

    fn validate(&self) -> Result<(), String> {
        if self.seconds <= 0.0 {
            return Err("--seconds must be positive".into());
        }
        if self.reps == 0 {
            return Err("--reps must be at least 1".into());
        }
        if self.max_threads == 0 {
            return Err("--max-threads must be at least 1".into());
        }
        Ok(())
    }

    /// Measurement window as a [`Duration`].
    pub fn duration(&self) -> Duration {
        if self.quick {
            Duration::from_millis(40)
        } else {
            Duration::from_secs_f64(self.seconds)
        }
    }

    /// Number of repetitions per data point.
    pub fn repetitions(&self) -> usize {
        if self.quick {
            1
        } else {
            self.reps
        }
    }

    /// Worker counts to sweep, mirroring the paper's 2–16 x-axis scaled to
    /// `max_threads`.
    pub fn worker_counts(&self) -> Vec<usize> {
        if self.quick {
            return vec![1, 2];
        }
        let max = self.max_threads;
        if max <= 2 {
            (1..=max).collect()
        } else if max <= 8 {
            let mut counts = vec![1];
            counts.extend((2..=max).step_by(2));
            counts
        } else {
            (2..=max).step_by(2).collect()
        }
    }

    /// Producer count for a given structure (the paper doubles producers for
    /// the hash table "to prevent worker threads being hungry").
    pub fn producers_for(&self, structure: katme_collections::StructureKind) -> usize {
        if let Some(p) = self.producers {
            return p;
        }
        match structure {
            katme_collections::StructureKind::HashTable => 8,
            _ => 4,
        }
    }
}

fn next_value<I, S>(iter: &mut I, flag: &str) -> Result<String, String>
where
    I: Iterator<Item = S>,
    S: AsRef<str>,
{
    iter.next()
        .map(|v| v.as_ref().to_string())
        .ok_or_else(|| format!("flag '{flag}' expects a value"))
}

fn bad<E: std::fmt::Display>(flag: &str) -> impl Fn(E) -> String + '_ {
    move |e| format!("invalid value for '{flag}': {e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use katme_collections::StructureKind;

    #[test]
    fn defaults_are_sane() {
        let opts = HarnessOptions::default();
        assert!(opts.seconds > 0.0);
        assert!(opts.repetitions() >= 1);
        assert!(!opts.worker_counts().is_empty());
    }

    #[test]
    fn parses_every_flag() {
        let opts = HarnessOptions::parse([
            "--seconds",
            "0.5",
            "--reps",
            "3",
            "--max-threads",
            "16",
            "--producers",
            "6",
            "--preload",
            "100",
            "--quick",
        ])
        .unwrap();
        assert_eq!(opts.seconds, 0.5);
        assert_eq!(opts.reps, 3);
        assert_eq!(opts.max_threads, 16);
        assert_eq!(opts.producers, Some(6));
        assert_eq!(opts.preload, 100);
        assert!(opts.quick);
        // Quick mode overrides the window and repetitions.
        assert_eq!(opts.duration(), Duration::from_millis(40));
        assert_eq!(opts.repetitions(), 1);
    }

    #[test]
    fn smoke_is_an_alias_for_quick() {
        let opts = HarnessOptions::parse(["--smoke"]).unwrap();
        assert!(opts.quick);
        assert_eq!(opts.duration(), Duration::from_millis(40));
    }

    #[test]
    fn paper_preset_matches_methodology() {
        let opts = HarnessOptions::parse(["--paper"]).unwrap();
        assert_eq!(opts.seconds, 10.0);
        assert_eq!(opts.reps, 10);
        assert_eq!(opts.max_threads, 16);
        assert_eq!(opts.worker_counts(), vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(HarnessOptions::parse(["--bogus"]).is_err());
        assert!(HarnessOptions::parse(["--seconds"]).is_err());
        assert!(HarnessOptions::parse(["--seconds", "zero"]).is_err());
        assert!(HarnessOptions::parse(["--seconds", "0"]).is_err());
        assert!(HarnessOptions::parse(["--reps", "0"]).is_err());
    }

    #[test]
    fn producer_defaults_follow_the_paper() {
        let opts = HarnessOptions::default();
        assert_eq!(opts.producers_for(StructureKind::HashTable), 8);
        assert_eq!(opts.producers_for(StructureKind::RbTree), 4);
        assert_eq!(opts.producers_for(StructureKind::SortedList), 4);
        let forced = HarnessOptions::parse(["--producers", "2"]).unwrap();
        assert_eq!(forced.producers_for(StructureKind::HashTable), 2);
    }

    #[test]
    fn worker_counts_scale_with_max_threads() {
        let small = HarnessOptions::parse(["--max-threads", "4"]).unwrap();
        assert_eq!(small.worker_counts(), vec![1, 2, 4]);
        let tiny = HarnessOptions::parse(["--max-threads", "1"]).unwrap();
        assert_eq!(tiny.worker_counts(), vec![1]);
        let quick = HarnessOptions::parse(["--quick"]).unwrap();
        assert_eq!(quick.worker_counts(), vec![1, 2]);
    }
}
