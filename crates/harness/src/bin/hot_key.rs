//! Single-version vs. the multi-version optimistic lane (extension
//! experiment): a write-heavy Zipfian two-account transfer workload,
//! batched, with the lane controller free to designate contended key
//! ranges from per-bucket abort mass. Expected shape: at skew ≥ 0.99 the
//! MV side designates the Zipf head (lane residency > 0) and pays strictly
//! fewer re-executions per commit than the baseline pays aborts, at
//! equal-or-better commit throughput; on the uniform control the lane
//! stays cold and throughput matches the baseline within noise.
//!
//! ```text
//! cargo run --release -p katme-harness --bin hot_key -- --seconds 1
//! ```
//!
//! `--smoke` (alias of `--quick`) runs one tiny pass per point, as in CI.

use katme_harness::{format_throughput, hot_key, print_bucket_contention, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Single-version vs. multi-version optimistic lane ==");
    println!(
        "{:>16}{:>16}{:>14}{:>12}{:>12}{:>12}{:>11}{:>7}",
        "distribution",
        "mode",
        "commits/s",
        "aborts/c",
        "reexec/c",
        "wasted/c",
        "residency",
        "flips"
    );
    let rows = hot_key(&opts);
    for row in &rows {
        println!(
            "{:>16}{:>16}{:>14}{:>12.4}{:>12.4}{:>12.4}{:>11.3}{:>7}",
            row.distribution.to_string(),
            row.mode,
            format_throughput(row.commits_per_sec),
            row.aborts_per_commit,
            row.reexec_per_commit,
            row.wasted_per_commit(),
            row.mv_residency,
            row.lane_flips,
        );
    }

    println!();
    let pairs: Vec<_> = rows
        .iter()
        .filter(|r| r.mode == "mv-lane")
        .filter_map(|mv| {
            rows.iter()
                .find(|r| r.mode == "single-version" && r.distribution == mv.distribution)
                .map(|base| (base, mv))
        })
        .collect();
    for (base, mv) in &pairs {
        let speedup = if base.commits_per_sec > 0.0 {
            mv.commits_per_sec / base.commits_per_sec
        } else {
            0.0
        };
        println!(
            "{:>16}: mv at {speedup:.2}x commits/s, wasted/commit {:.4} vs {:.4}, \
             lane ranges {:?}",
            base.distribution.to_string(),
            mv.wasted_per_commit(),
            base.wasted_per_commit(),
            mv.lane_ranges(),
        );
    }

    // The per-bucket evidence behind the lane decisions, for the most
    // skewed pair: where the abort mass actually sat.
    for row in rows.iter().rev() {
        if let Some(snapshot) = &row.key_ranges {
            print_bucket_contention(&format!("{} / {}", row.distribution, row.mode), snapshot);
            break;
        }
    }

    println!("\n(wasted/c = aborted attempts plus MV re-executions per committed");
    println!(" transaction — the comparable waste currency of the two modes. The lane");
    println!(" controller designates ranges from per-bucket abort mass, priced like a");
    println!(" repartition: predicted wasted-work saved vs. a measured flip cost. With");
    println!(" --smoke the windows are tiny; treat those numbers as a pipeline check.)");
}
