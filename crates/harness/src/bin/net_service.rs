//! Network service plane (extension experiment): drives the executor
//! through `katme-server`'s pipelined wire protocol over loopback TCP and
//! *gates* on the service-plane acceptance criteria:
//!
//! - pipelining pays: depth-64 throughput ≥ 3x depth-1 at equal connections;
//! - queue-full pushback is bounded and lossless: every flooded command is
//!   answered `:n` or `-BUSY`, never dropped, and the server's own `-BUSY`
//!   counter agrees with the client's;
//! - a slow reader cannot balloon server memory: decoded-but-unreplied
//!   commands stay within the per-connection in-flight window, and replies
//!   come back in submission order;
//! - the elastic pool rides a socket arrival ramp: grows through the burst
//!   third, sheds workers by the final quiet sample.
//!
//! ```text
//! cargo run --release -p katme-harness --bin net_service -- --smoke
//! ```
//!
//! Any violated criterion fails the run with exit code 1, so CI catches
//! service-plane regressions the same way it catches broken tests.

use katme_harness::{net_service, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Network service plane: pipelined wire protocol over loopback ==");
    let report = net_service(&opts);

    println!(
        "{:>8}{:>8}{:>12}{:>14}{:>12}{:>12}{:>12}",
        "depth", "conns", "commands", "commands/s", "p50(us)", "p99(us)", "reconnects"
    );
    for row in &report.depths {
        println!(
            "{:>8}{:>8}{:>12}{:>14.0}{:>12.0}{:>12.0}{:>12}",
            row.depth,
            row.connections,
            row.commands,
            row.commands_per_sec,
            row.p50_us,
            row.p99_us,
            row.reconnects
        );
    }
    let speedup = report.depth_speedup();
    println!("pipelining speedup (depth 64 vs 1): {speedup:.2}x");

    let pb = &report.pushback;
    println!(
        "\npushback: sent {} ok {} busy {} server-busy {} peak-inflight {}",
        pb.sent, pb.ok, pb.busy, pb.server_busy, pb.peak_inflight
    );
    let sr = &report.slow_reader;
    println!(
        "slow reader: sent {} received {} in-order {} peak-inflight {} window {}",
        sr.sent, sr.received, sr.in_order, sr.peak_inflight, sr.window
    );
    let el = &report.elastic;
    println!(
        "elastic ramp: workers {:?} (burst {} final {} of max {}), {} commands",
        el.worker_trace,
        el.burst_workers(),
        el.final_workers(),
        el.max_workers,
        el.commands
    );

    let mut failures = Vec::new();
    if speedup < 3.0 {
        failures.push(format!("pipelining speedup {speedup:.2}x < 3.0x"));
    }
    if pb.busy == 0 {
        failures.push("flood produced no -BUSY pushback".to_string());
    }
    if pb.ok + pb.busy != pb.sent {
        failures.push(format!(
            "pushback lost commands: ok {} + busy {} != sent {}",
            pb.ok, pb.busy, pb.sent
        ));
    }
    if pb.server_busy != pb.busy {
        failures.push(format!(
            "server -BUSY counter {} disagrees with client {}",
            pb.server_busy, pb.busy
        ));
    }
    if sr.received != sr.sent {
        failures.push(format!(
            "slow reader lost replies: {} of {}",
            sr.received, sr.sent
        ));
    }
    if !sr.in_order {
        failures.push("slow-reader replies out of order".to_string());
    }
    if sr.peak_inflight > sr.window {
        failures.push(format!(
            "in-flight {} exceeded window {}",
            sr.peak_inflight, sr.window
        ));
    }
    if el.burst_workers() <= 1 {
        failures.push("elastic pool never grew through the burst".to_string());
    }
    if el.final_workers() >= el.burst_workers() {
        failures.push(format!(
            "elastic pool did not shed: burst {} final {}",
            el.burst_workers(),
            el.final_workers()
        ));
    }

    println!(
        "\n(all four phases run against fresh loopback servers on ephemeral ports; the\n\
         depth sweep reconnects periodically to exercise connection churn, and the\n\
         elastic phase paces an open-loop quiet→burst→quiet duty cycle per connection.)"
    );
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("SERVICE-PLANE REGRESSION: {failure}");
        }
        std::process::exit(1);
    }
}
