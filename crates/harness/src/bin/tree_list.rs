//! Reproduces the technical-report companion to Figure 3: the same
//! scheduler × distribution × worker-count sweep for the red-black tree and
//! the sorted linked list.
//!
//! ```text
//! cargo run --release -p katme-harness --bin tree_list -- --seconds 0.5
//! ```

use katme_harness::{print_series_table, tree_list, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    eprintln!(
        "# Tree & list benchmarks, {} repetition(s) of {:?} per point, workers {:?}",
        opts.repetitions(),
        opts.duration(),
        opts.worker_counts()
    );
    for (structure, distribution, rows) in tree_list(&opts) {
        print_series_table(
            &format!("{distribution} : {structure} (throughput, txn/s)"),
            &rows,
        );
    }
    println!("\n(Expected shape: a clear adaptive advantage for the red-black tree, a smaller");
    println!(" one for the sorted list — where the key predicts the access pattern weakly —");
    println!(" with adaptive still best or tied-best everywhere.)");
}
