//! Fixed vs. elastic worker pools under a load ramp (extension
//! experiment): both sides run the adaptive scheduler with the continuous
//! adaptation plane on a quiet → burst → quiet arrival ramp, but only the
//! elastic side may resize its pool (1..=max workers, partition-coupled).
//! The fixed always-max pool burns idle workers through the quiet phases;
//! the elastic pool sheds them within two epochs of the load dropping and
//! grows back into the burst, keeping burst throughput within noise of the
//! fixed pool.
//!
//! ```text
//! cargo run --release -p katme-harness --bin elastic_scaling -- --seconds 1
//! ```
//!
//! `--smoke` (alias of `--quick`) runs one tiny pass per point, as in CI.

use katme_harness::{elastic_scaling, format_throughput, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Fixed vs. elastic worker pools under a quiet-burst-quiet ramp ==");
    println!(
        "{:>14}{:>10}{:>14}{:>14}{:>8}{:>8}{:>8}{:>9}",
        "structure", "mode", "txns/s", "burst/s", "burst-w", "final-w", "resize", "shed"
    );
    let rows = elastic_scaling(&opts);
    for row in &rows {
        println!(
            "{:>14}{:>10}{:>14}{:>14}{:>8}{:>8}{:>8}{:>8.0}%",
            row.structure.name(),
            row.mode,
            format_throughput(row.result.throughput),
            format_throughput(row.burst_throughput()),
            row.burst_workers(),
            row.final_workers(),
            row.resizes(),
            row.shed_fraction() * 100.0,
        );
    }
    println!();
    for structure in katme_collections::StructureKind::ALL {
        let of = |mode: &str| {
            rows.iter()
                .find(|r| r.structure == structure && r.mode == mode)
        };
        if let (Some(fixed), Some(elastic)) = (of("fixed"), of("elastic")) {
            let burst_ratio = if fixed.burst_throughput() > 0.0 {
                elastic.burst_throughput() / fixed.burst_throughput()
            } else {
                0.0
            };
            println!(
                "{:>14}: burst throughput elastic/fixed = {burst_ratio:.2}x, \
                 elastic pool {} -> {} workers after the burst \
                 ({} resize(s))",
                structure.name(),
                elastic.burst_workers(),
                elastic.final_workers(),
                elastic.resizes(),
            );
        }
    }
    println!("\n(burst/s = mean windowed throughput of the middle third; burst-w/final-w =");
    println!(" peak active workers during the burst and active workers at run end. The");
    println!(" elastic pool sheds at least half its burst-time workers within two epochs");
    println!(" of the load dropping — when the load actually drops: a structure slow");
    println!(" enough that even the throttled quiet phase saturates its queues (the");
    println!(" sorted list on small hosts) correctly stays at full width. With --smoke");
    println!(" the windows are tiny; treat those numbers as a pipeline check.)");
}
