//! Reproduces the contention-frequency data the paper cites in §4.4
//! ("as supporting data, we have collected the frequency of contentions"):
//! aborted attempts per committed transaction for each structure and
//! scheduler.
//!
//! ```text
//! cargo run --release -p katme-harness --bin contention_table -- --seconds 0.5
//! ```

use katme_harness::{contention_table, HarnessOptions};
use katme_workload::DistributionKind;

fn main() {
    let opts = HarnessOptions::from_env();
    for distribution in DistributionKind::paper_distributions() {
        println!("\n== Contention (aborts per committed txn) — {distribution} ==");
        println!(
            "{:>14}{:>16}{:>16}{:>16}",
            "structure", "round-robin", "fixed", "adaptive"
        );
        let rows = contention_table(&opts, distribution);
        for structure in katme_collections::StructureKind::ALL {
            print!("{:>14}", structure.name());
            for scheduler in katme::SchedulerKind::ALL {
                let ratio = rows
                    .iter()
                    .find(|(s, k, _)| *s == structure && *k == scheduler)
                    .map(|(_, _, r)| *r)
                    .unwrap_or(f64::NAN);
                print!("{ratio:>16.4}");
            }
            println!();
        }
    }
    println!("\n(The paper: hash-table contention is below 1/100th of completed transactions;");
    println!(" the sorted list under the exponential distribution sees the most, still below");
    println!(" one contention per four transactions. Key-based partitioning reduces it.)");
}
