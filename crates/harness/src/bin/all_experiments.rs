//! Runs every experiment in sequence — the one-command reproduction of all
//! of the paper's figures plus the extension tables.
//!
//! ```text
//! cargo run --release -p katme-harness --bin all_experiments -- --seconds 0.5
//! ```

katme_harness::install_counting_allocator!();

use katme_collections::StructureKind;
use katme_harness::experiments::executor_models;
use katme_harness::{
    alloc_profile, balance_table, batch_dispatch, commit_path, contention_table, cost_adaptation,
    durability, fig3_hashtable, fig4_overhead, format_throughput, hot_key, net_service,
    print_series_table, tree_list, HarnessOptions,
};
use katme_workload::DistributionKind;

fn main() {
    let opts = HarnessOptions::from_env();
    eprintln!(
        "# All experiments: {} repetition(s) of {:?} per point, workers {:?}",
        opts.repetitions(),
        opts.duration(),
        opts.worker_counts()
    );

    println!("\n################ Figure 3: hash table ################");
    for (distribution, rows) in fig3_hashtable(&opts) {
        print_series_table(&format!("{distribution} : Hashtable"), &rows);
    }

    println!("\n################ Figure 4: executor overhead ################");
    println!(
        "{:>8}{:>18}{:>18}{:>12}",
        "threads", "no executor", "executor", "overhead"
    );
    for row in fig4_overhead(&opts) {
        println!(
            "{:>8}{:>18}{:>18}{:>11.2}x",
            row.workers,
            format_throughput(row.no_executor),
            format_throughput(row.executor),
            row.overhead_factor()
        );
    }

    println!("\n################ Tech report: tree & list ################");
    for (structure, distribution, rows) in tree_list(&opts) {
        print_series_table(&format!("{distribution} : {structure}"), &rows);
    }

    println!("\n################ Contention table ################");
    for distribution in DistributionKind::paper_distributions() {
        let rows = contention_table(&opts, distribution);
        println!("\n{distribution}:");
        for (structure, scheduler, ratio) in rows {
            println!(
                "  {:>12} / {:>12}: {ratio:.4}",
                structure.name(),
                scheduler.name()
            );
        }
    }

    println!("\n################ Load balance ################");
    for (scheduler, per_worker, imbalance) in balance_table(
        &opts,
        StructureKind::HashTable,
        DistributionKind::exponential_paper(),
    ) {
        println!(
            "  {:>12}: imbalance {imbalance:.2} per-worker {per_worker:?}",
            scheduler.name()
        );
    }

    println!("\n################ Executor models (Figure 1 ablation) ################");
    for (model, throughput) in executor_models(&opts) {
        println!(
            "  {:>12}: {} txn/s",
            model.name(),
            format_throughput(throughput)
        );
    }

    println!("\n################ Batched vs. per-task dispatch ################");
    for (structure, batch, row) in batch_dispatch(&opts, DistributionKind::Uniform) {
        println!(
            "  {:>12} / batch {batch:>4}: {} txn/s",
            structure.name(),
            format_throughput(row.throughput)
        );
    }

    println!("\n################ Threshold vs. cost-model adaptation ################");
    for row in cost_adaptation(&opts) {
        println!(
            "  {:>12} / {:>10} / {:>10}: {} txn/s, {} swap(s), {} unjustified",
            row.structure.name(),
            row.workload,
            row.mode,
            format_throughput(row.result.throughput),
            row.swaps(),
            row.unjustified_swaps()
        );
    }

    println!("\n################ Durable vs. volatile (group-commit WAL) ################");
    for row in durability(&opts) {
        println!(
            "  {:>12}: volatile {} vs durable {} txn/s ({:.2}x), {:.4} fsyncs/commit, \
             group {:.2}",
            row.structure.name(),
            format_throughput(row.volatile.throughput),
            format_throughput(row.durable.throughput),
            row.throughput_ratio(),
            row.fsyncs_per_commit(),
            row.mean_group_size()
        );
    }

    println!("\n################ Hot-key MV lane ################");
    for row in hot_key(&opts) {
        println!(
            "  {:>16} / {:>14}: {} commits/s, {:.4} wasted/commit, residency {:.3}",
            row.distribution.to_string(),
            row.mode,
            format_throughput(row.commits_per_sec),
            row.wasted_per_commit(),
            row.mv_residency
        );
    }

    println!("\n################ Commit-path microbench ################");
    for row in commit_path(&opts) {
        println!(
            "  {:>24} / {:>2} thread(s): {} commits/s, efficiency {:.3}, \
             {:.4} clock-adv/commit",
            row.series,
            row.threads,
            format_throughput(row.commits_per_sec),
            row.efficiency,
            row.clock_advances_per_commit
        );
    }

    println!("\n################ Allocation profile ################");
    match alloc_profile(&opts) {
        Some(rows) => {
            for row in rows {
                println!(
                    "  {:>12}: {:.3} allocs/commit, {:.1} bytes/commit over {} commits",
                    row.workload, row.allocs_per_commit, row.bytes_per_commit, row.commits
                );
            }
        }
        None => println!("  (counting allocator shim not installed; profile unavailable)"),
    }

    println!("\n################ Network service plane ################");
    let net = net_service(&opts);
    for row in &net.depths {
        println!(
            "  depth {:>3} x {} conns: {} commands/s, p50 {:.0} us, p99 {:.0} us, \
             {} reconnects",
            row.depth,
            row.connections,
            format_throughput(row.commands_per_sec),
            row.p50_us,
            row.p99_us,
            row.reconnects
        );
    }
    println!(
        "  pipelining speedup {:.2}x; pushback {} busy of {} sent; slow reader \
         in-flight {}/{} in-order {}; elastic workers {:?}",
        net.depth_speedup(),
        net.pushback.busy,
        net.pushback.sent,
        net.slow_reader.peak_inflight,
        net.slow_reader.window,
        net.slow_reader.in_order,
        net.elastic.worker_trace
    );
}
