//! Open-loop load generator for the KATME network service plane.
//!
//! Drives pipelined GET/PUT bursts over TCP against a `katme-server`
//! instance and reports aggregate throughput, burst round-trip latency
//! percentiles, and pushback counts.
//!
//! ```text
//! cargo run --release -p katme-harness --bin loadgen -- --conns 8 --depth 64 --seconds 5
//! ```
//!
//! Without `--addr` it spins up its own loopback server (handy for
//! single-command benchmarking); with `--addr HOST:PORT` it targets an
//! already-running service, making it a standalone wire-protocol client.
//!
//! This binary has its own flags (the shared `HarnessOptions` parser
//! rejects anything it does not know about).

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use katme::Katme;
use katme_harness::{drive_connection, percentile_us, ConnStats};
use katme_server::ServeExt;

struct LoadgenOptions {
    addr: Option<String>,
    conns: usize,
    depth: usize,
    seconds: f64,
    workers: usize,
}

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--conns N] [--depth N] \
     [--seconds S] [--workers N]\n\
     \n\
     --addr     target an already-running katme-server (default: spin up a\n\
     \x20          loopback server with --workers workers)\n\
     --conns    concurrent connections (default 4)\n\
     --depth    pipeline depth, commands per burst (default 16)\n\
     --seconds  run length (default 2)\n\
     --workers  executor workers for the built-in loopback server (default 4)";

impl LoadgenOptions {
    fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = LoadgenOptions {
            addr: None,
            conns: 4,
            depth: 16,
            seconds: 2.0,
            workers: 4,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            let mut value = |flag: &str| {
                iter.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
            };
            match arg {
                "--addr" => opts.addr = Some(value(arg)?),
                "--conns" => {
                    opts.conns = value(arg)?
                        .parse()
                        .map_err(|e| format!("bad --conns: {e}\n{USAGE}"))?
                }
                "--depth" => {
                    opts.depth = value(arg)?
                        .parse()
                        .map_err(|e| format!("bad --depth: {e}\n{USAGE}"))?
                }
                "--seconds" => {
                    opts.seconds = value(arg)?
                        .parse()
                        .map_err(|e| format!("bad --seconds: {e}\n{USAGE}"))?
                }
                "--workers" => {
                    opts.workers = value(arg)?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}\n{USAGE}"))?
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
            }
        }
        if opts.conns == 0 || opts.depth == 0 || opts.seconds <= 0.0 || opts.workers == 0 {
            return Err(format!("all knobs must be positive\n{USAGE}"));
        }
        Ok(opts)
    }
}

fn main() {
    let opts = match LoadgenOptions::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // Either target the given service or stand up a loopback one to beat on.
    let (server, addr) = match &opts.addr {
        Some(addr) => {
            let addr: SocketAddr = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
                .unwrap_or_else(|| {
                    eprintln!("cannot resolve --addr {addr}");
                    std::process::exit(2);
                });
            (None, addr)
        }
        None => {
            let server = Katme::builder()
                .workers(opts.workers)
                .key_range(0, u32::MAX as u64)
                .serve("127.0.0.1:0")
                .unwrap_or_else(|error| {
                    eprintln!("cannot bind loopback server: {error}");
                    std::process::exit(2);
                });
            let addr = server.local_addr();
            println!("loopback server on {addr} ({} workers)", opts.workers);
            (Some(server), addr)
        }
    };

    println!(
        "driving {addr}: {} connections x depth {} for {:.1}s",
        opts.conns, opts.depth, opts.seconds
    );
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..opts.conns)
        .map(|conn| {
            let stop = Arc::clone(&stop);
            let depth = opts.depth;
            thread::spawn(move || drive_connection(addr, depth, conn, &stop))
        })
        .collect();
    let started = Instant::now();
    thread::sleep(Duration::from_secs_f64(opts.seconds));
    stop.store(true, Ordering::Relaxed);

    let mut total = ConnStats::default();
    for handle in handles {
        match handle.join().expect("connection thread") {
            Ok(stats) => {
                total.commands += stats.commands;
                total.busy += stats.busy;
                total.reconnects += stats.reconnects;
                total.burst_us.extend(stats.burst_us);
            }
            Err(error) => {
                eprintln!("connection failed: {error}");
                std::process::exit(1);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    total.burst_us.sort_unstable();

    println!(
        "{:>12} commands  {:>12.0} commands/s",
        total.commands,
        total.commands as f64 / elapsed
    );
    println!(
        "{:>12.0} us p50    {:>12.0} us p99 (burst round trip)",
        percentile_us(&total.burst_us, 0.50),
        percentile_us(&total.burst_us, 0.99)
    );
    println!(
        "{:>12} -BUSY     {:>12} reconnects",
        total.busy, total.reconnects
    );
    if let Some(server) = server {
        let net = server.net();
        println!(
            "server: {} accepted, {} commands, {} replies, {} bytes in, {} bytes out, peak inflight {}",
            net.accepted, net.commands, net.replies, net.bytes_in, net.bytes_out, net.peak_inflight
        );
        server.shutdown();
    }
}
