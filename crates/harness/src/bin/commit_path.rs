//! Commit-path microbench (extension experiment): isolates the cost of
//! committing from the cost of the data structures and the executor.
//! Tiny read-write transactions over fully disjoint per-thread key sets
//! sweep 1..=N threads for every combination of clock discipline (GV1
//! ticked vs. GV5 lazy) and stats-counter layout (shared single stripe
//! vs. cache-line-padded per-thread stripes), plus a read-only series for
//! the read-only fast path. Disjoint writers never conflict, so any
//! scaling loss is pure commit-path bookkeeping: the clock `fetch_add`,
//! the stats counters, the transaction registry.
//!
//! ```text
//! cargo run --release -p katme-harness --bin commit_path -- --seconds 1
//! ```
//!
//! `--smoke` (alias of `--quick`) runs one tiny pass per point, as in CI.

use katme_harness::{commit_path, format_throughput, CommitPathRow, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Commit-path cost: clock discipline x stats-counter layout ==");
    println!(
        "{:>24}{:>10}{:>16}{:>12}{:>16}",
        "series", "threads", "commits/s", "efficiency", "clock-adv/commit"
    );
    let rows = commit_path(&opts);
    for row in &rows {
        println!(
            "{:>24}{:>10}{:>16}{:>12.3}{:>16.4}",
            row.series,
            row.threads,
            format_throughput(row.commits_per_sec),
            row.efficiency,
            row.clock_advances_per_commit,
        );
    }

    let max_threads = rows.iter().map(|r| r.threads).max().unwrap_or(1);
    let at_max = |series: &str| -> Option<&CommitPathRow> {
        rows.iter()
            .find(|r| r.series == series && r.threads == max_threads)
    };
    if let (Some(baseline), Some(tuned)) =
        (at_max("gv1-ticked + shared"), at_max("gv5-lazy + striped"))
    {
        let ratio = tuned.commits_per_sec / baseline.commits_per_sec.max(f64::EPSILON);
        println!(
            "\nAt {max_threads} thread(s): gv5-lazy + striped vs. gv1-ticked + shared = {ratio:.3}x \
             ({} vs. {} commits/s)",
            format_throughput(tuned.commits_per_sec),
            format_throughput(baseline.commits_per_sec),
        );
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n(clock-adv/commit ~1.0 = every commit pays a fetch_add on the shared clock");
    println!(" cache line; ~0.0 = the lazy clock / read-only fast path stays off it.");
    println!(" efficiency = throughput / (threads x single-thread throughput).)");
    if cores < max_threads.max(2) {
        println!(
            "(host has {cores} core(s) for a {max_threads}-thread sweep: threads time-share, so \
             the contention delta is muted here — the clock-advance column still shows the \
             shared-line traffic each config would contend on. Re-run on a multi-core host \
             for the scaling picture.)"
        );
    }
}
