//! Reproduces **Figure 4**: throughput of empty (trivial) transactions
//! executed by free-running threads versus through the executor (six
//! producers), isolating executor overhead.
//!
//! ```text
//! cargo run --release -p katme-harness --bin fig4_overhead -- --seconds 1
//! ```

use katme_harness::{fig4_overhead, format_throughput, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    eprintln!(
        "# Figure 4: executor overhead, {} repetition(s) of {:?} per point",
        opts.repetitions(),
        opts.duration()
    );
    println!("\n== Figure 4 — Throughput of empty threads and executor tasks ==");
    println!(
        "{:>8}{:>18}{:>18}{:>12}",
        "threads", "no executor", "executor", "overhead"
    );
    for row in fig4_overhead(&opts) {
        println!(
            "{:>8}{:>18}{:>18}{:>11.2}x",
            row.workers,
            format_throughput(row.no_executor),
            format_throughput(row.executor),
            row.overhead_factor()
        );
    }
    println!("\n(The paper reports roughly 2x overhead at two workers, shrinking at higher");
    println!(" thread counts and becoming negligible for non-trivial transactions.)");
}
