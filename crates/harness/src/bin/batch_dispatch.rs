//! Batched vs. per-task dispatch at equal workload (extension experiment):
//! the contention-table workload — every structure, adaptive scheduler, max
//! worker count — submitted through the dispatch plane at batch sizes 1
//! (the paper's per-task protocol), 8, 32 and 128. Reports the throughput
//! of each path and the speedup of every batched path over the per-task
//! baseline.
//!
//! ```text
//! cargo run --release -p katme-harness --bin batch_dispatch -- --seconds 0.5
//! ```

use katme_harness::{batch_dispatch, format_throughput, HarnessOptions, BATCH_SIZES};
use katme_workload::DistributionKind;

fn main() {
    let opts = HarnessOptions::from_env();
    let distribution = DistributionKind::Uniform;
    println!("== Batched vs. per-task submission — {distribution} keys, adaptive scheduler ==");
    println!(
        "{:>14}{:>8}{:>16}{:>16}{:>12}",
        "structure", "batch", "txns/s", "completed", "speedup"
    );
    let rows = batch_dispatch(&opts, distribution);
    for structure in katme_collections::StructureKind::ALL {
        let baseline = rows
            .iter()
            .find(|(s, batch, _)| *s == structure && *batch == 1)
            .map(|(_, _, row)| row.throughput)
            .unwrap_or(f64::NAN);
        for &batch in &BATCH_SIZES {
            if let Some((_, _, row)) = rows.iter().find(|(s, b, _)| *s == structure && *b == batch)
            {
                println!(
                    "{:>14}{:>8}{:>16}{:>16}{:>11.2}x",
                    structure.name(),
                    batch,
                    format_throughput(row.throughput),
                    row.completed,
                    row.throughput / baseline
                );
            }
        }
    }
    println!("\n(batch = tasks per producer hand-over and per worker drain; 1 reproduces the");
    println!(" paper's per-task protocol. Batched submission amortizes the scheduler call,");
    println!(" queue locks and shutdown-gate traffic over the whole batch.)");
}
