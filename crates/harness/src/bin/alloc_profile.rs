//! Allocation profile (extension experiment): counts steady-state heap
//! allocations per committed transaction on the submit→execute→commit
//! path — the allocator-traffic companion to `commit_path`'s cycle
//! counts. Four workloads: read-only lookups, the paper's 50/50
//! insert/delete stream, the same stream pinned through the MV lane, and
//! the durable (group-commit WAL) variant.
//!
//! ```text
//! cargo run --release -p katme-harness --bin alloc_profile -- --smoke
//! ```
//!
//! The binary installs a counting `#[global_allocator]` and *gates*: any
//! workload whose steady-state allocs/commit exceeds its recorded budget
//! (see `katme_harness::ALLOC_BUDGETS`) fails the run with exit code 1,
//! so CI catches allocation regressions the same way it catches broken
//! tests.

katme_harness::install_counting_allocator!();

use katme_harness::{alloc_profile, HarnessOptions, ALLOC_BUDGETS};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Allocation profile: steady-state allocator traffic per commit ==");
    let Some(rows) = alloc_profile(&opts) else {
        eprintln!("counting allocator shim not installed; profile unavailable");
        std::process::exit(2);
    };
    println!(
        "{:>12}{:>12}{:>16}{:>16}{:>12}",
        "workload", "commits", "allocs/commit", "bytes/commit", "budget"
    );
    let mut failures = 0usize;
    for row in &rows {
        let budget = ALLOC_BUDGETS
            .iter()
            .find(|(name, _)| *name == row.workload)
            .map(|&(_, b)| b);
        println!(
            "{:>12}{:>12}{:>16.3}{:>16.1}{:>12}",
            row.workload,
            row.commits,
            row.allocs_per_commit,
            row.bytes_per_commit,
            budget.map_or("-".to_string(), |b| format!("{b:.1}")),
        );
        if let Some(budget) = budget {
            if row.allocs_per_commit > budget {
                eprintln!(
                    "ALLOCATION REGRESSION: {} is at {:.3} allocs/commit, budget {:.1}",
                    row.workload, row.allocs_per_commit, budget
                );
                failures += 1;
            }
        }
    }
    println!(
        "\n(allocs/commit counts every alloc/alloc_zeroed/realloc across all threads in the\n\
         measured window, divided by committed transactions; deterministic counts and seeds,\n\
         so comparable across hosts. Budgets are ceilings with headroom over the measured\n\
         steady state recorded in README.md.)"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
