//! Reproduces **Figure 3**: throughput (txn/s) of the hash-table
//! microbenchmark with a uniform, Gaussian, or exponential distribution of
//! transaction keys, under the round-robin, fixed, and adaptive executors.
//!
//! ```text
//! cargo run --release -p katme-harness --bin fig3_hashtable -- --seconds 1 --max-threads 8
//! ```

use katme_harness::{fig3_hashtable, print_series_table, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    eprintln!(
        "# Figure 3: hash table, {} repetition(s) of {:?} per point, workers {:?}",
        opts.repetitions(),
        opts.duration(),
        opts.worker_counts()
    );
    for (distribution, rows) in fig3_hashtable(&opts) {
        print_series_table(
            &format!("Figure 3 — {distribution} : Hashtable (throughput, txn/s)"),
            &rows,
        );
    }
    println!("\n(The paper's qualitative result: both key-based executors beat round robin on");
    println!(" the uniform distribution; fixed partitioning stops scaling on the skewed");
    println!(" distributions while adaptive remains best or tied-best.)");
}
