//! Reproduces the load-balance claim of §4.4: under the modulo hash-key
//! mapping the fixed partition gives the low-end workers "50% too many"
//! transactions; the adaptive partition evens the load via uneven key ranges.
//!
//! ```text
//! cargo run --release -p katme-harness --bin balance_table -- --seconds 0.5
//! ```

use katme_collections::StructureKind;
use katme_harness::{balance_table, HarnessOptions};
use katme_workload::DistributionKind;

fn main() {
    let opts = HarnessOptions::from_env();
    for distribution in DistributionKind::paper_distributions() {
        println!("\n== Load balance — hashtable, {distribution} ==");
        let rows = balance_table(&opts, StructureKind::HashTable, distribution);
        for (scheduler, per_worker, imbalance) in rows {
            let total: u64 = per_worker.iter().sum();
            let shares: Vec<String> = per_worker
                .iter()
                .map(|&c| {
                    if total == 0 {
                        "0.00".to_string()
                    } else {
                        format!("{:.2}", c as f64 / total as f64 * per_worker.len() as f64)
                    }
                })
                .collect();
            println!(
                "{:>12}  imbalance {:>5.2}  per-worker share (1.00 = perfect): [{}]",
                scheduler.name(),
                imbalance,
                shares.join(", ")
            );
        }
    }
    println!("\n(Round robin is balanced by construction; fixed is skewed whenever the key");
    println!(" distribution is; adaptive recovers balance by making the key ranges uneven.)");
}
