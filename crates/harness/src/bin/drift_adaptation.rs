//! One-shot vs. continuous adaptation under a mid-run phase shift
//! (extension experiment): both sides run the adaptive scheduler on the
//! phased key distribution — exponential mass at the low end of the space
//! that jumps to the mirrored high end mid-run — but only the continuous
//! side enables the epoch-based adaptation plane (drift detection + STM
//! contention triggers). The one-shot partition, frozen on pre-shift
//! traffic, funnels the whole post-shift stream to one worker; the
//! continuous scheduler republishes its partition within an epoch or two
//! and defends post-shift throughput.
//!
//! ```text
//! cargo run --release -p katme-harness --bin drift_adaptation -- --seconds 0.5
//! ```
//!
//! `--smoke` (alias of `--quick`) runs one tiny pass per point, as in CI.

use katme_harness::{drift_adaptation, format_throughput, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== One-shot vs. continuous adaptation under a phase shift ==");
    println!(
        "{:>14}{:>12}{:>14}{:>14}{:>14}{:>8}{:>11}",
        "structure", "mode", "txns/s", "pre-shift/s", "post-shift/s", "repart", "imbalance"
    );
    let rows = drift_adaptation(&opts);
    for row in &rows {
        println!(
            "{:>14}{:>12}{:>14}{:>14}{:>14}{:>8}{:>10.2}x",
            row.structure.name(),
            row.mode,
            format_throughput(row.result.throughput),
            format_throughput(row.pre_shift_throughput()),
            format_throughput(row.post_shift_throughput()),
            row.repartitions(),
            row.imbalance(),
        );
    }
    println!();
    for structure in katme_collections::StructureKind::ALL {
        let of = |mode: &str| {
            rows.iter()
                .find(|r| r.structure == structure && r.mode == mode)
        };
        if let (Some(one_shot), Some(continuous)) = (of("one-shot"), of("continuous")) {
            let speedup = continuous.post_shift_throughput() / one_shot.post_shift_throughput();
            println!(
                "{:>14}: post-shift continuous/one-shot = {speedup:.2}x, \
                 worker imbalance {:.2}x -> {:.2}x \
                 ({} extra repartition(s))",
                structure.name(),
                one_shot.imbalance(),
                continuous.imbalance(),
                continuous.repartitions().saturating_sub(1),
            );
        }
    }
    println!("\n(pre/post-shift = mean windowed throughput of the first/last third of the");
    println!(" run; the phased distribution moves its hot key range mid-run, so a frozen");
    println!(" one-shot partition routes the post-shift stream to a single worker — the");
    println!(" imbalance column. On hosts with fewer cores than workers the throughput");
    println!(" columns understate the gap, since one core time-slices all workers anyway.)");
}
