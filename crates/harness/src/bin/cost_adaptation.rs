//! Threshold triggers vs. the predictive cost plane (extension
//! experiment): both sides run the continuous adaptation plane under a
//! mid-run phase shift (and a stationary control), but the cost-model side
//! replaces the drift/contention/steal/resize thresholds with one decision
//! per epoch — adopt the candidate plan whose trusted predicted gain beats
//! its calibrated, margin-adjusted swap cost. Expected shape: no more swaps
//! than threshold mode on the shift, every swap justified
//! (`predicted_gain > swap_cost` in the adaptation log), zero swaps on the
//! stationary control, at parity throughput.
//!
//! ```text
//! cargo run --release -p katme-harness --bin cost_adaptation -- --seconds 1
//! ```
//!
//! `--smoke` (alias of `--quick`) runs one tiny pass per point, as in CI.

use katme_harness::{cost_adaptation, format_throughput, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Threshold triggers vs. the predictive cost plane ==");
    println!(
        "{:>14}{:>12}{:>12}{:>14}{:>14}{:>7}{:>12}",
        "structure", "workload", "mode", "txns/s", "post/s", "swaps", "unjustified"
    );
    let rows = cost_adaptation(&opts);
    for row in &rows {
        println!(
            "{:>14}{:>12}{:>12}{:>14}{:>14}{:>7}{:>12}",
            row.structure.name(),
            row.workload,
            row.mode,
            format_throughput(row.result.throughput),
            format_throughput(row.post_shift_throughput()),
            row.swaps(),
            row.unjustified_swaps(),
        );
    }
    println!();
    for structure in katme_collections::StructureKind::ALL {
        let of = |mode: &str| {
            rows.iter()
                .find(|r| r.structure == structure && r.workload == "phased" && r.mode == mode)
        };
        if let (Some(threshold), Some(cost)) = (of("threshold"), of("cost-model")) {
            let parity = if threshold.result.throughput > 0.0 {
                cost.result.throughput / threshold.result.throughput
            } else {
                0.0
            };
            println!(
                "{:>14}: cost-model {} swap(s) vs threshold {} at {parity:.2}x throughput \
                 ({} unjustified)",
                structure.name(),
                cost.swaps(),
                threshold.swaps(),
                cost.unjustified_swaps(),
            );
        }
    }
    if let Some(control) = rows
        .iter()
        .find(|r| r.workload == "stationary" && r.mode == "cost-model")
    {
        println!(
            "{:>14}: stationary control — cost-model performed {} swap(s) (expect 0)",
            control.structure.name(),
            control.swaps(),
        );
    }
    if std::env::var_os("COST_LOG").is_some() {
        println!("\n-- adaptation logs (COST_LOG set) --");
        for row in &rows {
            println!(
                "{} / {} / {}:",
                row.structure.name(),
                row.workload,
                row.mode
            );
            for event in &row.result.adaptations {
                println!(
                    "  gen {:>3} @ {:>8} obs: {} (imbalance {:.2} -> {:.2})",
                    event.generation,
                    event.observed,
                    event.cause,
                    event.before_imbalance,
                    event.after_imbalance
                );
            }
        }
    }
    println!("\n(swaps = partition publishes beyond the initial adaptation; unjustified =");
    println!(" cost-model swaps whose logged predicted_gain failed to exceed swap_cost —");
    println!(" structurally zero, printed as a self-check. The cost plane needs no");
    println!(" two-epoch confirmation rule: predicted gains are discounted by epoch-over-");
    println!(" epoch persistence and by the model's earned trust, and swaps are priced at");
    println!(" their measured cost, so oscillation and noise are priced out rather than");
    println!(" confirmed away. With --smoke the windows are tiny; treat those numbers as");
    println!(" a pipeline check.)");
}
