//! Durable vs. volatile throughput (extension experiment): the same
//! workload per structure, once without a log and once through the
//! group-commit WAL — every insert/delete carries its redo record, a
//! dedicated log-writer thread batches concurrent commits into one
//! append + one fsync, each commit is acknowledged only after its group is
//! on disk, and a background checkpointer bounds replay. Expected shape:
//! fsyncs-per-commit well below 1.0 (group commit amortizes the sync),
//! mean group sizes above 1, and a durable/volatile throughput ratio that
//! prices never losing an acknowledged commit.
//!
//! ```text
//! cargo run --release -p katme-harness --bin durability -- --seconds 1
//! ```
//!
//! `--smoke` (alias of `--quick`) runs one tiny pass per point, as in CI.

use katme_harness::{durability, format_throughput, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("== Durable (group-commit WAL) vs. volatile throughput ==");
    println!(
        "{:>14}{:>14}{:>14}{:>8}{:>14}{:>12}{:>12}",
        "structure",
        "volatile/s",
        "durable/s",
        "ratio",
        "fsyncs/commit",
        "group size",
        "checkpoints"
    );
    let rows = durability(&opts);
    for row in &rows {
        println!(
            "{:>14}{:>14}{:>14}{:>8.2}{:>14.4}{:>12.2}{:>12}",
            row.structure.name(),
            format_throughput(row.volatile.throughput),
            format_throughput(row.durable.throughput),
            row.throughput_ratio(),
            row.fsyncs_per_commit(),
            row.mean_group_size(),
            row.checkpoints(),
        );
    }
    println!();
    for row in &rows {
        if let Some(view) = row.durable.durability {
            println!(
                "{:>14}: {} commits logged in {} groups ({} bytes), checkpoint lag {} at close",
                row.structure.name(),
                view.appends,
                view.fsyncs,
                view.bytes,
                view.checkpoint_lag,
            );
        }
    }
    println!("\n(ratio = durable/volatile throughput; fsyncs/commit < 1.0 is the group-commit");
    println!(" amortization — concurrent commits share one fdatasync. Lookups are read-only");
    println!(" and never wait on the log, so write-heavy mixes price durability highest.");
    println!(" With --smoke the windows are tiny; treat the numbers as a pipeline check.)");
}
