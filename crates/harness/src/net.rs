//! **Network service plane** experiments: drive the KATME executor through
//! `katme-server`'s pipelined wire protocol over loopback TCP.
//!
//! Four phases, each against a fresh server on an ephemeral port:
//!
//! 1. **Depth sweep** — [`NET_CONNECTIONS`] concurrent connections issue
//!    pipelined bursts at depths [`NET_DEPTHS`], with periodic reconnects
//!    (connection churn). Pipelining amortises the per-round-trip syscall
//!    cost, so commands/s should grow steeply with depth.
//! 2. **Pushback** — a single worker behind a tiny executor queue and a
//!    per-command busy-spin; a flooding client must see `-BUSY` on the
//!    rejected tail of each burst while every accepted command completes.
//! 3. **Slow reader** — a client pipelines a long PUT/GET script and only
//!    starts reading after a delay; the server's per-connection in-flight
//!    window must bound decoded-but-unreplied commands, and the replies
//!    must come back in submission order.
//! 4. **Elastic ramp** — an elastic runtime (`1..=max` workers) under a
//!    quiet → burst → quiet socket arrival ramp; the active-worker trace
//!    should grow through the burst and shed afterwards.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use katme::{ArrivalRamp, Katme, SchedulerKind};
use katme_server::{Client, Command, Reply, ServeExt, ServerConfig};

use crate::HarnessOptions;

/// Pipeline depths swept by the depth phase.
pub const NET_DEPTHS: [usize; 3] = [1, 8, 64];

/// Concurrent client connections in the depth sweep and the elastic ramp.
pub const NET_CONNECTIONS: usize = 4;

/// Active-worker samples taken across the elastic socket ramp.
pub const NET_ELASTIC_SAMPLES: usize = 9;

/// Bursts between reconnects in the depth sweep (connection churn).
const RECONNECT_EVERY: u64 = 64;

/// Quiet-phase arrival intensity for the elastic socket ramp.
const NET_QUIET_INTENSITY: f64 = 0.05;

const KEY_SPACE: u64 = u32::MAX as u64;

/// Per-connection tallies from [`drive_connection`].
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    /// Replies received (commands completed round-trip).
    pub commands: u64,
    /// Of those, `-BUSY` pushback replies.
    pub busy: u64,
    /// Reconnects performed (connection churn).
    pub reconnects: u64,
    /// Burst round-trip latency samples, in microseconds.
    pub burst_us: Vec<u64>,
}

/// Drive one connection with pipelined GET/PUT bursts of `depth` commands
/// until `stop` is raised, reconnecting periodically (connection churn).
///
/// Shared by the depth sweep and the `loadgen` binary.
pub fn drive_connection(
    addr: SocketAddr,
    depth: usize,
    conn_id: usize,
    stop: &AtomicBool,
) -> io::Result<ConnStats> {
    let mut client = Client::connect(addr)?;
    let mut stats = ConnStats::default();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((conn_id as u64) << 17);
    let mut bursts = 0u64;
    let mut cmds = Vec::with_capacity(depth);
    while !stop.load(Ordering::Relaxed) {
        cmds.clear();
        for _ in 0..depth {
            rng = rng
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let key = (rng >> 33) as u32;
            cmds.push(if rng & 1 == 0 {
                Command::Put { key, value: rng }
            } else {
                Command::Get { key }
            });
        }
        let start = Instant::now();
        client.send(&cmds)?;
        let replies = client.recv_n(depth)?;
        stats.burst_us.push(start.elapsed().as_micros() as u64);
        stats.commands += replies.len() as u64;
        stats.busy += replies
            .iter()
            .filter(|reply| matches!(reply, Reply::Busy))
            .count() as u64;
        bursts += 1;
        if bursts % RECONNECT_EVERY == 0 {
            client = Client::connect(addr)?;
            stats.reconnects += 1;
        }
    }
    Ok(stats)
}

/// Percentile (by nearest rank) of an ascending-sorted microsecond series.
pub fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx] as f64
}

/// One row of the pipeline-depth sweep.
#[derive(Debug, Clone)]
pub struct NetRow {
    /// Pipeline depth (commands per burst).
    pub depth: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Commands completed round-trip across all connections.
    pub commands: u64,
    /// Aggregate command throughput.
    pub commands_per_sec: f64,
    /// Median burst round-trip latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile burst round-trip latency, microseconds.
    pub p99_us: f64,
    /// Reconnects performed across all connections (churn).
    pub reconnects: u64,
}

/// Pushback phase outcome: a flooded single-worker server must reject the
/// overflow with `-BUSY` while completing everything it accepted.
#[derive(Debug, Clone, Copy)]
pub struct PushbackSummary {
    /// Commands sent by the flooding client.
    pub sent: u64,
    /// Commands that completed (non-error replies).
    pub ok: u64,
    /// `-BUSY` pushback replies.
    pub busy: u64,
    /// Server-side `-BUSY` counter (should match `busy`).
    pub server_busy: u64,
    /// Peak decoded-but-unreplied commands observed server-side.
    pub peak_inflight: u64,
}

/// Slow-reader phase outcome: the in-flight window must bound server-side
/// buffering and per-connection order must survive windowed batching.
#[derive(Debug, Clone, Copy)]
pub struct SlowReaderSummary {
    /// Commands pipelined before the client read anything.
    pub sent: u64,
    /// Replies eventually received.
    pub received: u64,
    /// Whether every reply matched the submission-order expectation.
    pub in_order: bool,
    /// Peak decoded-but-unreplied commands observed server-side.
    pub peak_inflight: u64,
    /// Configured per-connection in-flight window.
    pub window: u64,
}

/// Elastic ramp outcome: the active-worker trace across the socket ramp.
#[derive(Debug, Clone)]
pub struct ElasticNetSummary {
    /// Active workers sampled at [`NET_ELASTIC_SAMPLES`] window boundaries.
    pub worker_trace: Vec<usize>,
    /// Commands completed round-trip across the whole ramp.
    pub commands: u64,
    /// Elastic growth ceiling.
    pub max_workers: usize,
}

impl ElasticNetSummary {
    /// Largest active-worker count observed in the burst (middle) third.
    pub fn burst_workers(&self) -> usize {
        let n = self.worker_trace.len();
        let third = n / 3;
        self.worker_trace[third..(2 * third).max(third + 1).min(n)]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Active workers at the final sample (after the trailing quiet phase).
    pub fn final_workers(&self) -> usize {
        self.worker_trace.last().copied().unwrap_or(0)
    }
}

/// Aggregate report from [`net_service`].
#[derive(Debug, Clone)]
pub struct NetServiceReport {
    /// Depth-sweep rows, one per entry of [`NET_DEPTHS`].
    pub depths: Vec<NetRow>,
    /// Pushback phase outcome.
    pub pushback: PushbackSummary,
    /// Slow-reader phase outcome.
    pub slow_reader: SlowReaderSummary,
    /// Elastic ramp outcome.
    pub elastic: ElasticNetSummary,
}

impl NetServiceReport {
    /// Throughput of the deepest pipeline over the depth-1 pipeline.
    pub fn depth_speedup(&self) -> f64 {
        let shallow = self.depths.iter().find(|row| row.depth == NET_DEPTHS[0]);
        let deep = self
            .depths
            .iter()
            .find(|row| row.depth == NET_DEPTHS[NET_DEPTHS.len() - 1]);
        match (shallow, deep) {
            (Some(a), Some(b)) if a.commands_per_sec > 0.0 => {
                b.commands_per_sec / a.commands_per_sec
            }
            _ => 0.0,
        }
    }
}

/// **Network service plane**: run all four loopback phases.
pub fn net_service(opts: &HarnessOptions) -> NetServiceReport {
    NetServiceReport {
        depths: depth_phase(opts),
        pushback: pushback_phase(opts),
        slow_reader: slow_reader_phase(opts),
        elastic: elastic_phase(opts),
    }
}

fn depth_phase(opts: &HarnessOptions) -> Vec<NetRow> {
    // Floor the window at 100 ms: the sweep compares throughput ratios, and
    // sub-100 ms windows are all connection-setup noise.
    let window = opts.duration().max(Duration::from_millis(100));
    let workers = opts
        .worker_counts()
        .into_iter()
        .max()
        .unwrap_or(2)
        .clamp(2, 4);
    NET_DEPTHS
        .iter()
        .map(|&depth| {
            // A 1 ms read timeout keeps the partial-batch flush (and so the
            // burst round trip) from being dominated by the server's default
            // 25 ms flush interval at shallow depths.
            let server = Katme::builder()
                .workers(workers)
                .key_range(0, KEY_SPACE)
                .serve_with(
                    "127.0.0.1:0",
                    ServerConfig::default().with_read_timeout(Duration::from_millis(1)),
                )
                .expect("bind loopback server");
            let addr = server.local_addr();
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..NET_CONNECTIONS)
                .map(|conn| {
                    let stop = Arc::clone(&stop);
                    thread::spawn(move || drive_connection(addr, depth, conn, &stop))
                })
                .collect();
            let started = Instant::now();
            thread::sleep(window);
            stop.store(true, Ordering::Relaxed);
            let mut commands = 0u64;
            let mut reconnects = 0u64;
            let mut samples = Vec::new();
            for handle in handles {
                let stats = handle
                    .join()
                    .expect("connection thread")
                    .expect("loopback socket I/O");
                commands += stats.commands;
                reconnects += stats.reconnects;
                samples.extend(stats.burst_us);
            }
            let elapsed = started.elapsed().as_secs_f64();
            samples.sort_unstable();
            server.shutdown();
            NetRow {
                depth,
                connections: NET_CONNECTIONS,
                commands,
                commands_per_sec: commands as f64 / elapsed,
                p50_us: percentile_us(&samples, 0.50),
                p99_us: percentile_us(&samples, 0.99),
                reconnects,
            }
        })
        .collect()
}

fn pushback_phase(opts: &HarnessOptions) -> PushbackSummary {
    let burst = 256usize;
    let rounds = if opts.quick { 4 } else { 16 };
    // One slow worker behind a tiny queue: each flood burst must overflow.
    let op_delay = Duration::from_micros(if opts.quick { 50 } else { 200 });
    let server = Katme::builder()
        .workers(1)
        .key_range(0, KEY_SPACE)
        .max_queue_depth(Some(8))
        .serve_with(
            "127.0.0.1:0",
            ServerConfig::default()
                .with_op_delay(op_delay)
                .with_inflight_window(burst),
        )
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let cmds: Vec<Command> = (0..burst)
        .map(|i| Command::Put {
            key: i as u32,
            value: i as u64,
        })
        .collect();
    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut busy = 0u64;
    for _ in 0..rounds {
        client.send(&cmds).expect("flood send");
        let replies = client.recv_n(burst).expect("flood recv");
        sent += burst as u64;
        for reply in replies {
            if matches!(reply, Reply::Busy) {
                busy += 1;
            } else if !reply.is_error() {
                ok += 1;
            }
        }
    }
    let net = server.net();
    server.shutdown();
    PushbackSummary {
        sent,
        ok,
        busy,
        server_busy: net.pushback_busy,
        peak_inflight: net.peak_inflight,
    }
}

fn slow_reader_phase(opts: &HarnessOptions) -> SlowReaderSummary {
    let window = 32usize;
    let total = if opts.quick { 256 } else { 1024 };
    let server = Katme::builder()
        .workers(2)
        .key_range(0, KEY_SPACE)
        .serve_with(
            "127.0.0.1:0",
            ServerConfig::default().with_inflight_window(window),
        )
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // PUT k then GET k, pipelined: the GET's reply proves per-key,
    // per-connection ordering across window boundaries.
    let cmds: Vec<Command> = (0..total)
        .map(|i| {
            let key = (i / 2) as u32;
            if i % 2 == 0 {
                Command::Put {
                    key,
                    value: key as u64 + 1_000,
                }
            } else {
                Command::Get { key }
            }
        })
        .collect();
    client.send(&cmds).expect("pipelined send");
    // Play the slow reader: the server may only buffer up to the in-flight
    // window while nobody drains the socket.
    thread::sleep(Duration::from_millis(if opts.quick { 40 } else { 150 }));
    let replies = client.recv_n(total).expect("drain replies");
    let in_order = replies.iter().enumerate().all(|(i, reply)| {
        let key = (i / 2) as u64;
        let expected = if i % 2 == 0 {
            Reply::Int(1)
        } else {
            Reply::Int(key + 1_000)
        };
        *reply == expected
    });
    let received = replies.len() as u64;
    let net = server.net();
    server.shutdown();
    SlowReaderSummary {
        sent: total as u64,
        received,
        in_order,
        peak_inflight: net.peak_inflight,
        window: window as u64,
    }
}

fn elastic_phase(opts: &HarnessOptions) -> ElasticNetSummary {
    let max_workers = opts.worker_counts().into_iter().max().unwrap_or(4).max(4);
    // Same epoch knobs as the in-process elastic_scaling experiment: each
    // quiet phase must span at least two adaptation epochs.
    let (threshold, interval) = if opts.quick {
        (300usize, 300u64)
    } else {
        (1_000, 600)
    };
    // Quiet → burst → quiet thirds; floored so even --smoke spans the
    // confirmation hysteresis, capped so --paper does not stall the suite.
    let total = (opts.duration() * 3)
        .max(Duration::from_millis(2_700))
        .min(Duration::from_secs(9));
    let server = Katme::builder()
        .workers(max_workers)
        .key_range(0, KEY_SPACE)
        .scheduler(SchedulerKind::AdaptiveKey)
        .sample_threshold(threshold)
        .adaptation_interval(interval)
        .elastic(true)
        .min_workers(1)
        .max_workers(max_workers)
        .max_queue_depth(Some(512))
        .serve_with(
            "127.0.0.1:0",
            // Fast partial-batch flush so the closed-loop connections keep
            // the executor fed, plus a per-op spin so the burst genuinely
            // backlogs the queue (the grow signal samples queued tasks per
            // worker at epoch boundaries).
            ServerConfig::default()
                .with_read_timeout(Duration::from_millis(1))
                .with_op_delay(Duration::from_micros(25)),
        )
        .expect("bind loopback server");
    let addr = server.local_addr();
    let ramp = ArrivalRamp::quiet_burst_quiet(NET_QUIET_INTENSITY);
    let handles: Vec<_> = (0..NET_CONNECTIONS)
        .map(|conn| {
            let ramp = ramp.clone();
            thread::spawn(move || drive_ramp(addr, &ramp, total, conn))
        })
        .collect();
    let sample_every = total / NET_ELASTIC_SAMPLES as u32;
    let mut worker_trace = Vec::with_capacity(NET_ELASTIC_SAMPLES);
    for _ in 0..NET_ELASTIC_SAMPLES {
        thread::sleep(sample_every);
        worker_trace.push(server.stats().active_workers);
    }
    let mut commands = 0u64;
    for handle in handles {
        commands += handle
            .join()
            .expect("ramp thread")
            .expect("loopback socket I/O");
    }
    server.shutdown();
    ElasticNetSummary {
        worker_trace,
        commands,
        max_workers,
    }
}

/// Open-loop duty-cycled driver: burst at full speed, then idle long enough
/// that the busy fraction tracks the ramp's intensity at the current point
/// in the run.
fn drive_ramp(
    addr: SocketAddr,
    ramp: &ArrivalRamp,
    total: Duration,
    conn_id: usize,
) -> io::Result<u64> {
    let mut client = Client::connect(addr)?;
    let start = Instant::now();
    let depth = 32usize;
    let mut rng = 0xe1a5_0000_0000_0001u64 ^ ((conn_id as u64) << 23);
    let mut commands = 0u64;
    let mut cmds = Vec::with_capacity(depth);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= total {
            break;
        }
        let fraction = elapsed.as_secs_f64() / total.as_secs_f64();
        let intensity = ramp.intensity_at(fraction).max(0.01);
        cmds.clear();
        for _ in 0..depth {
            rng = rng
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let key = (rng >> 33) as u32;
            cmds.push(if rng & 1 == 0 {
                Command::Put { key, value: rng }
            } else {
                Command::Get { key }
            });
        }
        let busy_start = Instant::now();
        client.send(&cmds)?;
        commands += client.recv_n(depth)?.len() as u64;
        let busy = busy_start.elapsed();
        if intensity < 1.0 {
            // Cap the idle stretch so the quiet phases still feed enough
            // tasks to advance the runtime's adaptation epochs.
            let idle = busy.mul_f64((1.0 - intensity) / intensity);
            thread::sleep(idle.min(Duration::from_millis(50)));
        }
    }
    Ok(commands)
}
