//! Process-wide allocation counters for the `alloc_profile` experiment.
//!
//! The counters are plain atomics bumped by a counting [`GlobalAlloc`]
//! shim that binaries opt into with [`install_counting_allocator!`](crate::install_counting_allocator) — the
//! library itself stays `forbid(unsafe_code)`-clean; only the few lines the
//! macro expands into the opting-in binary touch the raw allocator API.
//! A binary that does not install the shim still links and runs; the
//! experiment detects the missing shim with [`counting`] and reports that
//! the profile is unavailable instead of printing zeros as if they were
//! measurements.
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Record one allocation of `size` bytes. Called by the allocator shim on
/// every `alloc`, `alloc_zeroed` and `realloc`; not meant for manual use.
#[inline]
pub fn note(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size as u64, Ordering::Relaxed);
}

/// Cumulative (allocations, bytes) since process start. Monotonic;
/// deallocations are deliberately not subtracted — the profile measures
/// allocator *traffic*, not live heap size.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Whether the counting allocator shim is installed in this process,
/// detected by probing: perform a heap allocation and see if the counters
/// move.
pub fn counting() -> bool {
    let (before, _) = snapshot();
    let probe = std::hint::black_box(Box::new([0u8; 64]));
    drop(std::hint::black_box(probe));
    snapshot().0 > before
}

/// Install a counting `#[global_allocator]` (delegating to
/// [`std::alloc::System`]) that feeds [`crate::alloc_count`]. Invoke once at
/// the crate root of a harness binary:
///
/// ```ignore
/// katme_harness::install_counting_allocator!();
/// ```
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        struct KatmeCountingAlloc;

        // SAFETY: every method delegates directly to `std::alloc::System`
        // with the caller's unmodified arguments, so the GlobalAlloc
        // contract holds exactly as it does for `System` itself; the only
        // addition is bumping two relaxed atomics, which cannot allocate.
        unsafe impl ::std::alloc::GlobalAlloc for KatmeCountingAlloc {
            unsafe fn alloc(&self, layout: ::std::alloc::Layout) -> *mut u8 {
                $crate::alloc_count::note(layout.size());
                unsafe { ::std::alloc::GlobalAlloc::alloc(&::std::alloc::System, layout) }
            }

            unsafe fn alloc_zeroed(&self, layout: ::std::alloc::Layout) -> *mut u8 {
                $crate::alloc_count::note(layout.size());
                unsafe { ::std::alloc::GlobalAlloc::alloc_zeroed(&::std::alloc::System, layout) }
            }

            unsafe fn realloc(
                &self,
                ptr: *mut u8,
                layout: ::std::alloc::Layout,
                new_size: usize,
            ) -> *mut u8 {
                $crate::alloc_count::note(new_size);
                unsafe {
                    ::std::alloc::GlobalAlloc::realloc(&::std::alloc::System, ptr, layout, new_size)
                }
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: ::std::alloc::Layout) {
                unsafe { ::std::alloc::GlobalAlloc::dealloc(&::std::alloc::System, ptr, layout) }
            }
        }

        #[global_allocator]
        static KATME_COUNTING_ALLOC: KatmeCountingAlloc = KatmeCountingAlloc;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not two: a concurrent `note` from a sibling test would make
    // the shim-absence probe flaky.
    #[test]
    fn counters_move_under_note_and_probe_sees_no_shim() {
        // `counting()` is exercised for real in the alloc_profile binary;
        // the library test process has no shim installed, so it must say so.
        assert!(!counting());
        let (a0, b0) = snapshot();
        note(128);
        let (a1, b1) = snapshot();
        assert!(a1 > a0);
        assert!(b1 >= b0 + 128);
    }
}
