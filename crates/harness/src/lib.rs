//! # katme-harness — experiment harness for the KATME paper
//!
//! One module (and one binary) per table/figure of the paper:
//!
//! | Paper artefact | Module / binary | What it prints |
//! |---|---|---|
//! | Figure 3 | [`experiments::fig3_hashtable`] / `fig3_hashtable` | hash-table throughput vs. workers, for the uniform / Gaussian / exponential key distributions, under the round-robin / fixed / adaptive schedulers |
//! | Figure 4 | [`experiments::fig4_overhead`] / `fig4_overhead` | executor overhead: free-running transaction loops vs. executor-fed workers on trivial transactions |
//! | Tech-report companion | [`experiments::tree_list`] / `tree_list` | the same sweep as Figure 3 for the red-black tree and sorted list |
//! | Contention table | [`experiments::contention_table`] / `contention_table` | aborts per committed transaction per scheduler/structure |
//! | Load-balance table | [`experiments::balance_table`] / `balance_table` | per-worker completion share under each scheduler |
//! | Batched dispatch (extension) | [`experiments::batch_dispatch`] / `batch_dispatch` | per-task vs. batched submission throughput at equal workload |
//! | Drift adaptation (extension) | [`experiments::drift_adaptation`] / `drift_adaptation` | one-shot vs. continuous adaptation under a mid-run phase shift |
//! | Elastic scaling (extension) | [`experiments::elastic_scaling`] / `elastic_scaling` | fixed always-max pool vs. elastic partition-coupled scaling under a quiet → burst → quiet arrival ramp |
//! | Cost adaptation (extension) | [`experiments::cost_adaptation`] / `cost_adaptation` | threshold triggers vs. the predictive cost plane on phased and stationary workloads |
//! | Durability (extension) | [`experiments::durability`] / `durability` | durable (group-commit WAL + checkpoints) vs. volatile throughput, with fsyncs-per-commit and mean group size |
//! | Commit-path microbench (extension) | [`experiments::commit_path`] / `commit_path` | commit-path cost in isolation: GV1-ticked vs. GV5-lazy clock x shared vs. striped stats counters on disjoint keys, with scaling efficiency and clock advances per commit |
//! | Hot-key MV lane (extension) | [`experiments::hot_key`] / `hot_key` | single-version vs. the multi-version optimistic lane on a write-heavy Zipfian sweep: commits/s, wasted work (aborts or re-executions) per commit, lane residency, per-bucket contention |
//! | Allocation profile (extension) | [`experiments::alloc_profile`] / `alloc_profile` | steady-state heap allocations and bytes per committed transaction on the submit→execute→commit path, per workload (read-only, read-write, MV-lane, durable), with CI budget gating |
//! | Network service (extension) | [`net::net_service`] / `net_service` | loopback TCP service plane: pipeline-depth throughput sweep with connection churn, queue-full `-BUSY` pushback, slow-reader in-flight bounding, and an elastic worker pool riding a socket arrival ramp |
//!
//! Every binary accepts `--seconds`, `--reps`, `--max-threads`, `--producers`
//! and `--quick`; see [`options::HarnessOptions`]. The defaults are sized so
//! the full suite completes in a couple of minutes on a laptop; the paper's
//! original parameters (10-second windows, 10 repetitions, 16 workers) are a
//! flag away.
//!
//! Every experiment runs through the [`katme::Katme`] facade (via
//! [`katme::Driver`]): one `Katme::builder()` configuration per data point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc_count;
pub mod experiments;
pub mod net;
pub mod options;
pub mod report;

pub use experiments::{
    alloc_profile, balance_table, batch_dispatch, commit_path, contention_table, cost_adaptation,
    drift_adaptation, durability, elastic_scaling, fig3_hashtable, fig4_overhead, hot_key,
    tree_list, AllocRow, CommitPathRow, CostRow, DriftRow, DurabilityRow, ElasticRow,
    ExperimentRow, Fig4Row, HotKeyRow, ALLOC_BUDGETS, BATCH_SIZES, COST_WINDOWS, DRIFT_WINDOWS,
    ELASTIC_QUIET_INTENSITY, ELASTIC_WINDOWS, HOT_KEY_SKEWS,
};
pub use net::{
    drive_connection, net_service, percentile_us, ConnStats, ElasticNetSummary, NetRow,
    NetServiceReport, PushbackSummary, SlowReaderSummary, NET_CONNECTIONS, NET_DEPTHS,
    NET_ELASTIC_SAMPLES,
};
pub use options::HarnessOptions;
pub use report::{format_throughput, print_bucket_contention, print_series_table};
