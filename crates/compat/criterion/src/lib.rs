//! Minimal, dependency-free micro-bench harness exposing the subset of the
//! `criterion` API the `katme-bench` targets use: benchmark groups, per-group
//! warm-up/measurement/sample settings, [`Throughput::Elements`], and
//! `b.iter(..)` timing loops.
//!
//! The workspace builds offline with zero external dependencies, so this
//! in-tree crate shadows the crates.io `criterion` name via a path
//! dependency. Statistics are intentionally simple — per-sample means with a
//! min/median/max summary — because the repository's experiment binaries in
//! `katme-harness` are the primary measurement surface; these bench targets
//! exist for quick relative comparisons (`cargo bench -p katme-bench`).
//!
//! Set `KATME_BENCH_FAST=1` to clamp warm-up/measurement windows for smoke
//! runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How work per iteration is reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly: first to warm up, then for `sample_count`
    /// timed samples. A `black_box` guards against the result being
    /// optimized out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibration of iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_count as f64;
        self.iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Identity function that defeats constant folding (`std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up = time;
        self
    }

    /// Set the total measurement window.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time;
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id, |b| routine(b));
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.run(&id.id, |b| routine(b, input));
        self
    }

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let fast = std::env::var_os("KATME_BENCH_FAST").is_some();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: if fast { 2 } else { self.sample_count },
            warm_up: if fast {
                Duration::from_millis(20)
            } else {
                self.warm_up
            },
            measurement: if fast {
                Duration::from_millis(60)
            } else {
                self.measurement
            },
        };
        routine(&mut bencher);
        if bencher.samples.is_empty() {
            println!(
                "{}/{id:<40} (no samples — b.iter was not called)",
                self.name
            );
            return;
        }
        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let label = format!("{}/{}", self.name, id);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / median)
            }
            None => String::new(),
        };
        println!(
            "{label:<56} {:>12} [{} .. {}]{rate}",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a new benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(1),
            sample_count: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group("bench");
        group.bench_function(id.id.as_str(), |b| routine(b));
        self
    }
}

/// Bundle benchmark functions under one name (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        std::env::set_var("KATME_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        drop(group);
        std::env::remove_var("KATME_BENCH_FAST");
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
