//! Stand-in for the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::SmallRng`]/[`rngs::StdRng`], [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`]/[`SeedableRng::from_entropy`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The workspace builds offline with zero external dependencies, so this
//! in-tree crate shadows the crates.io `rand` name via a path dependency. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic per
//! seed, high-quality, and identical across platforms. Streams are *not*
//! bit-compatible with crates.io `rand`; nothing in the workspace relies on
//! the exact sequences, only on determinism per seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random-number generators.
pub mod rngs {
    /// xoshiro256++ generator (the small, fast, non-crypto default).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    /// The "standard" generator; aliased to the same engine here.
    pub type StdRng = SmallRng;
}

use rngs::SmallRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from ambient entropy (system time + address-space noise — this
    /// stand-in has no OS RNG dependency).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xdead_beef);
        let stack_probe = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(32))
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

/// Values that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample(raw: u64) -> Self;
}

impl Standard for u64 {
    fn sample(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    fn sample(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (matches rand's `Standard`).
    fn sample(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Sample a value uniformly from this range.
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_raw() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_raw() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng.next_raw());
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Sample a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;

    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl Rng for SmallRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_raw())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, SmallRng};

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle(&mut self, rng: &mut SmallRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut SmallRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-3..3i32);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle should change the order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
