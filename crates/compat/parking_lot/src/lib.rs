//! Std-backed stand-in for the subset of the `parking_lot` API this
//! workspace uses (`Mutex::lock`, `RwLock::read`/`write`, all non-poisoning).
//!
//! The workspace builds offline with zero external dependencies, so this
//! in-tree crate shadows the crates.io `parking_lot` name via a path
//! dependency. Poisoning is neutralized the way `parking_lot` semantics
//! expect: a panicking holder does not poison the lock for later users.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning condition variable.
///
/// API note: unlike `parking_lot::Condvar` (whose `wait` takes `&mut
/// MutexGuard`), this shim keeps std's move-the-guard signatures — the
/// in-tree callers are written against this shape, and it avoids unsafe
/// guard surgery while staying std-backed.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting. Never poisons.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `timeout` elapses. Returns the re-acquired
    /// guard and `true` when the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                let (guard, result) = poisoned.into_inner();
                (guard, result.timed_out())
            }
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_a_waiter_and_times_out() {
        let pair = std::sync::Arc::new((Mutex::new(0u64), Condvar::new()));
        let waiter = {
            let pair = std::sync::Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut guard = lock.lock();
                while *guard == 0 {
                    guard = cv.wait(guard);
                }
                *guard
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = 7;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 7);
        // Timed wait on a never-notified condvar reports the timeout.
        let (lock, cv) = &*pair;
        let (_guard, timed_out) = cv.wait_timeout(lock.lock(), std::time::Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }
}
