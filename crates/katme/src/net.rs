//! Connection-plane counters: the shared observability block a network
//! front end (see the `katme-server` crate) attaches to a [`Runtime`] so
//! socket-side activity shows up in [`StatsView`] and [`ShutdownReport`]
//! next to the executor's own counters.
//!
//! The facade defines only the *counters* here — the wire protocol, the
//! acceptor and the connection workers live in `katme-server`, which depends
//! on this crate (not the other way around). A server increments the shared
//! [`NetCounters`] block it registered through [`Runtime::attach_net`];
//! [`Runtime::stats`] and [`Runtime::shutdown`] snapshot it into a
//! [`NetView`], so shutdown under live connections is observable: accepted
//! versus dropped connections, protocol-level pushback events, and the byte
//! traffic either way.
//!
//! [`Runtime`]: crate::Runtime
//! [`StatsView`]: crate::StatsView
//! [`ShutdownReport`]: crate::ShutdownReport
//! [`Runtime::attach_net`]: crate::Runtime::attach_net
//! [`Runtime::stats`]: crate::Runtime::stats
//! [`Runtime::shutdown`]: crate::Runtime::shutdown

use std::sync::atomic::{AtomicU64, Ordering};

/// Live connection-plane counters, shared between a network front end (the
/// writer) and the runtime's stats path (the reader). All counters are
/// monotone except `connected`, which tracks the live
/// connection count, and `peak_inflight`, which is a
/// high-water mark.
#[derive(Debug, Default)]
pub struct NetCounters {
    accepted: AtomicU64,
    connected: AtomicU64,
    dropped: AtomicU64,
    pushback_busy: AtomicU64,
    pushback_shutdown: AtomicU64,
    frame_errors: AtomicU64,
    commands: AtomicU64,
    replies: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    peak_inflight: AtomicU64,
}

impl NetCounters {
    /// Fresh all-zero counter block.
    pub fn new() -> Self {
        NetCounters::default()
    }

    /// Record an accepted connection (bumps the live count too).
    pub fn connection_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.connected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection leaving (peer close, protocol error, shutdown).
    pub fn connection_closed(&self) {
        self.connected.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record a connection refused or torn down by the server itself
    /// (connection cap, protocol violation).
    pub fn connection_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` commands rejected with protocol-level `-BUSY` pushback.
    pub fn pushback_busy(&self, n: u64) {
        self.pushback_busy.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` commands rejected with `-SHUTDOWN` pushback.
    pub fn pushback_shutdown(&self, n: u64) {
        self.pushback_shutdown.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a framing violation (oversized frame, unknown opcode, ...).
    pub fn frame_error(&self) {
        self.frame_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` commands decoded off sockets.
    pub fn commands(&self, n: u64) {
        self.commands.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` replies written to sockets.
    pub fn replies(&self, n: u64) {
        self.replies.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` bytes read off sockets.
    pub fn bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` bytes written to sockets.
    pub fn bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the in-flight high-water mark to `inflight` if it exceeds the
    /// current peak (commands decoded but not yet replied to, per
    /// connection — the bounded-window back-pressure contract's observable).
    pub fn observe_inflight(&self, inflight: u64) {
        self.peak_inflight.fetch_max(inflight, Ordering::Relaxed);
    }

    /// Snapshot every counter into a plain-value [`NetView`].
    pub fn view(&self) -> NetView {
        NetView {
            accepted: self.accepted.load(Ordering::Relaxed),
            connected: self.connected.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            pushback_busy: self.pushback_busy.load(Ordering::Relaxed),
            pushback_shutdown: self.pushback_shutdown.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            peak_inflight: self.peak_inflight.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time snapshot of the connection plane, carried by
/// [`StatsView::net`](crate::StatsView::net) and
/// [`ShutdownReport::net`](crate::ShutdownReport::net).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetView {
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections currently live.
    pub connected: u64,
    /// Connections the server refused or tore down itself (connection cap,
    /// protocol violations).
    pub dropped: u64,
    /// Commands rejected with protocol-level `-BUSY` pushback (queue full).
    pub pushback_busy: u64,
    /// Commands rejected with `-SHUTDOWN` pushback.
    pub pushback_shutdown: u64,
    /// Framing violations observed (oversized frames, unknown opcodes).
    pub frame_errors: u64,
    /// Commands decoded off sockets.
    pub commands: u64,
    /// Replies written to sockets.
    pub replies: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// High-water mark of decoded-but-unreplied commands on any single
    /// connection — bounded by the server's in-flight window, which is the
    /// back-pressure contract (no unbounded reply buffering).
    pub peak_inflight: u64,
}

impl NetView {
    /// Total protocol-level pushback events (`-BUSY` plus `-SHUTDOWN`).
    pub fn pushback(&self) -> u64 {
        self.pushback_busy + self.pushback_shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_into_views() {
        let counters = NetCounters::new();
        counters.connection_opened();
        counters.connection_opened();
        counters.connection_closed();
        counters.connection_dropped();
        counters.pushback_busy(3);
        counters.pushback_shutdown(1);
        counters.frame_error();
        counters.commands(10);
        counters.replies(9);
        counters.bytes_in(100);
        counters.bytes_out(200);
        counters.observe_inflight(7);
        counters.observe_inflight(4); // lower: must not move the peak
        let view = counters.view();
        assert_eq!(view.accepted, 2);
        assert_eq!(view.connected, 1);
        assert_eq!(view.dropped, 1);
        assert_eq!(view.pushback_busy, 3);
        assert_eq!(view.pushback_shutdown, 1);
        assert_eq!(view.pushback(), 4);
        assert_eq!(view.frame_errors, 1);
        assert_eq!(view.commands, 10);
        assert_eq!(view.replies, 9);
        assert_eq!(view.bytes_in, 100);
        assert_eq!(view.bytes_out, 200);
        assert_eq!(view.peak_inflight, 7);
    }
}
