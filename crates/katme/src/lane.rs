//! The lane controller: drives multi-version lane designation from the
//! adaptation plane's epoch cadence.
//!
//! Once per adaptation epoch (piggy-backed on the scheduler's contention
//! sampling, so the lane plane adds no thread and no timer of its own) the
//! controller diffs the STM's key-range telemetry against its previous
//! snapshot, prices lane flips with
//! [`katme_core::cost::lane_candidates`] — predicted wasted-work saved
//! versus a measured flip cost, the same currency the repartition planner
//! uses — and applies the profitable ones to the shared
//! [`LaneTable`]. Designated ranges stop aborting (the MV lane re-executes
//! dependents instead), which is exactly the hysteresis the reverse flip
//! needs: only the cold-traffic trigger can undesignate.

use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

use katme_core::cost::{lane_candidates, LaneConfig};
use katme_core::lane::LaneTable;
use katme_stm::telemetry::{KeyRangeSnapshot, KeyRangeTelemetry};

/// Prior estimate of one lane flip's duration, before any flip has been
/// timed (publishing a handful of ranges under an uncontended lock).
const FLIP_SECONDS_PRIOR: f64 = 50e-6;

/// EWMA weight for observed flip durations.
const FLIP_ALPHA: f64 = 0.3;

struct ControllerState {
    /// Telemetry snapshot at the previous epoch boundary; `None` until the
    /// first epoch (and again right after a rebucket, whose fresh geometry
    /// makes the old baseline undiffable).
    baseline: Option<KeyRangeSnapshot>,
    /// Wall-clock start of the current epoch.
    epoch_started: Instant,
    /// Measured flip cost (seconds, EWMA over applied flips).
    flip_seconds: f64,
}

/// Epoch-driven designation logic behind [`crate::Builder::mv_lane`].
pub(crate) struct LaneController {
    table: Arc<LaneTable>,
    telemetry: Arc<KeyRangeTelemetry>,
    config: LaneConfig,
    state: Mutex<ControllerState>,
}

impl LaneController {
    pub(crate) fn new(table: Arc<LaneTable>, telemetry: Arc<KeyRangeTelemetry>) -> Self {
        LaneController {
            table,
            telemetry,
            config: LaneConfig::default(),
            state: Mutex::new(ControllerState {
                baseline: None,
                epoch_started: Instant::now(),
                flip_seconds: FLIP_SECONDS_PRIOR,
            }),
        }
    }

    /// Evaluate one epoch: diff the telemetry, price the lane flips, apply
    /// the profitable ones. Called from the scheduler's contention-source
    /// closure, so it runs at most once per adaptation epoch and never on
    /// the dispatch hot path.
    pub(crate) fn on_epoch(&self) {
        let snapshot = self.telemetry.snapshot();
        let mut state = self.state.lock().expect("lane controller lock poisoned");

        let delta = match &state.baseline {
            // A rebucket between epochs changes the geometry and zeroes the
            // counters; re-baseline and let the next epoch price flips.
            Some(baseline)
                if baseline.bounds() == snapshot.bounds()
                    && baseline.edges() == snapshot.edges() =>
            {
                snapshot.since(baseline)
            }
            _ => {
                state.baseline = Some(snapshot);
                state.epoch_started = Instant::now();
                return;
            }
        };
        // Adaptation epochs are tens of milliseconds at minimum; the floor
        // keeps a degenerate (back-to-back) epoch from inflating the
        // service rate — and with it the priced flip cost — unboundedly.
        let epoch_seconds = state.epoch_started.elapsed().as_secs_f64().max(0.01);
        state.baseline = Some(snapshot);
        state.epoch_started = Instant::now();

        let service_rate = (delta.total_commits() + delta.total_aborts()) as f64 / epoch_seconds;
        let buckets: Vec<(u64, u64, u64, u64)> = (0..delta.buckets().len())
            .map(|index| {
                let (lo, hi) = delta.bucket_range(index);
                let (commits, aborts) = delta.buckets()[index];
                (lo, hi, commits, aborts)
            })
            .collect();
        let plans = lane_candidates(
            &buckets,
            &self.table.ranges(),
            state.flip_seconds,
            service_rate,
            &self.config,
        );
        for plan in plans.iter().filter(|plan| plan.profitable()) {
            let started = Instant::now();
            let applied = if plan.designate {
                self.table.designate(plan.range.0, plan.range.1)
            } else {
                self.table.undesignate(plan.range.0, plan.range.1)
            };
            if applied {
                let observed = started.elapsed().as_secs_f64();
                state.flip_seconds += FLIP_ALPHA * (observed - state.flip_seconds);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry() -> Arc<KeyRangeTelemetry> {
        Arc::new(KeyRangeTelemetry::new(0, 999, 10))
    }

    #[test]
    fn first_epoch_only_baselines() {
        let table = Arc::new(LaneTable::new());
        let telemetry = telemetry();
        let controller = LaneController::new(Arc::clone(&table), Arc::clone(&telemetry));
        telemetry.record(350, 100, 5_000);
        controller.on_epoch();
        assert!(table.ranges().is_empty(), "no delta to price yet");
    }

    #[test]
    fn contended_range_gets_designated_on_the_second_epoch() {
        let table = Arc::new(LaneTable::new());
        let telemetry = telemetry();
        let controller = LaneController::new(Arc::clone(&table), Arc::clone(&telemetry));
        controller.on_epoch(); // baseline
                               // One bucket carries essentially all the abort mass.
        telemetry.record(350, 1_000, 50_000);
        telemetry.record(50, 1_000, 10);
        telemetry.record(750, 1_000, 10);
        controller.on_epoch();
        let ranges = table.ranges();
        assert_eq!(ranges.len(), 1, "{ranges:?}");
        let (lo, hi) = ranges[0];
        assert!(lo <= 350 && 350 <= hi, "{ranges:?}");
    }

    #[test]
    fn uniform_contention_keeps_the_lane_cold() {
        let table = Arc::new(LaneTable::new());
        let telemetry = telemetry();
        let controller = LaneController::new(Arc::clone(&table), Arc::clone(&telemetry));
        controller.on_epoch();
        for key in (50..1000).step_by(100) {
            telemetry.record(key, 1_000, 500);
        }
        controller.on_epoch();
        assert!(table.ranges().is_empty(), "{:?}", table.ranges());
    }

    #[test]
    fn cold_designated_range_is_released() {
        let table = Arc::new(LaneTable::new());
        let telemetry = telemetry();
        let controller = LaneController::new(Arc::clone(&table), Arc::clone(&telemetry));
        table.designate(300, 399);
        controller.on_epoch();
        // Traffic everywhere but the designated range.
        for key in [50, 150, 550, 750, 950] {
            telemetry.record(key, 10_000, 0);
        }
        controller.on_epoch();
        assert!(table.ranges().is_empty(), "{:?}", table.ranges());
    }

    #[test]
    fn rebucket_re_baselines_instead_of_panicking() {
        let table = Arc::new(LaneTable::new());
        let telemetry = telemetry();
        let controller = LaneController::new(Arc::clone(&table), Arc::clone(&telemetry));
        controller.on_epoch();
        telemetry.record(350, 1_000, 50_000);
        telemetry.rebucket((1..10).map(|i| i * 37).collect());
        controller.on_epoch(); // geometry changed: must re-baseline quietly
        assert!(table.ranges().is_empty());
        telemetry.record(350, 1_000, 50_000);
        controller.on_epoch();
        assert_eq!(table.ranges().len(), 1, "pricing resumes after re-baseline");
    }
}
