//! # katme — the unified facade of the KATME reproduction
//!
//! One ergonomic, misuse-resistant entry point to the system described in
//! *"A Key-based Adaptive Transactional Memory Executor"* (Bai, Shen, Zhang,
//! Scherer, Ding, Scott — IPDPS 2007): [`Katme::builder`] composes the STM
//! substrate, the key-based schedulers, the task queues, the worker pool and
//! the statistics into one validated [`Runtime`].
//!
//! * Tasks route themselves: anything implementing [`KeyedTask`] can be
//!   submitted, and [`WithKey`] attaches an external key mapping (hash
//!   buckets, constant hot-spot keys) to any payload.
//! * [`Runtime::submit`] returns a typed [`TaskHandle`] whose result can be
//!   awaited or polled; [`Runtime::try_submit`] reports back-pressure as
//!   [`KatmeError::QueueFull`] and shutdown as [`KatmeError::ShuttingDown`]
//!   instead of blocking or silently dropping.
//! * [`Runtime::stats`] exposes a live [`StatsView`] — queue depths,
//!   per-worker throughput, STM abort rates, scheduler repartitions — at any
//!   point during the run, not only in the terminal [`ShutdownReport`].
//! * All three executor models of the paper's Figure 1 (no executor,
//!   centralized dispatcher, parallel executors) are one
//!   [`Builder::model`] call apart.
//!
//! ```
//! use katme::{Katme, KeyedTask, TxnKey};
//!
//! // A task type that knows its own scheduling key.
//! struct Transfer { account: u64, amount: i64 }
//! impl KeyedTask for Transfer {
//!     fn key(&self) -> TxnKey { self.account }
//! }
//!
//! let runtime = Katme::builder()
//!     .workers(4)
//!     .key_range(0, 1023)
//!     .build(|_worker, transfer: Transfer| transfer.amount * 2)
//!     .unwrap();
//!
//! let handle = runtime.submit(Transfer { account: 7, amount: 21 }).unwrap();
//! assert_eq!(handle.wait().unwrap(), 42);
//!
//! let live = runtime.stats();
//! assert_eq!(live.completed, 1);
//! let report = runtime.shutdown();
//! assert_eq!(report.completed, 1);
//! ```
//!
//! * The adaptive scheduler can run a **continuous adaptation plane**:
//!   [`Builder::adaptation_interval`], [`Builder::drift_threshold`] and
//!   [`Builder::max_repartitions`] enable epoch-based re-adaptation driven
//!   by key-histogram drift and STM contention telemetry (with hysteresis,
//!   so stationary load never churns). Each republished partition appears
//!   in the [`StatsView`] adaptation log with its generation and trigger
//!   cause.
//! * With [`Builder::cost_model`], adaptation upgrades from threshold
//!   triggers to the **predictive cost plane**: every epoch, candidate
//!   plans (boundary moves, width changes, joint changes) are scored by
//!   predicted next-epoch abort + queueing cost, and the best one is
//!   adopted only when its trusted gain exceeds the *measured* (EWMA
//!   calibrated) cost of the swap itself. Cost-model swaps are logged with
//!   their `predicted_gain`/`swap_cost`, and [`StatsView::cost_model`]
//!   exposes the calibration, trust, and prediction-error state.
//! * The whole submit→schedule→enqueue→drain path is **batch-first**:
//!   [`Runtime::submit_batch`] hands over a `Vec` of tasks, the scheduler
//!   routes all keys in one pass, each worker queue is crossed with a single
//!   lock round-trip, and workers drain up to [`Builder::batch_size`] tasks
//!   per wakeup. Partial failures come back as a typed
//!   [`BatchSubmitError`] with the accepted handles and the rejected
//!   remainder. The single-task API is the batch-of-one special case.
//!
//! The building blocks remain available underneath — re-exported as
//! [`core`], [`stm`], [`queue`], [`collections`] and [`workload`] — for
//! custom pipelines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod driver;
pub mod durability;
mod error;
mod lane;
pub mod net;
mod runtime;
mod task;

pub use builder::{Builder, Katme};
pub use driver::{apply_spec, spec_payload, Driver, DriverConfig, RunResult, WindowReport};
pub use durability::{
    DictState, DurabilityPlane, DurableState, RecoveryReport, WalSink, DEFAULT_CHECKPOINT_INTERVAL,
};
pub use error::{BuilderError, KatmeError};
pub use net::{NetCounters, NetView};
pub use runtime::{BatchSubmitError, Runtime, ShutdownReport, StatsView, StatsWindow};
pub use task::{Durable, KeyedTask, TaskHandle, WithKey};

// The composed layers, re-exported whole for advanced use…
pub use katme_collections as collections;
pub use katme_core as core;
pub use katme_durability as wal;
pub use katme_queue as queue;
pub use katme_stm as stm;
pub use katme_workload as workload;

// …and the names almost every user of the facade touches.
pub use katme_collections::StructureKind;
pub use katme_core::adaptive::AdaptiveKeyScheduler;
pub use katme_core::cost::{CalibrationView, CostModelConfig, CostModelView, CostPolicy};
pub use katme_core::drift::{
    AdaptationCause, AdaptationConfig, AdaptationEvent, ContentionSample, ContentionSource,
};
pub use katme_core::key::{
    BucketKeyMapper, ConstantKeyMapper, DictKeyMapper, KeyBounds, KeyMapper, TxnKey,
};
pub use katme_core::lane::LaneTable;
pub use katme_core::models::ExecutorModel;
pub use katme_core::partition::{KeyPartition, PartitionGeneration, PartitionTable};
pub use katme_core::scheduler::{FixedKeyScheduler, RoundRobinScheduler, Scheduler, SchedulerKind};
pub use katme_core::stats::LoadBalance;
pub use katme_durability::{CrashPoint, DurabilityView, WalConfig};
pub use katme_queue::QueueKind;
pub use katme_stm::{
    run_block, run_block_with, ClockMode, CmKind, KeyRangeSnapshot, KeyRangeTelemetry,
    MvBlockOutcome, MvBlockReport, MvOp, Stm, StmConfig, StmStatsSnapshot, TVar, Transaction,
    TxError,
};
pub use katme_workload::{ArrivalRamp, DistributionKind, OpGenerator, OpKind, RampPhase, TxnSpec};

/// Commonly used items.
pub mod prelude {
    pub use crate::builder::{Builder, Katme};
    pub use crate::driver::{Driver, DriverConfig, RunResult};
    pub use crate::durability::{DictState, DurableState, RecoveryReport};
    pub use crate::error::KatmeError;
    pub use crate::net::{NetCounters, NetView};
    pub use crate::runtime::{BatchSubmitError, Runtime, ShutdownReport, StatsView};
    pub use crate::task::{Durable, KeyedTask, TaskHandle, WithKey};
    pub use katme_core::key::{KeyBounds, TxnKey};
    pub use katme_core::models::ExecutorModel;
    pub use katme_core::scheduler::SchedulerKind;
    pub use katme_durability::{DurabilityView, WalConfig};
    pub use katme_queue::QueueKind;
    pub use katme_stm::{CmKind, Stm, StmConfig, TVar};
}
