//! The unified error type of the facade.

use katme_core::scheduler::SchedulerKind;

/// A builder misconfiguration, rejected by
/// [`Builder::build`](crate::Builder::build) before any thread is spawned.
///
/// Typed (rather than stringly) so callers can match on the exact knob that
/// was wrong; the [`std::fmt::Display`] form still names the knob and the
/// offending value for log lines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuilderError {
    /// `workers(0)`.
    ZeroWorkers,
    /// `producers(0)`.
    ZeroProducers,
    /// `key_range(min, max)` with `min > max`.
    InvertedKeyBounds {
        /// Configured lower bound.
        min: u64,
        /// Configured upper bound.
        max: u64,
    },
    /// `max_queue_depth(Some(0))` — would reject every submission.
    ZeroQueueDepth,
    /// `batch_size(0)` — workers drain up to `batch_size` tasks per wakeup.
    ZeroBatchSize,
    /// A `scheduler_instance` that routes to zero workers.
    SchedulerInstanceZeroWorkers,
    /// `adaptation_log_capacity(0)`.
    ZeroAdaptationLogCapacity,
    /// Elastic scaling combined with `scheduler_instance` (configure the
    /// instance's worker range directly instead).
    ElasticSchedulerInstance,
    /// Elastic scaling with a non-adaptive scheduler.
    ElasticNeedsAdaptive {
        /// The scheduler that was configured.
        scheduler: SchedulerKind,
    },
    /// Elastic scaling with the no-executor model (nothing to resize).
    ElasticNeedsPool,
    /// `min_workers(0)`.
    ZeroMinWorkers,
    /// `min_workers > max_workers`.
    InvertedWorkerRange {
        /// Configured lower bound.
        min: usize,
        /// Configured upper bound.
        max: usize,
    },
    /// Adaptation knobs combined with `scheduler_instance` (configure the
    /// instance's `AdaptationConfig` directly instead).
    AdaptationSchedulerInstance,
    /// Adaptation knobs with a non-adaptive scheduler.
    AdaptationNeedsAdaptive {
        /// The scheduler that was configured.
        scheduler: SchedulerKind,
    },
    /// `adaptation_interval(0)` — the epoch length must be at least 1.
    ZeroAdaptationInterval,
    /// `drift_threshold` outside `(0, 1]` (a total-variation distance).
    DriftThresholdOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// The durability plane failed to open (or recover) its write-ahead
    /// log. Carries the underlying I/O error's message; the runtime refuses
    /// to start rather than silently run volatile.
    Durability {
        /// Display form of the I/O error from `Wal::open` / recovery.
        message: String,
    },
    /// `durable_state` without [`Builder::durability`](crate::Builder::durability)
    /// — a checkpoint provider with no log to checkpoint against is a
    /// configuration mistake, not a no-op.
    DurableStateWithoutWal,
    /// `mv_parallelism(0)` — an MV block needs at least one execution lane.
    ZeroMvParallelism,
    /// `mv_range(lo, hi)` with `lo > hi`.
    InvertedMvRange {
        /// Configured lower bound.
        lo: u64,
        /// Configured upper bound.
        hi: u64,
    },
}

impl std::fmt::Display for BuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuilderError::ZeroWorkers => f.write_str("workers must be at least 1"),
            BuilderError::ZeroProducers => f.write_str("producers must be at least 1"),
            BuilderError::InvertedKeyBounds { min, max } => {
                write!(f, "inverted key bounds: min {min} > max {max}")
            }
            BuilderError::ZeroQueueDepth => f.write_str(
                "max_queue_depth of 0 would reject every submission; use None to disable \
                 back-pressure",
            ),
            BuilderError::ZeroBatchSize => f.write_str(
                "batch_size must be at least 1 (workers drain up to batch_size tasks per wakeup)",
            ),
            BuilderError::SchedulerInstanceZeroWorkers => {
                f.write_str("scheduler instance routes to 0 workers")
            }
            BuilderError::ZeroAdaptationLogCapacity => {
                f.write_str("adaptation_log_capacity must be at least 1")
            }
            BuilderError::ElasticSchedulerInstance => f.write_str(
                "elastic worker scaling cannot be combined with scheduler_instance; configure \
                 the instance's worker range directly",
            ),
            BuilderError::ElasticNeedsAdaptive { scheduler } => write!(
                f,
                "elastic worker scaling requires the adaptive scheduler, not '{scheduler}'"
            ),
            BuilderError::ElasticNeedsPool => f.write_str(
                "elastic worker scaling requires a worker pool; the no-executor model executes \
                 inline in the submitting thread",
            ),
            BuilderError::ZeroMinWorkers => f.write_str("min_workers must be at least 1"),
            BuilderError::InvertedWorkerRange { min, max } => {
                write!(
                    f,
                    "inverted worker range: min_workers {min} > max_workers {max}"
                )
            }
            BuilderError::AdaptationSchedulerInstance => f.write_str(
                "adaptation knobs cannot be combined with scheduler_instance; configure the \
                 instance's AdaptationConfig directly",
            ),
            BuilderError::AdaptationNeedsAdaptive { scheduler } => write!(
                f,
                "adaptation knobs require the adaptive scheduler, not '{scheduler}'"
            ),
            BuilderError::ZeroAdaptationInterval => {
                f.write_str("adaptation_interval must be at least 1")
            }
            BuilderError::DriftThresholdOutOfRange { value } => {
                write!(f, "drift_threshold must lie in (0, 1], got {value}")
            }
            BuilderError::Durability { message } => {
                write!(f, "durability plane failed to open its log: {message}")
            }
            BuilderError::DurableStateWithoutWal => f.write_str(
                "durable_state requires durability(path); there is no log to checkpoint against",
            ),
            BuilderError::ZeroMvParallelism => f.write_str(
                "mv_parallelism must be at least 1 (the MV block's first-pass execution lanes)",
            ),
            BuilderError::InvertedMvRange { lo, hi } => {
                write!(f, "inverted mv_range: lo {lo} > hi {hi}")
            }
        }
    }
}

impl std::error::Error for BuilderError {}

/// Everything that can go wrong when configuring or feeding a
/// [`Runtime`](crate::Runtime).
#[derive(Debug, Clone, PartialEq)]
pub enum KatmeError {
    /// The builder was given an invalid combination of settings; the typed
    /// [`BuilderError`] names the offending knob.
    InvalidConfig(BuilderError),
    /// A non-blocking submission found the destination queue at its
    /// `max_queue_depth` bound.
    QueueFull,
    /// The runtime has been stopped (or is tearing down); no new work is
    /// accepted and producers blocked on back-pressure return promptly.
    ShuttingDown,
    /// The task was accepted but the runtime shut down before a worker
    /// executed it (only possible with `drain_on_shutdown(false)`).
    TaskAbandoned,
    /// A bounded wait on a [`TaskHandle`](crate::TaskHandle) elapsed before
    /// the task completed.
    Timeout,
}

impl From<BuilderError> for KatmeError {
    fn from(error: BuilderError) -> Self {
        KatmeError::InvalidConfig(error)
    }
}

impl std::fmt::Display for KatmeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KatmeError::InvalidConfig(error) => write!(f, "invalid configuration: {error}"),
            KatmeError::QueueFull => f.write_str("task queue is at its depth bound"),
            KatmeError::ShuttingDown => f.write_str("runtime is shutting down"),
            KatmeError::TaskAbandoned => f.write_str("task was abandoned in a queue at shutdown"),
            KatmeError::Timeout => f.write_str("timed out waiting for the task result"),
        }
    }
}

impl std::error::Error for KatmeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KatmeError::InvalidConfig(BuilderError::ZeroWorkers)
            .to_string()
            .contains("workers"));
        assert!(KatmeError::QueueFull.to_string().contains("depth"));
        assert!(KatmeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn builder_errors_are_typed_and_matchable() {
        let error = KatmeError::from(BuilderError::DriftThresholdOutOfRange { value: 1.5 });
        assert!(
            matches!(
                error,
                KatmeError::InvalidConfig(BuilderError::DriftThresholdOutOfRange { value })
                    if value == 1.5
            ),
            "{error}"
        );
        assert!(error.to_string().contains("drift_threshold"));
        assert_eq!(
            BuilderError::InvertedWorkerRange { min: 4, max: 2 }.to_string(),
            "inverted worker range: min_workers 4 > max_workers 2"
        );
        assert!(BuilderError::ZeroAdaptationInterval
            .to_string()
            .contains("adaptation_interval"));
    }
}
