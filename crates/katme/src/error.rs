//! The unified error type of the facade.

/// Everything that can go wrong when configuring or feeding a
/// [`Runtime`](crate::Runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KatmeError {
    /// The builder was given an invalid combination of settings; the message
    /// names the offending knob.
    InvalidConfig(String),
    /// A non-blocking submission found the destination queue at its
    /// `max_queue_depth` bound.
    QueueFull,
    /// The runtime has been stopped (or is tearing down); no new work is
    /// accepted and producers blocked on back-pressure return promptly.
    ShuttingDown,
    /// The task was accepted but the runtime shut down before a worker
    /// executed it (only possible with `drain_on_shutdown(false)`).
    TaskAbandoned,
    /// A bounded wait on a [`TaskHandle`](crate::TaskHandle) elapsed before
    /// the task completed.
    Timeout,
}

impl std::fmt::Display for KatmeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KatmeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            KatmeError::QueueFull => f.write_str("task queue is at its depth bound"),
            KatmeError::ShuttingDown => f.write_str("runtime is shutting down"),
            KatmeError::TaskAbandoned => f.write_str("task was abandoned in a queue at shutdown"),
            KatmeError::Timeout => f.write_str("timed out waiting for the task result"),
        }
    }
}

impl std::error::Error for KatmeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KatmeError::InvalidConfig("zero workers".into())
            .to_string()
            .contains("zero workers"));
        assert!(KatmeError::QueueFull.to_string().contains("depth"));
        assert!(KatmeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
