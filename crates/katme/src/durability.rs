//! The durability plane: WAL sink, checkpointer, and recovery glue.
//!
//! [`Builder::durability`](crate::Builder::durability) turns a volatile
//! runtime into a durable one. This module holds the three pieces the
//! builder wires together:
//!
//! * [`WalSink`] — the [`katme_stm::DurabilitySink`] implementation that
//!   connects the STM commit path to the group-commit
//!   [`Wal`]. `log_commit` is a cheap enqueue made
//!   while the committing transaction still owns its write set (so log
//!   order respects dependency order); `wait_durable` blocks after release
//!   until the record's group is fsynced, and times the wait into the
//!   per-thread stall accumulator the executor drains.
//! * [`DurableState`] — what the application exposes to the checkpointer:
//!   a snapshot encoder plus the restore/replay halves of recovery. The
//!   dictionary structures get a ready-made implementation in
//!   [`DictState`].
//! * [`DurabilityPlane`] — the runtime-owned bundle: the [`Wal`], the
//!   background checkpointer thread, and the recovery tallies surfaced in
//!   [`StatsView::durability`](crate::StatsView).
//!
//! ## The fuzzy checkpoint protocol
//!
//! The checkpointer never stops the world. Each round it calls
//! [`Wal::begin_checkpoint`] to pin a log position `P`, snapshots the
//! [`DurableState`] while commits keep flowing, and persists the snapshot
//! as covering `P`. The snapshot may therefore contain the effects of
//! records *later* than `P` — that is safe because every logged operation
//! is idempotent per key (last-writer-wins), so recovery's replay of
//! records after `P` converges to the same state regardless of how much of
//! them the fuzzy snapshot already absorbed. What the snapshot can never
//! miss is a record `seq <= P`: `begin_checkpoint` reads the position
//! after those records' transactions published their writes, and STM
//! publication happens-before lock release happens-before any later read.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use katme_collections::{apply_op, decode_op, decode_snapshot, encode_snapshot, TxDictionary};
use katme_durability::{DurabilityView, RecoveredLog, Wal, WalConfig};
use katme_stm::DurabilitySink;

/// Default interval between checkpointer rounds.
pub const DEFAULT_CHECKPOINT_INTERVAL: Duration = Duration::from_millis(500);

/// Application state the durability plane can checkpoint and recover.
///
/// `snapshot` runs concurrently with commits (see the module docs for why
/// that is safe); `restore` and `replay` run during
/// [`Builder::build`](crate::Builder::build), strictly before the runtime
/// accepts any work.
pub trait DurableState: Send + Sync {
    /// Encode the current state for a checkpoint payload.
    fn snapshot(&self) -> Vec<u8>;

    /// Load a checkpoint payload produced by [`DurableState::snapshot`]
    /// (recovery, called at most once, before any `replay`).
    fn restore(&self, payload: &[u8]) -> Result<(), String>;

    /// Re-apply one logged redo record (recovery, called once per surviving
    /// record past the checkpoint position, in log order).
    fn replay(&self, payload: &[u8]) -> Result<(), String>;
}

/// [`DurableState`] over any transactional dictionary, using the
/// `katme-collections` wire codec: snapshots are `encode_snapshot` of
/// [`Dictionary::entries`](katme_collections::Dictionary::entries),
/// records are `DictOp`s.
pub struct DictState {
    dict: Arc<dyn TxDictionary>,
}

impl DictState {
    /// Wrap a dictionary for checkpointing and recovery.
    pub fn new(dict: Arc<dyn TxDictionary>) -> Self {
        DictState { dict }
    }
}

impl DurableState for DictState {
    fn snapshot(&self) -> Vec<u8> {
        encode_snapshot(&self.dict.entries())
    }

    fn restore(&self, payload: &[u8]) -> Result<(), String> {
        for (key, value) in decode_snapshot(payload)? {
            self.dict.insert(key, value);
        }
        Ok(())
    }

    fn replay(&self, payload: &[u8]) -> Result<(), String> {
        let op = decode_op(payload)?;
        apply_op(&*self.dict, &op);
        Ok(())
    }
}

impl std::fmt::Debug for DictState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DictState")
            .field("dict", &self.dict.name())
            .finish()
    }
}

/// The [`DurabilitySink`] bridging the STM commit path to the group-commit
/// WAL. Commit waits are timed into the executing thread's stall
/// accumulator ([`katme_stm::durable::add_group_wait_nanos`]) so the worker
/// telemetry reports group-commit blocking as its own category.
#[derive(Debug)]
pub struct WalSink {
    wal: Arc<Wal>,
}

impl WalSink {
    /// Build a sink over a shared WAL handle.
    pub fn new(wal: Arc<Wal>) -> Self {
        WalSink { wal }
    }
}

impl DurabilitySink for WalSink {
    fn log_commit(&self, payload: &[u8]) -> u64 {
        self.wal.enqueue(payload)
    }

    fn wait_durable(&self, ticket: u64) {
        let started = Instant::now();
        // An I/O error in the writer thread means durability is lost for
        // good; acknowledging the commit anyway would violate the plane's
        // core invariant (no acknowledged commit may be lost), so fail
        // loudly instead.
        self.wal
            .wait_durable(ticket)
            .expect("WAL writer failed; cannot acknowledge a non-durable commit");
        let nanos = started.elapsed().as_nanos() as u64;
        katme_stm::durable::add_group_wait_nanos(nanos);
        self.wal.record_group_wait(nanos);
    }
}

/// Checkpointer control block: interval timing plus a prompt-stop flag.
struct CheckpointControl {
    stop: AtomicBool,
    gate: Mutex<()>,
    wake: Condvar,
}

/// Recovery tallies from the `Wal::open` + restore + replay sequence run
/// inside [`Builder::build`](crate::Builder::build).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a checkpoint snapshot was found and restored.
    pub restored_checkpoint: bool,
    /// Log position the restored checkpoint covered (0 without one).
    pub checkpoint_position: u64,
    /// Redo records replayed past the checkpoint position.
    pub replayed: u64,
    /// Bytes of torn log tail truncated during recovery.
    pub truncated_bytes: u64,
}

/// The runtime-owned durability bundle: WAL handle, background
/// checkpointer, and the recovery report.
pub struct DurabilityPlane {
    wal: Arc<Wal>,
    state: Option<Arc<dyn DurableState>>,
    control: Arc<CheckpointControl>,
    checkpointer: Mutex<Option<JoinHandle<()>>>,
    recovery: RecoveryReport,
}

impl DurabilityPlane {
    /// Open (and recover) the WAL at `config.dir`, restoring `state` from
    /// the latest checkpoint and replaying the surviving log suffix, then
    /// start the periodic checkpointer (when a `state` is present).
    ///
    /// Runs strictly before the runtime accepts work: the caller only
    /// constructs the runtime after this returns.
    pub fn open(
        config: WalConfig,
        state: Option<Arc<dyn DurableState>>,
        checkpoint_interval: Duration,
    ) -> io::Result<Self> {
        let (wal, recovered) = Wal::open(config)?;
        let recovery = Self::recover(&recovered, state.as_deref())?;
        let wal = Arc::new(wal);
        wal.stats()
            .replayed
            .store(recovery.replayed, Ordering::Relaxed);

        let control = Arc::new(CheckpointControl {
            stop: AtomicBool::new(false),
            gate: Mutex::new(()),
            wake: Condvar::new(),
        });
        let checkpointer = state.as_ref().map(|state| {
            let wal = Arc::clone(&wal);
            let state = Arc::clone(state);
            let control = Arc::clone(&control);
            std::thread::Builder::new()
                .name("katme-checkpointer".into())
                .spawn(move || checkpoint_loop(wal, state, control, checkpoint_interval))
                .expect("failed to spawn checkpointer thread")
        });

        Ok(DurabilityPlane {
            wal,
            state,
            control,
            checkpointer: Mutex::new(checkpointer),
            recovery,
        })
    }

    fn recover(
        recovered: &RecoveredLog,
        state: Option<&dyn DurableState>,
    ) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport {
            restored_checkpoint: false,
            checkpoint_position: 0,
            replayed: 0,
            truncated_bytes: recovered.truncated_bytes,
        };
        let Some(state) = state else {
            // No state to recover into: the log survives for a later
            // embedder, but nothing is applied here.
            return Ok(report);
        };
        if let Some(checkpoint) = &recovered.checkpoint {
            state
                .restore(&checkpoint.payload)
                .map_err(io::Error::other)?;
            report.restored_checkpoint = true;
            report.checkpoint_position = checkpoint.position;
        }
        for (_seq, payload) in &recovered.records {
            state.replay(payload).map_err(io::Error::other)?;
            report.replayed += 1;
        }
        Ok(report)
    }

    /// The shared WAL handle (the builder attaches a [`WalSink`] over it).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// What recovery found and applied when the plane opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Current durability counters (appends, fsyncs, group sizes,
    /// checkpoint lag, ...).
    pub fn view(&self) -> DurabilityView {
        self.wal.view()
    }

    /// Take one checkpoint right now (also called by the background
    /// checkpointer every interval). No-op without a [`DurableState`].
    pub fn checkpoint_now(&self) -> io::Result<()> {
        let Some(state) = &self.state else {
            return Ok(());
        };
        take_checkpoint(&self.wal, state.as_ref())
    }

    /// Stop the checkpointer, flush every enqueued record to stable
    /// storage, and shut the WAL writer down. Idempotent; also runs on
    /// drop. Called by the runtime *after* its workers have drained, so
    /// every acknowledged commit is already durable and this only covers
    /// the final unacknowledged tail.
    pub fn shutdown(&self) {
        {
            // Holding the gate around the store + notify pairs it with the
            // checkpointer's stop-check-then-wait (also under the gate), so
            // the wakeup cannot slip into the window before its first wait.
            let _gate = self.control.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.control.stop.store(true, Ordering::SeqCst);
            self.control.wake.notify_all();
        }
        if let Some(handle) = self
            .checkpointer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = handle.join();
        }
        let _ = self.wal.sync_all();
        self.wal.shutdown();
    }
}

impl Drop for DurabilityPlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for DurabilityPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityPlane")
            .field("recovery", &self.recovery)
            .field("view", &self.view())
            .finish()
    }
}

/// One fuzzy checkpoint round: pin the position, snapshot concurrently,
/// persist, prune.
fn take_checkpoint(wal: &Wal, state: &dyn DurableState) -> io::Result<()> {
    let position = wal.begin_checkpoint();
    let payload = state.snapshot();
    wal.commit_checkpoint(position, &payload)
}

fn checkpoint_loop(
    wal: Arc<Wal>,
    state: Arc<dyn DurableState>,
    control: Arc<CheckpointControl>,
    interval: Duration,
) {
    loop {
        {
            let guard = control.gate.lock().unwrap_or_else(|e| e.into_inner());
            // The stop flag is checked under the gate before waiting:
            // `shutdown` sets it and notifies while holding the same gate,
            // so the wakeup cannot be lost between this check and the wait.
            if control.stop.load(Ordering::SeqCst) {
                return;
            }
            // Interval pacing with a prompt-stop wakeup; spurious wakeups
            // just shorten one interval, which is harmless.
            let (_guard, _timeout) = control
                .wake
                .wait_timeout(guard, interval)
                .unwrap_or_else(|e| e.into_inner());
        }
        if control.stop.load(Ordering::SeqCst) {
            return;
        }
        // Nothing new since the last covered position: skip the round
        // instead of rewriting an identical snapshot.
        if wal.begin_checkpoint() <= wal.view().checkpoint_position && wal.view().checkpoints > 0 {
            continue;
        }
        if take_checkpoint(&wal, state.as_ref()).is_err() {
            // A failed checkpoint does not compromise the log (the previous
            // checkpoint plus full replay still recovers); retry next round.
            continue;
        }
    }
}

/// Re-export block used by the builder and the driver; kept here so the
/// rest of the facade has a single import path for durability names.
pub use katme_durability::{CrashPoint, DurabilityView as WalView};

#[cfg(test)]
mod tests {
    use super::*;
    use katme_collections::DictOp;
    use katme_stm::Stm;

    fn dict_state() -> (Arc<dyn TxDictionary>, DictState) {
        let stm = Stm::default();
        let dict: Arc<dyn TxDictionary> =
            Arc::new(katme_collections::HashTable::with_buckets(stm, 64));
        (Arc::clone(&dict), DictState::new(dict))
    }

    #[test]
    fn dict_state_round_trips_through_the_codec() {
        let (dict, state) = dict_state();
        dict.insert(1, 10);
        dict.insert(2, 20);
        let snapshot = state.snapshot();

        let (restored_dict, restored_state) = dict_state();
        restored_state.restore(&snapshot).unwrap();
        restored_state
            .replay(&katme_collections::encode_op(&DictOp::Insert { key: 3, value: 30 }).unwrap())
            .unwrap();
        restored_state
            .replay(&katme_collections::encode_op(&DictOp::Remove { key: 1 }).unwrap())
            .unwrap();
        assert_eq!(restored_dict.lookup(1), None);
        assert_eq!(restored_dict.lookup(2), Some(20));
        assert_eq!(restored_dict.lookup(3), Some(30));
        assert!(state.replay(b"garbage").is_err());
        assert!(state.restore(b"").is_err());
    }

    #[test]
    fn plane_logs_checkpoints_and_recovers() {
        let dir = std::env::temp_dir().join(format!("katme-plane-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First life: log three ops through the sink, checkpoint, log one
        // more, shut down.
        {
            let (dict, state) = dict_state();
            let plane = DurabilityPlane::open(
                WalConfig::new(&dir),
                Some(Arc::new(state)),
                Duration::from_secs(3600), // Checkpoint manually below.
            )
            .unwrap();
            assert_eq!(plane.recovery(), RecoveryReport::default());
            let sink = WalSink::new(Arc::clone(plane.wal()));
            for (key, value) in [(1u32, 10u64), (2, 20), (3, 30)] {
                dict.insert(key, value);
                let ticket = sink.log_commit(
                    &katme_collections::encode_op(&DictOp::Insert { key, value }).unwrap(),
                );
                sink.wait_durable(ticket);
            }
            plane.checkpoint_now().unwrap();
            dict.remove(2);
            let ticket =
                sink.log_commit(&katme_collections::encode_op(&DictOp::Remove { key: 2 }).unwrap());
            sink.wait_durable(ticket);
            plane.shutdown();
            let view = plane.view();
            assert_eq!(view.appends, 4);
            assert_eq!(view.checkpoints, 1);
            assert_eq!(view.checkpoint_position, 3);
        }

        // Second life: recovery restores the checkpoint and replays only
        // the post-checkpoint suffix.
        {
            let (dict, state) = dict_state();
            let plane = DurabilityPlane::open(
                WalConfig::new(&dir),
                Some(Arc::new(state)),
                Duration::from_secs(3600),
            )
            .unwrap();
            let recovery = plane.recovery();
            assert!(recovery.restored_checkpoint);
            assert_eq!(recovery.checkpoint_position, 3);
            assert_eq!(recovery.replayed, 1, "only the post-checkpoint remove");
            assert_eq!(dict.lookup(1), Some(10));
            assert_eq!(dict.lookup(2), None);
            assert_eq!(dict.lookup(3), Some(30));
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_checkpointer_runs_on_its_interval() {
        let dir = std::env::temp_dir().join(format!("katme-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (dict, state) = dict_state();
        let plane = DurabilityPlane::open(
            WalConfig::new(&dir),
            Some(Arc::new(state)),
            Duration::from_millis(20),
        )
        .unwrap();
        dict.insert(7, 70);
        let sink = WalSink::new(Arc::clone(plane.wal()));
        let ticket = sink.log_commit(
            &katme_collections::encode_op(&DictOp::Insert { key: 7, value: 70 }).unwrap(),
        );
        sink.wait_durable(ticket);
        let deadline = Instant::now() + Duration::from_secs(5);
        while plane.view().checkpoints == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(plane.view().checkpoints > 0, "checkpointer never fired");
        plane.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
