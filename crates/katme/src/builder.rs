//! `Katme::builder()` — the validated entry point of the facade.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use katme_core::adaptive::AdaptiveKeyScheduler;
use katme_core::cdf::PiecewiseCdf;
use katme_core::cost::CostModelConfig;
use katme_core::drift::{AdaptationConfig, ContentionSample};
use katme_core::executor::ExecutorConfig;
use katme_core::key::{KeyBounds, TxnKey};
use katme_core::models::ExecutorModel;
use katme_core::scheduler::{Scheduler, SchedulerKind};
use katme_durability::WalConfig;
use katme_queue::QueueKind;
use katme_stm::telemetry::{KeyRangeTelemetry, DEFAULT_TELEMETRY_BUCKETS};
use katme_stm::{ClockMode, CmKind, Stm, StmConfig};

use katme_core::lane::LaneTable;

use crate::durability::{DurabilityPlane, DurableState, WalSink, DEFAULT_CHECKPOINT_INTERVAL};
use crate::error::{BuilderError, KatmeError};
use crate::lane::LaneController;
use crate::runtime::{MvLaneState, Runtime, RuntimePlanes};

/// The facade's entry point. [`Katme::builder`] composes STM configuration,
/// scheduling policy, queue implementation, executor model, worker/producer
/// counts and back-pressure into one validated [`Runtime`].
///
/// ```
/// use katme::{Katme, WithKey};
///
/// let runtime = Katme::builder()
///     .workers(2)
///     .build(|_worker, task: WithKey<u64>| task.task * 2)
///     .unwrap();
/// let handle = runtime.submit(WithKey::new(7, 21)).unwrap();
/// assert_eq!(handle.wait().unwrap(), 42);
/// runtime.shutdown();
/// ```
pub struct Katme;

impl Katme {
    /// Start configuring a runtime.
    pub fn builder() -> Builder {
        Builder::default()
    }
}

/// Configuration of a [`Runtime`], built by [`Katme::builder`].
///
/// Every setting has a paper-faithful default: 4 workers, 4 producers, the
/// adaptive scheduler over the 16-bit dictionary key space, the two-lock
/// queue, the parallel-executors model, Polka contention management, and a
/// 10 000-task back-pressure bound. [`Builder::build`] validates the
/// combination and rejects misconfigurations with
/// [`KatmeError::InvalidConfig`] instead of panicking deep in a worker.
#[derive(Clone)]
pub struct Builder {
    workers: usize,
    producers: usize,
    key_min: TxnKey,
    key_max: TxnKey,
    scheduler: SchedulerKind,
    scheduler_instance: Option<Arc<dyn Scheduler>>,
    sample_threshold: Option<usize>,
    adaptation_interval: Option<u64>,
    drift_threshold: Option<f64>,
    max_repartitions: Option<Option<usize>>,
    adaptation_log_capacity: Option<usize>,
    elastic: bool,
    min_workers: Option<usize>,
    max_workers: Option<usize>,
    cost_model: bool,
    queue: QueueKind,
    model: ExecutorModel,
    stm_config: StmConfig,
    stm_instance: Option<Stm>,
    max_queue_depth: Option<usize>,
    drain_on_shutdown: bool,
    work_stealing: bool,
    batch_size: usize,
    durability: Option<WalConfig>,
    durable_state: Option<Arc<dyn DurableState>>,
    checkpoint_interval: Duration,
    mv_lane: bool,
    mv_ranges: Vec<(u64, u64)>,
    mv_parallelism: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let bounds = KeyBounds::dict16();
        Builder {
            workers: 4,
            producers: 4,
            key_min: bounds.min,
            key_max: bounds.max,
            scheduler: SchedulerKind::AdaptiveKey,
            scheduler_instance: None,
            sample_threshold: None,
            adaptation_interval: None,
            drift_threshold: None,
            max_repartitions: None,
            adaptation_log_capacity: None,
            elastic: false,
            min_workers: None,
            max_workers: None,
            cost_model: false,
            queue: QueueKind::TwoLock,
            model: ExecutorModel::Parallel,
            stm_config: StmConfig::default(),
            stm_instance: None,
            max_queue_depth: Some(10_000),
            drain_on_shutdown: true,
            work_stealing: false,
            batch_size: katme_core::executor::DEFAULT_BATCH_SIZE,
            durability: None,
            durable_state: None,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            mv_lane: false,
            mv_ranges: Vec::new(),
            mv_parallelism: 1,
        }
    }
}

impl Builder {
    /// Number of worker threads (must be at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Producer-count hint, used by the experiment driver and reports; the
    /// runtime accepts submissions from any number of threads regardless.
    pub fn producers(mut self, producers: usize) -> Self {
        self.producers = producers;
        self
    }

    /// Inclusive transaction-key range the schedulers partition
    /// (validated at [`Builder::build`]; `min > max` is rejected).
    pub fn key_range(mut self, min: TxnKey, max: TxnKey) -> Self {
        self.key_min = min;
        self.key_max = max;
        self
    }

    /// Key range from existing [`KeyBounds`].
    pub fn key_bounds(mut self, bounds: KeyBounds) -> Self {
        self.key_min = bounds.min;
        self.key_max = bounds.max;
        self
    }

    /// Scheduling policy (round-robin / fixed / adaptive).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Use a pre-built scheduler instance instead of constructing one from
    /// [`Builder::scheduler`] — e.g. an [`AdaptiveKeyScheduler`] seeded from
    /// a recorded trace. The instance's worker count overrides
    /// [`Builder::workers`].
    pub fn scheduler_instance(mut self, scheduler: Arc<dyn Scheduler>) -> Self {
        self.scheduler_instance = Some(scheduler);
        self
    }

    /// Samples the adaptive scheduler collects before its first adaptation
    /// (defaults to the paper's 10 000).
    pub fn sample_threshold(mut self, threshold: usize) -> Self {
        self.sample_threshold = Some(threshold);
        self
    }

    /// Enable the continuous adaptation plane with this epoch length: every
    /// `interval` observed keys the adaptive scheduler evaluates its drift
    /// and STM-contention triggers and republishes the partition when one
    /// fires (hysteresis keeps stationary load from churning). Requires the
    /// adaptive scheduler; rejected at build time otherwise. Setting any of
    /// the adaptation knobs ([`Builder::adaptation_interval`],
    /// [`Builder::drift_threshold`], [`Builder::max_repartitions`]) turns
    /// continuous adaptation on; unset knobs take the
    /// [`AdaptationConfig`] defaults.
    pub fn adaptation_interval(mut self, interval: u64) -> Self {
        self.adaptation_interval = Some(interval);
        self
    }

    /// Histogram-distance trigger for continuous adaptation: the
    /// total-variation distance (in `(0, 1]`) between an epoch's key
    /// histogram and the current partition's reference histogram above which
    /// the distribution counts as drifted. Implies continuous adaptation
    /// (see [`Builder::adaptation_interval`]).
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = Some(threshold);
        self
    }

    /// Cap on post-initial repartitions under continuous adaptation
    /// (`None` = unlimited). Once spent, the scheduler stops sampling and
    /// the dispatch hot path returns to the paper's lock-free steady state.
    /// Implies continuous adaptation (see [`Builder::adaptation_interval`]).
    pub fn max_repartitions(mut self, cap: Option<usize>) -> Self {
        self.max_repartitions = Some(cap);
        self
    }

    /// Capacity of the adaptation-log ring (oldest entries evicted; the
    /// generation numbers stay continuous so eviction is detectable).
    /// Validated at build time (must be at least 1); defaults to
    /// [`katme_core::adaptive::ADAPTATION_LOG_CAP`].
    pub fn adaptation_log_capacity(mut self, capacity: usize) -> Self {
        self.adaptation_log_capacity = Some(capacity);
        self
    }

    /// Make the worker pool **elastic**: the continuous adaptation plane
    /// chooses the worker count within
    /// [`Builder::min_workers`]`..=`[`Builder::max_workers`] (defaults: 1
    /// and [`Builder::workers`]), growing on queue saturation with low
    /// aborts and shrinking when the marginal worker's utility turns
    /// negative. Requires the adaptive scheduler and turns continuous
    /// adaptation on (with [`AdaptationConfig`] defaults) if no adaptation
    /// knob was set. [`Builder::workers`] is the *initial* pool size,
    /// clamped into the range.
    pub fn elastic(mut self, elastic: bool) -> Self {
        self.elastic = elastic;
        self
    }

    /// Lower bound of the elastic worker range (implies
    /// [`Builder::elastic`]; validated ≥ 1 and ≤ the upper bound).
    pub fn min_workers(mut self, min: usize) -> Self {
        self.min_workers = Some(min);
        self.elastic = true;
        self
    }

    /// Upper bound of the elastic worker range (implies
    /// [`Builder::elastic`]). Queues are allocated for the whole range up
    /// front, so growth never reallocates.
    pub fn max_workers(mut self, max: usize) -> Self {
        self.max_workers = Some(max);
        self.elastic = true;
        self
    }

    /// Enable the **predictive cost plane** (see `katme_core::cost`): once
    /// its swap-cost calibration is warm (the initial adaptation provides
    /// the first sample), the adaptive scheduler replaces the drift /
    /// contention / steal / resize threshold triggers with a single
    /// cost-model decision per epoch — score candidate plans (boundary
    /// moves, width changes, joint changes) by predicted next-epoch abort +
    /// queueing-imbalance cost, and adopt the best one only when its
    /// trusted gain exceeds the measured cost of the swap itself.
    /// Mispredictions shrink the model's trust and widen its decision
    /// margin, so a wrong model stops swapping instead of oscillating.
    /// Implies continuous adaptation; requires the adaptive scheduler.
    /// Threshold mode remains the default (and the fallback while
    /// calibration is cold).
    pub fn cost_model(mut self, enabled: bool) -> Self {
        self.cost_model = enabled;
        self
    }

    /// Task-queue implementation for the worker queues.
    pub fn queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Executor wiring (Figure 1 of the paper): no-executor, centralized
    /// dispatcher, or parallel executors (default).
    pub fn model(mut self, model: ExecutorModel) -> Self {
        self.model = model;
        self
    }

    /// STM configuration for the runtime's [`Stm`] instance.
    pub fn stm_config(mut self, config: StmConfig) -> Self {
        self.stm_config = config;
        self
    }

    /// Share an existing [`Stm`] instance (cloning shares statistics) —
    /// needed when the handler closes over data structures already built on
    /// that instance.
    pub fn stm(mut self, stm: Stm) -> Self {
        self.stm_instance = Some(stm);
        self
    }

    /// Contention-management policy (shorthand for the matching
    /// [`Builder::stm_config`] tweak).
    pub fn contention_manager(mut self, cm: CmKind) -> Self {
        self.stm_config = self.stm_config.with_contention_manager(cm);
        self
    }

    /// Version-clock discipline for writer commits (shorthand for the
    /// matching [`Builder::stm_config`] tweak).
    ///
    /// Runtimes with different clock modes may coexist in one process — even
    /// sharing [`katme_stm::TVar`]s — because every commit stamps past the versions it
    /// overwrites regardless of mode; see [`ClockMode`] for the contract.
    pub fn clock_mode(mut self, mode: ClockMode) -> Self {
        self.stm_config = self.stm_config.with_clock_mode(mode);
        self
    }

    /// Back-pressure bound per worker queue; `None` disables it. A bound of
    /// zero is rejected at build time.
    pub fn max_queue_depth(mut self, depth: Option<usize>) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Whether workers drain their queues before exiting at shutdown
    /// (default true: every accepted task with a live [`crate::TaskHandle`]
    /// resolves).
    pub fn drain_on_shutdown(mut self, drain: bool) -> Self {
        self.drain_on_shutdown = drain;
        self
    }

    /// Allow idle workers to steal from other workers' queues.
    pub fn work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }

    /// Maximum tasks a worker (and the central dispatcher, when present)
    /// drains per wakeup — the granularity of the batched dispatch plane.
    /// Must be at least 1 (validated at [`Builder::build`]); defaults to
    /// [`katme_core::executor::DEFAULT_BATCH_SIZE`].
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Enable the **durability plane**: a group-commit write-ahead log at
    /// `dir`. Every task carrying a [`durable
    /// payload`](crate::KeyedTask::durable_payload) whose transaction
    /// commits is appended to the log by a dedicated writer thread —
    /// concurrent commits batch into one append + one fsync (group commit),
    /// and each commit is acknowledged only after its group's fsync — so
    /// under load the plane performs far fewer than one fsync per commit
    /// while never acknowledging a non-durable commit. On build, the log at
    /// `dir` is recovered *before* the runtime accepts work: a torn tail is
    /// truncated, the latest checkpoint is restored into the
    /// [`Builder::durable_state`] (when one is attached), and the surviving
    /// suffix is replayed. Durability counters surface through
    /// [`crate::StatsView::durability`].
    pub fn durability(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability = Some(WalConfig::new(dir));
        self
    }

    /// Full control over the WAL (segment size, fsync toggle, crash-point
    /// fault injection for recovery tests). Implies
    /// [`Builder::durability`] at the config's directory.
    pub fn durability_config(mut self, config: WalConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Attach the application state the durability plane checkpoints and
    /// recovers (e.g. [`crate::DictState`] over a dictionary). Requires
    /// [`Builder::durability`]; with it, a background checkpointer
    /// snapshots the state every [`Builder::checkpoint_interval`] and
    /// recovery restores + replays into it before the runtime starts.
    pub fn durable_state(mut self, state: Arc<dyn DurableState>) -> Self {
        self.durable_state = Some(state);
        self
    }

    /// Interval between fuzzy checkpoints (default 500 ms). Only meaningful
    /// with [`Builder::durable_state`].
    pub fn checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Enable the **multi-version optimistic lane** (Block-STM hybrid): a
    /// batch arriving via [`Runtime::submit_batch`] whose keys fall in an
    /// MV-designated range executes as one optimistic block against
    /// multi-version reads — estimate-on-read dependency tracking, a
    /// validate-and-re-execute-dependents pass instead of wholesale aborts,
    /// and one composite publish to the underlying `TVar`s in deterministic
    /// batch order (redo records reach the durability sink in that same
    /// order). With continuous adaptation on, range designation is a
    /// priced output of the cost plane: a contended range flips to the
    /// lane when the predicted wasted work saved exceeds the measured
    /// lane-swap cost, and flips back when its traffic goes cold. Without
    /// adaptation, only ranges pinned via [`Builder::mv_range`] route MV.
    /// Lane state surfaces through [`crate::StatsView::lane_ranges`] and
    /// the MV counters in [`crate::StatsView`]'s STM snapshot.
    pub fn mv_lane(mut self, enabled: bool) -> Self {
        self.mv_lane = enabled;
        self
    }

    /// Pin the inclusive key range `[lo, hi]` to the multi-version lane
    /// from startup (implies [`Builder::mv_lane`]). May be called multiple
    /// times; validated at build time (`lo > hi` is rejected).
    pub fn mv_range(mut self, lo: u64, hi: u64) -> Self {
        self.mv_ranges.push((lo, hi));
        self.mv_lane = true;
        self
    }

    /// First-pass execution lanes inside one MV block (default 1: the
    /// block's ops first-execute sequentially on the submitting thread;
    /// higher values fan the first pass out over scoped threads). Zero is
    /// rejected at build time.
    pub fn mv_parallelism(mut self, parallelism: usize) -> Self {
        self.mv_parallelism = parallelism;
        self
    }

    fn validate(&self) -> Result<KeyBounds, BuilderError> {
        if self.scheduler_instance.is_none() && self.workers == 0 {
            return Err(BuilderError::ZeroWorkers);
        }
        if self.producers == 0 {
            return Err(BuilderError::ZeroProducers);
        }
        if self.key_min > self.key_max {
            return Err(BuilderError::InvertedKeyBounds {
                min: self.key_min,
                max: self.key_max,
            });
        }
        if self.max_queue_depth == Some(0) {
            return Err(BuilderError::ZeroQueueDepth);
        }
        if self.batch_size == 0 {
            return Err(BuilderError::ZeroBatchSize);
        }
        if let Some(instance) = &self.scheduler_instance {
            if instance.workers() == 0 {
                return Err(BuilderError::SchedulerInstanceZeroWorkers);
            }
        }
        if self.adaptation_log_capacity == Some(0) {
            return Err(BuilderError::ZeroAdaptationLogCapacity);
        }
        if self.elastic {
            if self.scheduler_instance.is_some() {
                return Err(BuilderError::ElasticSchedulerInstance);
            }
            if self.scheduler != SchedulerKind::AdaptiveKey {
                return Err(BuilderError::ElasticNeedsAdaptive {
                    scheduler: self.scheduler,
                });
            }
            if self.model == ExecutorModel::NoExecutor {
                return Err(BuilderError::ElasticNeedsPool);
            }
            let (min, max) = self.worker_range();
            if min == 0 {
                return Err(BuilderError::ZeroMinWorkers);
            }
            if min > max {
                return Err(BuilderError::InvertedWorkerRange { min, max });
            }
        }
        if self.adaptation_enabled() {
            if self.scheduler_instance.is_some() {
                return Err(BuilderError::AdaptationSchedulerInstance);
            }
            if self.scheduler != SchedulerKind::AdaptiveKey {
                return Err(BuilderError::AdaptationNeedsAdaptive {
                    scheduler: self.scheduler,
                });
            }
            if self.adaptation_interval == Some(0) {
                return Err(BuilderError::ZeroAdaptationInterval);
            }
            if let Some(threshold) = self.drift_threshold {
                if !(threshold > 0.0 && threshold <= 1.0) {
                    return Err(BuilderError::DriftThresholdOutOfRange { value: threshold });
                }
            }
        }
        if self.durable_state.is_some() && self.durability.is_none() {
            return Err(BuilderError::DurableStateWithoutWal);
        }
        if self.mv_lane {
            if self.mv_parallelism == 0 {
                return Err(BuilderError::ZeroMvParallelism);
            }
            if let Some(&(lo, hi)) = self.mv_ranges.iter().find(|&&(lo, hi)| lo > hi) {
                return Err(BuilderError::InvertedMvRange { lo, hi });
            }
        }
        Ok(KeyBounds::new(self.key_min, self.key_max))
    }

    /// True when any continuous-adaptation knob was set — or the pool is
    /// elastic (whose concurrency controller runs on the epoch plane), or
    /// the cost model is on (which decides on the same plane).
    fn adaptation_enabled(&self) -> bool {
        self.adaptation_interval.is_some()
            || self.drift_threshold.is_some()
            || self.max_repartitions.is_some()
            || self.elastic
            || self.cost_model
    }

    /// The elastic worker range implied by the set knobs (meaningful only
    /// when [`Builder::elastic`] is on).
    fn worker_range(&self) -> (usize, usize) {
        let min = self.min_workers.unwrap_or(1);
        let max = self.max_workers.unwrap_or_else(|| self.workers.max(min));
        (min, max)
    }

    /// The continuous-adaptation configuration implied by the set knobs.
    fn adaptation_config(&self) -> AdaptationConfig {
        let mut config = AdaptationConfig::new();
        if let Some(interval) = self.adaptation_interval {
            config = config.with_interval(interval);
        }
        if let Some(threshold) = self.drift_threshold {
            config = config.with_drift_threshold(threshold);
        }
        if let Some(cap) = self.max_repartitions {
            config = config.with_max_repartitions(cap);
        }
        if let Some(capacity) = self.adaptation_log_capacity {
            config = config.with_log_capacity(capacity);
        }
        config
    }

    /// Validate the configuration and start the runtime. `handler` is what
    /// worker threads run for each task: `handler(worker_index, task) -> R`,
    /// with `R` delivered through the task's [`crate::TaskHandle`].
    pub fn build<T, R, F>(mut self, handler: F) -> Result<Runtime<T, R>, KatmeError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let bounds = self.validate()?;
        let stm = match self.stm_instance.take() {
            Some(stm) => stm,
            None => Stm::new(self.stm_config.clone()),
        };
        // The multi-version lane's routing table, shared between the batch
        // path (reads) and the lane controller (flips). Pinned ranges are
        // designated up front.
        let mv_table = if self.mv_lane {
            let table = Arc::new(LaneTable::new());
            for &(lo, hi) in &self.mv_ranges {
                table.designate(lo, hi);
            }
            Some(table)
        } else {
            None
        };
        let scheduler: Arc<dyn Scheduler> = match &self.scheduler_instance {
            Some(instance) => Arc::clone(instance),
            None if self.scheduler == SchedulerKind::AdaptiveKey => {
                let mut adaptive = AdaptiveKeyScheduler::new(self.workers, bounds);
                if let Some(threshold) = self.sample_threshold {
                    adaptive = adaptive.with_sample_threshold(threshold);
                }
                if self.elastic {
                    let (min, max) = self.worker_range();
                    adaptive = adaptive.with_worker_range(min, max);
                }
                if let Some(capacity) = self.adaptation_log_capacity {
                    // Continuous mode re-applies this via AdaptationConfig;
                    // setting it here covers one-shot/periodic runs too.
                    adaptive = adaptive.with_log_capacity(capacity);
                }
                if self.adaptation_enabled() {
                    // Continuous mode: wire the STM's key-range telemetry in
                    // as the contention feed. Tasks are scoped to their keys
                    // by the runtime (katme_stm::with_task_key), so the
                    // commit path attributes aborts to key ranges and the
                    // drift detector sees per-epoch contention deltas.
                    let telemetry = Arc::new(KeyRangeTelemetry::new(
                        bounds.min,
                        bounds.max,
                        DEFAULT_TELEMETRY_BUCKETS,
                    ));
                    stm.stats().attach_key_telemetry(telemetry);
                    // Sample whatever telemetry ended up attached (a shared
                    // Stm may already carry one with different geometry).
                    let attached = stm
                        .stats()
                        .key_telemetry()
                        .cloned()
                        .expect("telemetry attached above");
                    let rebucket = Arc::clone(&attached);
                    // Lane designation rides the same epoch cadence: the
                    // controller prices lane flips from the telemetry delta
                    // right before the contention sample is taken.
                    let lane_controller = mv_table
                        .as_ref()
                        .map(|table| LaneController::new(Arc::clone(table), Arc::clone(&attached)));
                    let source = move || {
                        if let Some(controller) = &lane_controller {
                            controller.on_epoch();
                        }
                        let snapshot = attached.snapshot();
                        ContentionSample {
                            commits: snapshot.total_commits(),
                            aborts: snapshot.total_aborts(),
                            ranges: (0..snapshot.buckets().len())
                                .map(|index| {
                                    let (lo, hi) = snapshot.bucket_range(index);
                                    (lo, hi, snapshot.buckets()[index].1)
                                })
                                .collect(),
                        }
                    };
                    // Quantile-adaptive abort attribution: every published
                    // partition re-derives the telemetry bucket boundaries
                    // from the same key CDF, so buckets hold roughly equal
                    // traffic mass and abort counts localize hot ranges
                    // even on heavily skewed key spaces. Rebucketing resets
                    // the counters; the scheduler re-baselines its
                    // contention feed immediately after, so at most one
                    // epoch of contention signal is muted.
                    let observer = move |cdf: &PiecewiseCdf| {
                        let count = rebucket.buckets();
                        if count > 1 {
                            let edges: Vec<u64> = (1..count)
                                .map(|index| cdf.quantile(index as f64 / count as f64))
                                .collect();
                            rebucket.rebucket(edges);
                        }
                    };
                    adaptive = adaptive
                        .with_adaptation(self.adaptation_config())
                        .with_contention_source(Arc::new(source))
                        .with_cdf_observer(Arc::new(observer));
                    if self.cost_model {
                        adaptive = adaptive.with_cost_model(CostModelConfig::default());
                    }
                }
                Arc::new(adaptive)
            }
            None => self.scheduler.build(self.workers, bounds),
        };
        // The durability plane opens — and fully recovers — before the
        // runtime spawns a single worker, so no new commit can race the
        // restore/replay sequence.
        let durability = match self.durability.take() {
            Some(config) => {
                let plane = DurabilityPlane::open(
                    config,
                    self.durable_state.take(),
                    self.checkpoint_interval,
                )
                .map_err(|error| BuilderError::Durability {
                    message: error.to_string(),
                })?;
                let plane = Arc::new(plane);
                // Attaching can only fail when the caller shared an Stm that
                // already carries a sink — treat that as the configuration
                // error it is rather than running with silently split logs.
                if !stm
                    .stats()
                    .attach_durability(Arc::new(WalSink::new(Arc::clone(plane.wal()))))
                {
                    return Err(KatmeError::InvalidConfig(BuilderError::Durability {
                        message: "the shared Stm already has a durability sink attached".into(),
                    }));
                }
                Some(plane)
            }
            None => None,
        };
        let executor_config = ExecutorConfig::default()
            .with_queue(self.queue)
            .with_drain_on_shutdown(self.drain_on_shutdown)
            .with_work_stealing(self.work_stealing)
            .with_max_queue_depth(self.max_queue_depth)
            .with_batch_size(self.batch_size);
        let mv = mv_table.map(|table| MvLaneState {
            table,
            parallelism: self.mv_parallelism,
            block_gate: std::sync::Mutex::new(()),
        });
        Ok(Runtime::start(
            self.model,
            scheduler,
            Arc::new(handler),
            executor_config,
            stm,
            self.producers,
            RuntimePlanes { durability, mv },
        ))
    }
}

impl std::fmt::Debug for Builder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Builder")
            .field("workers", &self.workers)
            .field("producers", &self.producers)
            .field("key_range", &(self.key_min, self.key_max))
            .field("scheduler", &self.scheduler)
            .field("has_scheduler_instance", &self.scheduler_instance.is_some())
            .field("adaptation_interval", &self.adaptation_interval)
            .field("drift_threshold", &self.drift_threshold)
            .field("max_repartitions", &self.max_repartitions)
            .field("adaptation_log_capacity", &self.adaptation_log_capacity)
            .field("elastic", &self.elastic)
            .field("min_workers", &self.min_workers)
            .field("max_workers", &self.max_workers)
            .field("cost_model", &self.cost_model)
            .field("queue", &self.queue)
            .field("model", &self.model)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("drain_on_shutdown", &self.drain_on_shutdown)
            .field("work_stealing", &self.work_stealing)
            .field("batch_size", &self.batch_size)
            .field("durability", &self.durability)
            .field("has_durable_state", &self.durable_state.is_some())
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("mv_lane", &self.mv_lane)
            .field("mv_ranges", &self.mv_ranges)
            .field("mv_parallelism", &self.mv_parallelism)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_handler() -> impl Fn(usize, u64) -> u64 + Send + Sync + 'static {
        |_worker, task| task
    }

    #[test]
    fn default_builder_starts_a_runtime() {
        let runtime = Katme::builder().build(noop_handler()).unwrap();
        assert_eq!(runtime.workers(), 4);
        assert_eq!(runtime.model(), ExecutorModel::Parallel);
        assert!(runtime.is_running());
        let report = runtime.shutdown();
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn clock_mode_knob_reaches_the_stm() {
        let runtime = Katme::builder()
            .clock_mode(ClockMode::Ticked)
            .build(noop_handler())
            .unwrap();
        assert_eq!(runtime.stm().config().clock_mode, ClockMode::Ticked);
        runtime.shutdown();
    }

    #[test]
    fn zero_workers_is_rejected() {
        let err = Katme::builder()
            .workers(0)
            .build(noop_handler())
            .unwrap_err();
        assert!(matches!(
            err,
            KatmeError::InvalidConfig(BuilderError::ZeroWorkers)
        ));
    }

    #[test]
    fn inverted_key_bounds_are_rejected() {
        let err = Katme::builder()
            .key_range(100, 10)
            .build(noop_handler())
            .unwrap_err();
        assert!(matches!(
            err,
            KatmeError::InvalidConfig(BuilderError::InvertedKeyBounds { min: 100, max: 10 })
        ));
    }

    #[test]
    fn zero_depth_and_zero_producers_are_rejected() {
        assert!(Katme::builder()
            .max_queue_depth(Some(0))
            .build(noop_handler())
            .is_err());
        assert!(Katme::builder().producers(0).build(noop_handler()).is_err());
    }

    #[test]
    fn zero_batch_size_is_rejected() {
        let err = Katme::builder()
            .batch_size(0)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(err, KatmeError::InvalidConfig(BuilderError::ZeroBatchSize)),
            "{err}"
        );
        assert!(Katme::builder()
            .batch_size(1)
            .build(noop_handler())
            .is_ok_and(|runtime| {
                runtime.shutdown();
                true
            }));
    }

    #[test]
    fn adaptation_knobs_require_the_adaptive_scheduler() {
        let err = Katme::builder()
            .scheduler(SchedulerKind::FixedKey)
            .adaptation_interval(1_000)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::AdaptationNeedsAdaptive { .. })
            ),
            "{err}"
        );
        let err = Katme::builder()
            .scheduler_instance(Arc::new(AdaptiveKeyScheduler::new(2, KeyBounds::dict16())))
            .drift_threshold(0.2)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::AdaptationSchedulerInstance)
            ),
            "{err}"
        );
    }

    #[test]
    fn invalid_adaptation_knobs_are_rejected() {
        assert!(Katme::builder()
            .adaptation_interval(0)
            .build(noop_handler())
            .is_err());
        assert!(Katme::builder()
            .drift_threshold(0.0)
            .build(noop_handler())
            .is_err());
        assert!(Katme::builder()
            .drift_threshold(1.5)
            .build(noop_handler())
            .is_err());
    }

    #[test]
    fn adaptation_knobs_attach_stm_telemetry() {
        let runtime = Katme::builder()
            .adaptation_interval(1_000)
            .drift_threshold(0.2)
            .max_repartitions(Some(4))
            .build(noop_handler())
            .unwrap();
        assert!(
            runtime.stm().stats().key_telemetry().is_some(),
            "continuous adaptation must wire the key-range telemetry"
        );
        runtime.shutdown();
    }

    #[test]
    fn elastic_knobs_validate_and_wire_the_worker_range() {
        // min > max rejected.
        let err = Katme::builder()
            .min_workers(4)
            .max_workers(2)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::InvertedWorkerRange { min: 4, max: 2 })
            ),
            "{err}"
        );
        // min of zero rejected.
        assert!(Katme::builder()
            .min_workers(0)
            .build(noop_handler())
            .is_err());
        // Elastic requires the adaptive scheduler.
        let err = Katme::builder()
            .scheduler(SchedulerKind::FixedKey)
            .elastic(true)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::ElasticNeedsAdaptive { .. })
            ),
            "{err}"
        );
        // ...and a worker pool: the inline no-executor model has nothing
        // to resize.
        let err = Katme::builder()
            .model(ExecutorModel::NoExecutor)
            .elastic(true)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::ElasticNeedsPool)
            ),
            "{err}"
        );
        // ...and cannot ride on a pre-built instance.
        let err = Katme::builder()
            .scheduler_instance(Arc::new(AdaptiveKeyScheduler::new(2, KeyBounds::dict16())))
            .elastic(true)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::ElasticSchedulerInstance)
            ),
            "{err}"
        );
        // A valid elastic runtime: capacity = max_workers, initial = workers,
        // and continuous adaptation (telemetry) is implied.
        let runtime = Katme::builder()
            .workers(2)
            .min_workers(1)
            .max_workers(6)
            .build(noop_handler())
            .unwrap();
        assert_eq!(runtime.workers(), 6, "slot capacity is the ceiling");
        assert_eq!(runtime.active_workers(), 2, "initial size is workers()");
        assert!(
            runtime.stm().stats().key_telemetry().is_some(),
            "elastic implies the continuous adaptation plane"
        );
        let stats = runtime.stats();
        assert_eq!(stats.active_workers, 2);
        assert_eq!(stats.resizes, 0);
        let report = runtime.shutdown();
        assert_eq!(report.resizes, 0);
        assert_eq!(report.active_workers, 2);
    }

    #[test]
    fn zero_adaptation_log_capacity_is_rejected() {
        assert!(Katme::builder()
            .adaptation_log_capacity(0)
            .build(noop_handler())
            .is_err());
        let runtime = Katme::builder()
            .adaptation_log_capacity(8)
            .build(noop_handler())
            .unwrap();
        runtime.shutdown();
    }

    #[test]
    fn scheduler_instance_overrides_worker_count() {
        let scheduler = Arc::new(AdaptiveKeyScheduler::new(3, KeyBounds::dict16()));
        let runtime = Katme::builder()
            .workers(8)
            .scheduler_instance(scheduler)
            .build(noop_handler())
            .unwrap();
        assert_eq!(runtime.workers(), 3);
        runtime.shutdown();
    }

    #[test]
    fn builder_debug_is_stable() {
        let debug = format!("{:?}", Katme::builder().workers(2));
        assert!(debug.contains("workers: 2"));
    }

    #[test]
    fn invalid_mv_knobs_are_rejected() {
        let err = Katme::builder()
            .mv_lane(true)
            .mv_parallelism(0)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::ZeroMvParallelism)
            ),
            "{err}"
        );
        let err = Katme::builder()
            .mv_range(10, 5)
            .build(noop_handler())
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::InvertedMvRange { lo: 10, hi: 5 })
            ),
            "{err}"
        );
        // Without mv_lane the knobs are inert, so a zero parallelism that
        // will never be used does not reject.
        let runtime = Katme::builder()
            .mv_parallelism(0)
            .build(noop_handler())
            .unwrap();
        runtime.shutdown();
    }

    #[test]
    fn pinned_mv_range_routes_batches_through_the_mv_lane() {
        use crate::task::WithKey;
        let runtime = Katme::builder()
            .workers(2)
            .mv_range(0, 63)
            .mv_parallelism(2)
            .build(|_worker, task: WithKey<u64>| task.task * 2)
            .unwrap();
        assert_eq!(runtime.stats().lane_ranges, vec![(0, 63)]);

        let tasks: Vec<WithKey<u64>> = (0..16u64).map(|i| WithKey::new(i % 64, i)).collect();
        let handles = runtime.submit_batch(tasks).unwrap();
        let results: Vec<u64> = handles
            .into_iter()
            .map(|handle| handle.wait().unwrap())
            .collect();
        assert_eq!(results, (0..16u64).map(|i| i * 2).collect::<Vec<_>>());

        let stats = runtime.stats();
        assert!(stats.stm.mv_commits >= 16, "{:?}", stats.stm);
        assert!(stats.mv_residency() > 0.0);
        runtime.shutdown();
    }

    #[test]
    fn mixed_batch_splits_between_lanes_and_preserves_handle_order() {
        use crate::task::WithKey;
        let runtime = Katme::builder()
            .workers(2)
            .mv_range(0, 7)
            .build(|_worker, task: WithKey<u64>| task.task + 100)
            .unwrap();
        // Even indices land in the MV range, odd ones stay single-version;
        // the returned handles must still line up with submission order.
        let tasks: Vec<WithKey<u64>> = (0..20u64)
            .map(|i| WithKey::new(if i % 2 == 0 { i % 8 } else { 500 + i }, i))
            .collect();
        let handles = runtime.submit_batch(tasks).unwrap();
        let results: Vec<u64> = handles
            .into_iter()
            .map(|handle| handle.wait().unwrap())
            .collect();
        assert_eq!(results, (0..20u64).map(|i| i + 100).collect::<Vec<_>>());

        let stats = runtime.stats();
        // Exactly the ten even-indexed tasks went MV; the odd half ran on
        // the plain worker path (whose no-op handler records no STM
        // commits, so mv_commits counts the split precisely).
        assert_eq!(stats.stm.mv_commits, 10, "{:?}", stats.stm);
        assert_eq!(stats.completed, 20);
        runtime.shutdown();
    }

    #[test]
    fn mv_without_pinned_ranges_starts_cold() {
        use crate::task::WithKey;
        let runtime = Katme::builder()
            .workers(2)
            .mv_lane(true)
            .build(|_worker, task: WithKey<u64>| task.task)
            .unwrap();
        let stats = runtime.stats();
        assert!(stats.lane_ranges.is_empty());
        assert_eq!(stats.lane_flips, 0);
        let handles = runtime
            .submit_batch((0..8u64).map(|i| WithKey::new(i, i)).collect())
            .unwrap();
        for handle in handles {
            handle.wait().unwrap();
        }
        let stats = runtime.stats();
        assert_eq!(stats.stm.mv_commits, 0, "cold lane executes nothing MV");
        runtime.shutdown();
    }
}
