//! The test driver: timed benchmark runs, rebuilt on the facade.
//!
//! "The entire system is orchestrated by a test driver thread, which selects
//! the designated benchmark, starts the producer threads, records the
//! starting time, starts the worker threads, and stops the producer and
//! worker threads after the test period. After the test is stopped, the
//! driver thread collects local statistics from the worker threads and
//! reports the cumulative throughput."
//!
//! [`Driver`] reproduces that protocol for every combination the harness
//! needs: benchmark structure × key distribution × scheduler × worker count,
//! across all three executor models of Figure 1 — all expressed as
//! [`Katme::builder`] configurations of one [`Runtime`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use katme_collections::{encode_op_into, DictOp, Dictionary, StructureKind};
use katme_core::key::{BucketKeyMapper, KeyMapper};
use katme_core::models::ExecutorModel;
use katme_core::scheduler::SchedulerKind;
use katme_core::stats::LoadBalance;
use katme_durability::DurabilityView;
use katme_queue::QueueKind;
use katme_stm::{CmKind, Stm, StmConfig, StmStatsSnapshot, TVar};
use katme_workload::{ArrivalRamp, DistributionKind, OpGenerator, OpKind, TxnSpec};

use crate::builder::Katme;
use crate::durability::{DictState, RecoveryReport};
use crate::runtime::Runtime;
use crate::task::{Durable, KeyedTask, WithKey};

/// Configuration of one timed run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Number of producer threads ("we use four parallel producers, eight
    /// for the hash table benchmark").
    pub producers: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Executor wiring (Figure 1).
    pub model: ExecutorModel,
    /// Length of the measurement window (the paper uses 10 seconds; the
    /// harness defaults to a few hundred milliseconds so full sweeps finish
    /// on laptop-class machines — pass `--seconds` to scale up).
    pub duration: Duration,
    /// Task-queue implementation.
    pub queue: QueueKind,
    /// Contention manager for the STM ("Polka" in the paper).
    pub contention_manager: CmKind,
    /// Enable work stealing for idle workers.
    pub work_stealing: bool,
    /// Producer back-pressure bound (tasks per queue).
    pub max_queue_depth: Option<usize>,
    /// Seed for the workload generators (each producer derives its own
    /// stream from this seed).
    pub seed: u64,
    /// Number of keys pre-inserted into the structure before the timed
    /// window, so inserts and deletes both find work to do from the start.
    pub preload: usize,
    /// Tasks each producer generates and submits per batch (and the worker
    /// drain granularity). `1` reproduces the paper's per-task submission
    /// protocol exactly; larger values exercise the batched dispatch plane.
    pub batch_size: usize,
    /// Samples before the adaptive scheduler's first adaptation (`None` =
    /// the paper's 10 000).
    pub sample_threshold: Option<usize>,
    /// Continuous-adaptation epoch length; setting this (or either knob
    /// below) enables the continuous adaptation plane for adaptive-scheduler
    /// runs (see [`crate::Builder::adaptation_interval`]).
    pub adaptation_interval: Option<u64>,
    /// Histogram-distance drift trigger (see
    /// [`crate::Builder::drift_threshold`]).
    pub drift_threshold: Option<f64>,
    /// Cap on post-initial repartitions (outer `None` = knob unset, inner
    /// `None` = unlimited; see [`crate::Builder::max_repartitions`]).
    pub max_repartitions: Option<Option<usize>>,
    /// Elastic worker range as `(min, max)`; `None` keeps the paper's
    /// fixed-size pool. Setting it enables the elastic execution plane
    /// ([`crate::Builder::min_workers`] / [`crate::Builder::max_workers`]),
    /// with [`DriverConfig::workers`] as the initial size.
    pub elastic_workers: Option<(usize, usize)>,
    /// Enable the predictive cost plane ([`crate::Builder::cost_model`]):
    /// adaptation decisions come from the calibrated cost model instead of
    /// the threshold triggers once its calibration warms. Implies
    /// continuous adaptation.
    pub cost_model: bool,
    /// Arrival-intensity profile over the measurement window; `None` runs
    /// the paper's unthrottled producers. The quiet phases of a ramp are
    /// what make elastic scaling observable.
    pub ramp: Option<ArrivalRamp>,
    /// WAL directory for [`Driver::run_dictionary_durable`]: the run opens
    /// the group-commit log there, checkpoints the dictionary in the
    /// background, and every insert/delete carries its redo record. `None`
    /// (the default) leaves every run volatile.
    pub durability: Option<PathBuf>,
    /// Enable the multi-version optimistic lane
    /// ([`crate::Builder::mv_lane`]): batches whose keys land in an
    /// MV-designated range execute Block-STM style against multi-version
    /// reads, re-executing only invalidated dependents instead of aborting
    /// wholesale. With continuous adaptation on, the lane controller
    /// designates and releases ranges from per-bucket abort mass; without
    /// it, only [`DriverConfig::mv_ranges`] route MV.
    pub mv_lane: bool,
    /// Key ranges pinned into the MV lane from startup (implies
    /// [`DriverConfig::mv_lane`]).
    pub mv_ranges: Vec<(u64, u64)>,
    /// First-pass execution lanes inside one MV block (see
    /// [`crate::Builder::mv_parallelism`]).
    pub mv_parallelism: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 4,
            producers: 4,
            scheduler: SchedulerKind::AdaptiveKey,
            model: ExecutorModel::Parallel,
            duration: Duration::from_millis(200),
            queue: QueueKind::TwoLock,
            contention_manager: CmKind::Polka,
            work_stealing: false,
            max_queue_depth: Some(10_000),
            seed: 0x5eed,
            preload: 10_000,
            batch_size: 1,
            sample_threshold: None,
            adaptation_interval: None,
            drift_threshold: None,
            max_repartitions: None,
            elastic_workers: None,
            cost_model: false,
            ramp: None,
            durability: None,
            mv_lane: false,
            mv_ranges: Vec::new(),
            mv_parallelism: 1,
        }
    }
}

impl DriverConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the number of producers.
    pub fn with_producers(mut self, producers: usize) -> Self {
        self.producers = producers.max(1);
        self
    }

    /// Set the scheduling policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Set the executor model.
    pub fn with_model(mut self, model: ExecutorModel) -> Self {
        self.model = model;
        self
    }

    /// Set the measurement window.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Set the task-queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Set the contention manager.
    pub fn with_contention_manager(mut self, cm: CmKind) -> Self {
        self.contention_manager = cm;
        self
    }

    /// Enable or disable work stealing.
    pub fn with_work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }

    /// Set (or clear) the producer back-pressure bound.
    pub fn with_max_queue_depth(mut self, depth: Option<usize>) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Set the number of pre-inserted keys.
    pub fn with_preload(mut self, preload: usize) -> Self {
        self.preload = preload;
        self
    }

    /// Set the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the producer submission / worker drain batch size (clamped to at
    /// least 1; 1 = the paper's per-task protocol).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the adaptive scheduler's first-adaptation sample threshold.
    pub fn with_sample_threshold(mut self, threshold: usize) -> Self {
        self.sample_threshold = Some(threshold);
        self
    }

    /// Enable continuous adaptation with this epoch length.
    pub fn with_adaptation_interval(mut self, interval: u64) -> Self {
        self.adaptation_interval = Some(interval);
        self
    }

    /// Set the continuous-adaptation drift trigger (implies continuous
    /// adaptation).
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = Some(threshold);
        self
    }

    /// Cap the number of post-initial repartitions (implies continuous
    /// adaptation).
    pub fn with_max_repartitions(mut self, cap: Option<usize>) -> Self {
        self.max_repartitions = Some(cap);
        self
    }

    /// Enable elastic worker scaling within `min..=max` (the configured
    /// worker count is the initial size).
    pub fn with_elastic_workers(mut self, min: usize, max: usize) -> Self {
        self.elastic_workers = Some((min, max));
        self
    }

    /// Enable the predictive cost plane (implies continuous adaptation).
    pub fn with_cost_model(mut self, enabled: bool) -> Self {
        self.cost_model = enabled;
        self
    }

    /// Shape producer arrivals over the window (see [`ArrivalRamp`]).
    pub fn with_ramp(mut self, ramp: ArrivalRamp) -> Self {
        self.ramp = Some(ramp);
        self
    }

    /// Set the WAL directory for [`Driver::run_dictionary_durable`].
    pub fn with_durability(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability = Some(dir.into());
        self
    }

    /// Enable the multi-version optimistic lane (see
    /// [`DriverConfig::mv_lane`]).
    pub fn with_mv_lane(mut self, enabled: bool) -> Self {
        self.mv_lane = enabled;
        self
    }

    /// Pin a key range into the MV lane from startup (implies
    /// [`DriverConfig::mv_lane`]; may be called multiple times).
    pub fn with_mv_range(mut self, lo: u64, hi: u64) -> Self {
        self.mv_ranges.push((lo, hi));
        self.mv_lane = true;
        self
    }

    /// Set the MV block's first-pass execution lanes (clamped to at
    /// least 1).
    pub fn with_mv_parallelism(mut self, parallelism: usize) -> Self {
        self.mv_parallelism = parallelism.max(1);
        self
    }
}

/// Result of one timed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheduler that produced this result.
    pub scheduler: SchedulerKind,
    /// Executor model used.
    pub model: ExecutorModel,
    /// Worker threads used.
    pub workers: usize,
    /// Producer threads used.
    pub producers: usize,
    /// Wall-clock length of the measurement window.
    pub elapsed: Duration,
    /// Transactions completed inside the window.
    pub completed: u64,
    /// Transactions generated by the producers inside the window.
    pub produced: u64,
    /// Completed transactions per second.
    pub throughput: f64,
    /// Per-worker completion counts.
    pub load: LoadBalance,
    /// STM activity during the window (commits, aborts, backoffs).
    pub stm: StmStatsSnapshot,
    /// Times the scheduler recomputed its partition during the run.
    pub repartitions: u64,
    /// Worker-pool resizes performed by the elastic plane during the run
    /// (0 for fixed-size pools).
    pub resizes: u64,
    /// The scheduler's adaptation log at the window's close (one entry per
    /// published generation, with its trigger cause — including the cost
    /// plane's `predicted_gain`/`swap_cost` for cost-model swaps).
    pub adaptations: Vec<katme_core::drift::AdaptationEvent>,
    /// Durability-plane counters at the window's close (`None` for a
    /// volatile run): appends, fsyncs, mean group size, checkpoint lag.
    pub durability: Option<DurabilityView>,
    /// What recovery restored and replayed when the durable run started
    /// (`None` for a volatile run).
    pub recovery: Option<RecoveryReport>,
    /// Wall-clock nanoseconds workers spent blocked in group-commit waits
    /// (0 for a volatile run).
    pub commit_wait_nanos: u64,
    /// MV-designated key ranges at the window's close (empty when the lane
    /// is disabled or stayed cold).
    pub lane_ranges: Vec<(u64, u64)>,
    /// Lane designations plus undesignations applied during the run.
    pub lane_flips: u64,
    /// Per-bucket key-range telemetry at the window's close (`None` when
    /// the scheduler attached no key telemetry): commit/abort mass per
    /// bucket, the evidence behind lane and repartition decisions.
    pub key_ranges: Option<katme_stm::KeyRangeSnapshot>,
}

impl RunResult {
    /// Conflict (abort) instances per committed transaction — the
    /// "frequency of contentions" the paper reports alongside throughput.
    pub fn contention_ratio(&self) -> f64 {
        self.stm.contention_ratio()
    }

    /// Physical fsyncs per logged commit — below 1.0 whenever group commit
    /// amortized a sync across concurrent committers (0.0 for a volatile
    /// run, or before the first logged commit).
    pub fn fsyncs_per_commit(&self) -> f64 {
        self.durability.map_or(0.0, |view| view.fsyncs_per_commit)
    }

    /// Re-executions per MV-lane commit — the MV analogue of
    /// [`RunResult::contention_ratio`]: wasted work the lane pays instead
    /// of wholesale aborts (0.0 before the first MV commit).
    pub fn mv_reexec_per_commit(&self) -> f64 {
        self.stm.mv_reexec_ratio()
    }

    /// Fraction of all commits that went through the MV lane (0.0 when the
    /// lane is disabled or stayed cold).
    pub fn mv_residency(&self) -> f64 {
        self.stm.mv_residency()
    }
}

/// One measurement window of a windowed run
/// ([`Driver::run_dictionary_windowed`]): all rates are *within-window*
/// deltas built on [`crate::StatsView::since`], so they track the current
/// phase of a shifting workload instead of the cumulative average.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window index, 0-based.
    pub index: usize,
    /// Wall-clock length of this window.
    pub duration: Duration,
    /// Transactions completed inside this window.
    pub completed: u64,
    /// Completed transactions per second inside this window.
    pub throughput: f64,
    /// STM aborts per committed transaction inside this window (the
    /// windowed contention ratio).
    pub contention_ratio: f64,
    /// Partition republishes inside this window.
    pub repartitions: u64,
    /// Routing-table generation in effect at the window's close.
    pub generation: u64,
    /// Active workers at the window's close (constant for a fixed pool;
    /// the elastic trace of the pool otherwise).
    pub active_workers: usize,
}

/// The timed-run driver.
#[derive(Debug, Clone, Default)]
pub struct Driver {
    config: DriverConfig,
}

impl Driver {
    /// Create a driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        Driver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Number of producer threads for the configured model: the no-executor
    /// model has no separate producers ("each thread is both producer and
    /// worker"), so it runs `workers` generating threads.
    fn producer_threads(&self) -> usize {
        match self.config.model {
            ExecutorModel::NoExecutor => self.config.workers,
            _ => self.config.producers,
        }
    }

    fn runtime_builder(&self) -> crate::builder::Builder {
        let cfg = &self.config;
        let mut builder = Katme::builder()
            .workers(cfg.workers)
            .producers(self.producer_threads())
            .scheduler(cfg.scheduler)
            .model(cfg.model)
            .queue(cfg.queue)
            .work_stealing(cfg.work_stealing)
            .max_queue_depth(cfg.max_queue_depth)
            .batch_size(cfg.batch_size)
            // The paper's driver "stops the producer and worker threads
            // after the test period": leftover queue contents are abandoned
            // and reported, not drained.
            .drain_on_shutdown(false);
        if let Some((min, max)) = cfg.elastic_workers {
            builder = builder.min_workers(min).max_workers(max);
        }
        if let Some(threshold) = cfg.sample_threshold {
            builder = builder.sample_threshold(threshold);
        }
        if let Some(interval) = cfg.adaptation_interval {
            builder = builder.adaptation_interval(interval);
        }
        if let Some(threshold) = cfg.drift_threshold {
            builder = builder.drift_threshold(threshold);
        }
        if let Some(cap) = cfg.max_repartitions {
            builder = builder.max_repartitions(cap);
        }
        if cfg.cost_model {
            builder = builder.cost_model(true);
        }
        if cfg.mv_lane {
            builder = builder.mv_lane(true).mv_parallelism(cfg.mv_parallelism);
        }
        for &(lo, hi) in &cfg.mv_ranges {
            builder = builder.mv_range(lo, hi);
        }
        builder
    }

    /// Run the dictionary microbenchmark (the paper's §4.2): producer
    /// threads generate insert/delete transactions with keys drawn from
    /// `distribution` and workers execute them against a freshly built
    /// `structure` through the facade runtime.
    pub fn run_dictionary(
        &self,
        structure: StructureKind,
        distribution: DistributionKind,
    ) -> RunResult {
        self.run_dictionary_windowed(structure, distribution, 1).0
    }

    /// Like [`Driver::run_dictionary`], but splitting the measurement
    /// period into `windows` equal slices and reporting each slice's
    /// windowed throughput and contention ratio alongside the overall
    /// result — the view that makes a mid-run phase shift (and the
    /// adaptation plane's response to it) visible.
    pub fn run_dictionary_windowed(
        &self,
        structure: StructureKind,
        distribution: DistributionKind,
        windows: usize,
    ) -> (RunResult, Vec<WindowReport>) {
        let cfg = &self.config;
        let stm = Stm::new(StmConfig::default().with_contention_manager(cfg.contention_manager));
        let dict = structure.build(stm.clone());
        preload(&*dict, cfg.preload, cfg.seed, distribution);

        // The transaction key: the hash-bucket index for the hash table (the
        // paper's §4.2), the dictionary key itself for tree and list.
        let bounds = match structure {
            StructureKind::HashTable => KeyMapper::<TxnSpec>::bounds(&BucketKeyMapper::paper()),
            _ => katme_core::key::KeyBounds::dict16(),
        };

        let dict_for_workers = Arc::clone(&dict);
        let runtime = self
            .runtime_builder()
            .key_bounds(bounds)
            .stm(stm)
            .build(move |_worker, task: WithKey<TxnSpec>| {
                apply_spec(&*dict_for_workers, &task.task);
            })
            .expect("DriverConfig produces a valid runtime configuration");

        let window = drive_window(
            &runtime,
            cfg.duration,
            self.producer_threads(),
            cfg.batch_size,
            windows,
            cfg.ramp.as_ref(),
            |producer| {
                let mut gen =
                    OpGenerator::paper(distribution, cfg.seed.wrapping_add(1000 + producer as u64));
                let bucket_mapper = BucketKeyMapper::paper();
                // Spec buffer reused across batches; the raw 17-bit samples
                // are drawn through KeyDistribution::sample_into inside
                // batch_into, so the steady-state loop allocates only the
                // task vector handed to the runtime.
                let mut specs: Vec<TxnSpec> = Vec::new();
                move |n: usize, out: &mut Vec<WithKey<TxnSpec>>| {
                    gen.batch_into(&mut specs, n);
                    out.extend(specs.drain(..).map(|spec| {
                        let key = match structure {
                            StructureKind::HashTable => bucket_mapper.key(&spec),
                            _ => u64::from(spec.key),
                        };
                        WithKey::new(key, spec)
                    }));
                }
            },
        );
        self.collect(runtime, window)
    }

    /// The durable variant of [`Driver::run_dictionary`]: the same workload
    /// against the same structure, but the runtime opens the group-commit
    /// WAL at [`DriverConfig::durability`], registers the dictionary with
    /// the background checkpointer, and every insert/delete task carries
    /// its redo record — so each writing commit is acknowledged only after
    /// its group's fsync. The returned [`RunResult::durability`] view holds
    /// the fsyncs-per-commit and mean-group-size evidence, and
    /// [`RunResult::recovery`] what startup recovery found in the log
    /// directory.
    ///
    /// # Panics
    ///
    /// Panics if [`DriverConfig::durability`] is unset.
    pub fn run_dictionary_durable(
        &self,
        structure: StructureKind,
        distribution: DistributionKind,
    ) -> RunResult {
        let cfg = &self.config;
        let dir = cfg
            .durability
            .clone()
            .expect("run_dictionary_durable requires DriverConfig::with_durability");
        let stm = Stm::new(StmConfig::default().with_contention_manager(cfg.contention_manager));
        let dict = structure.build(stm.clone());
        // Preloaded entries are not logged: only a checkpoint captures
        // them. The first checkpoint round covers the preload; crash tests
        // that must not depend on checkpoint timing preload zero keys.
        preload(&*dict, cfg.preload, cfg.seed, distribution);

        let bounds = match structure {
            StructureKind::HashTable => KeyMapper::<TxnSpec>::bounds(&BucketKeyMapper::paper()),
            _ => katme_core::key::KeyBounds::dict16(),
        };

        let dict_for_workers = Arc::clone(&dict);
        let runtime = self
            .runtime_builder()
            .key_bounds(bounds)
            .stm(stm)
            .durability(&dir)
            .durable_state(Arc::new(DictState::new(Arc::clone(&dict))))
            .build(move |_worker, task: Durable<WithKey<TxnSpec>>| {
                apply_spec(&*dict_for_workers, &task.task.task);
            })
            .expect("DriverConfig produces a valid runtime configuration");

        let window = drive_window(
            &runtime,
            cfg.duration,
            self.producer_threads(),
            cfg.batch_size,
            1,
            cfg.ramp.as_ref(),
            |producer| {
                let mut gen =
                    OpGenerator::paper(distribution, cfg.seed.wrapping_add(1000 + producer as u64));
                let bucket_mapper = BucketKeyMapper::paper();
                let mut specs: Vec<TxnSpec> = Vec::new();
                move |n: usize, out: &mut Vec<Durable<WithKey<TxnSpec>>>| {
                    gen.batch_into(&mut specs, n);
                    out.extend(specs.drain(..).map(|spec| {
                        let key = match structure {
                            StructureKind::HashTable => bucket_mapper.key(&spec),
                            _ => u64::from(spec.key),
                        };
                        let payload = spec_payload(&spec);
                        Durable::new(WithKey::new(key, spec), payload)
                    }));
                }
            },
        );
        self.collect(runtime, window).0
    }

    /// The Figure-4 overhead study: trivial transactions (a single-TVar
    /// increment) executed either by free-running threads
    /// (`use_executor == false`, Figure 1(a)) or through the executor with
    /// the configured number of producers (`use_executor == true`).
    pub fn run_trivial(&self, use_executor: bool) -> RunResult {
        let cfg = &self.config;
        let stm = Stm::new(StmConfig::default().with_contention_manager(cfg.contention_manager));
        // One counter per lane: trivial transactions do not conflict, so the
        // measurement isolates executor overhead exactly as in the paper.
        let counters: Arc<Vec<TVar<u64>>> =
            Arc::new((0..cfg.workers).map(|_| TVar::new(0u64)).collect());

        if !use_executor {
            // Figure 1(a) through the facade: the no-executor model runs the
            // transaction inline in each generating thread; the payload
            // carries the thread's counter lane. Unlike the paper's bare
            // loop, this baseline pays the facade's small fixed dispatch
            // cost per task (see `StripedCounter` in the runtime), slightly
            // understating the measured executor overhead; the qualitative
            // Figure-4 shape is unaffected.
            let stm_for_workers = stm.clone();
            let counters_for_workers = Arc::clone(&counters);
            let runtime = Driver::new(self.config.clone().with_model(ExecutorModel::NoExecutor))
                .runtime_builder()
                .stm(stm)
                .build(move |_worker, lane: WithKey<usize>| {
                    stm_for_workers
                        .atomically(|tx| tx.modify(&counters_for_workers[lane.task], |v| v + 1));
                })
                .expect("DriverConfig produces a valid runtime configuration");
            let window = drive_window(
                &runtime,
                cfg.duration,
                cfg.workers,
                cfg.batch_size,
                1,
                cfg.ramp.as_ref(),
                |producer| {
                    move |n: usize, out: &mut Vec<WithKey<usize>>| {
                        out.extend((0..n).map(|_| WithKey::new(producer as u64, producer)));
                    }
                },
            );
            let (mut result, _) = self.collect(runtime, window);
            result.producers = 0;
            return result;
        }

        // Executor mode: producers enqueue unit tasks, workers run the
        // trivial transaction against their own counter. The configured
        // model is honoured except for NoExecutor, which would degenerate
        // into the free-running side of the comparison — force the paper's
        // parallel pipeline instead.
        let model = match cfg.model {
            ExecutorModel::NoExecutor => ExecutorModel::Parallel,
            other => other,
        };
        let stm_for_workers = stm.clone();
        let counters_for_workers = Arc::clone(&counters);
        let runtime = self
            .runtime_builder()
            .model(model)
            .key_range(0, u64::from(u16::MAX))
            .stm(stm)
            .build(move |worker, _task: WithKey<TxnSpec>| {
                stm_for_workers
                    .atomically(|tx| tx.modify(&counters_for_workers[worker], |v| v + 1));
            })
            .expect("DriverConfig produces a valid runtime configuration");
        let window = drive_window(
            &runtime,
            cfg.duration,
            cfg.producers,
            cfg.batch_size,
            1,
            cfg.ramp.as_ref(),
            |producer| {
                let mut gen = OpGenerator::paper(
                    DistributionKind::Uniform,
                    cfg.seed.wrapping_add(1000 + producer as u64),
                );
                let mut specs: Vec<TxnSpec> = Vec::new();
                move |n: usize, out: &mut Vec<WithKey<TxnSpec>>| {
                    gen.batch_into(&mut specs, n);
                    out.extend(
                        specs
                            .drain(..)
                            .map(|spec| WithKey::new(u64::from(spec.key), spec)),
                    );
                }
            },
        );
        let (mut result, _) = self.collect(runtime, window);
        result.producers = cfg.producers;
        result
    }

    /// Assemble the run result from the stats snapshot [`drive_window`] took
    /// when the window closed, then shut the runtime down. Under the
    /// no-executor model the genuine per-thread completion counts come from
    /// the producers themselves (inline execution: produced == completed per
    /// thread), not from the runtime's aggregate counter.
    fn collect<T: Send + 'static, R: Send + 'static>(
        &self,
        runtime: Runtime<T, R>,
        window: Window,
    ) -> (RunResult, Vec<WindowReport>) {
        let cfg = &self.config;
        let model = runtime.model();
        let recovery = runtime.recovery();
        // The terminal report carries the plane's *final* counters —
        // captured after the WAL's shutdown flush, so the tail group that
        // drains during teardown is included.
        let report = runtime.shutdown();
        let stats = window.stats;
        let load = match model {
            ExecutorModel::NoExecutor => LoadBalance::new(window.per_producer.clone()),
            _ => LoadBalance::new(stats.per_worker_completed),
        };
        let result = RunResult {
            scheduler: cfg.scheduler,
            model,
            workers: cfg.workers,
            producers: self.producer_threads(),
            elapsed: window.elapsed,
            completed: stats.completed,
            produced: window.per_producer.iter().sum(),
            throughput: stats.completed as f64 / window.elapsed.as_secs_f64(),
            load,
            stm: stats.stm,
            repartitions: stats.repartitions,
            resizes: stats.resizes,
            adaptations: stats.adaptations,
            durability: report.durability,
            recovery,
            commit_wait_nanos: report.commit_wait_nanos,
            lane_ranges: stats.lane_ranges,
            lane_flips: stats.lane_flips,
            key_ranges: stats.key_ranges,
        };
        (result, window.reports)
    }
}

/// What [`drive_window`] measured: the per-producer submission counts (each
/// producer tallies locally — no shared counter on the submission hot path),
/// a [`StatsView`] snapshot plus elapsed time captured *at the moment the
/// window closed* — before the producers are joined, so a producer that
/// sits out a back-pressure wait in its final (batched) submission cannot
/// stretch the measured window — and one [`WindowReport`] per measurement
/// slice.
struct Window {
    per_producer: Vec<u64>,
    elapsed: Duration,
    stats: crate::runtime::StatsView,
    reports: Vec<WindowReport>,
}

/// Per-iteration producer throttle for ramped arrivals: below full
/// intensity each submission pays a pause proportional to
/// `(1 - intensity) / intensity` (capped), so a 5%-intensity quiet phase
/// runs at roughly 5% of the unthrottled submission rate.
fn ramp_pause(ramp: &ArrivalRamp, started: Instant, duration: Duration) {
    let fraction = started.elapsed().as_secs_f64() / duration.as_secs_f64().max(f64::MIN_POSITIVE);
    let intensity = ramp.intensity_at(fraction);
    if intensity < 1.0 {
        const QUANTUM_SECS: f64 = 200e-6;
        let factor = ((1.0 - intensity) / intensity.max(0.02)).min(50.0);
        std::thread::sleep(Duration::from_secs_f64(QUANTUM_SECS * factor));
    }
}

/// Run `producers` generating threads against `runtime` for `duration`:
/// each thread gets its own batch generator from `factory` (a closure
/// filling a task vector, so generators can reuse internal sample buffers)
/// and submits until the window closes (or the runtime refuses new work).
/// With `batch_size` above 1 each producer generates a whole batch locally
/// and hands it over through the batched dispatch plane
/// ([`Runtime::submit_batch_detached`]); at 1 it reproduces the paper's
/// per-task submission. A `ramp` throttles submissions per
/// [`ArrivalRamp::intensity_at`] over the window. The measurement period
/// is split into `windows` equal slices, each reported as a
/// [`WindowReport`] of within-window deltas ([`crate::StatsView::since`]).
fn drive_window<K, R, F, G>(
    runtime: &Runtime<K, R>,
    duration: Duration,
    producers: usize,
    batch_size: usize,
    windows: usize,
    ramp: Option<&ArrivalRamp>,
    factory: F,
) -> Window
where
    K: KeyedTask + Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(usize) -> G + Sync,
    G: FnMut(usize, &mut Vec<K>) + Send,
{
    let batch_size = batch_size.max(1);
    let windows = windows.max(1);
    let run = AtomicBool::new(true);
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|producer| {
                let run = &run;
                let mut generate = factory(producer);
                scope.spawn(move || {
                    let mut local = 0u64;
                    if batch_size == 1 {
                        // Per-task protocol: the 1-capacity buffer is
                        // refilled in place, so the loop allocates nothing.
                        let mut single: Vec<K> = Vec::with_capacity(1);
                        while run.load(Ordering::Relaxed) {
                            if let Some(ramp) = ramp {
                                ramp_pause(ramp, started, duration);
                            }
                            generate(1, &mut single);
                            let task = single.pop().expect("generator fills one task");
                            if runtime.submit_detached(task).is_err() {
                                break;
                            }
                            local += 1;
                        }
                    } else {
                        // One staging buffer per producer, drained in place
                        // by the runtime every batch — the producer loop
                        // itself allocates nothing in steady state.
                        let mut batch: Vec<K> = Vec::with_capacity(batch_size);
                        while run.load(Ordering::Relaxed) {
                            if let Some(ramp) = ramp {
                                ramp_pause(ramp, started, duration);
                            }
                            generate(batch_size, &mut batch);
                            match runtime.submit_batch_detached_reusing(&mut batch) {
                                Ok(accepted) => local += accepted as u64,
                                Err(err) => {
                                    // Blocking submission only fails on
                                    // shutdown; the accepted prefix still
                                    // counts as produced.
                                    local += err.accepted as u64;
                                    break;
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        let slice = duration / windows as u32;
        let mut previous = runtime.stats();
        let mut reports = Vec::with_capacity(windows);
        for index in 0..windows {
            std::thread::sleep(slice);
            // Snapshot at each slice boundary; the deltas are the windowed
            // view (throughput and contention of *this* slice only).
            let now = runtime.stats();
            let delta = now.since(&previous);
            reports.push(WindowReport {
                index,
                duration: delta.duration,
                completed: delta.completed,
                throughput: delta.throughput(),
                contention_ratio: delta.contention_ratio(),
                repartitions: delta.repartitions,
                generation: now.partition_generation,
                active_workers: now.active_workers,
            });
            previous = now;
        }
        run.store(false, Ordering::Relaxed);
        // The final boundary snapshot doubles as the run's measurement:
        // completions that land while producers wind down their last batch
        // belong to the shutdown tail, not the measurement.
        let stats = previous;
        let elapsed = started.elapsed();
        let per_producer: Vec<u64> = handles
            .into_iter()
            .map(|handle| handle.join().expect("producer thread panicked"))
            .collect();
        Window {
            per_producer,
            elapsed,
            stats,
            reports,
        }
    })
}

/// Apply one generated transaction to a dictionary — the canonical
/// spec-to-operation mapping shared by the driver, the benches and the
/// integration tests.
pub fn apply_spec(dict: &dyn Dictionary, spec: &TxnSpec) {
    match spec.op {
        OpKind::Insert => {
            dict.insert(spec.key, spec.value);
        }
        OpKind::Delete => {
            dict.remove(spec.key);
        }
        OpKind::Lookup => {
            dict.lookup(spec.key);
        }
    }
}

/// The redo record for one generated transaction, in the collections wire
/// codec: inserts and deletes log their `DictOp`; lookups are read-only and
/// log nothing (their commits never wait on an fsync).
///
/// The returned buffer comes from the STM's payload pool
/// ([`katme_stm::recycled_payload`]); handing it to [`crate::Durable`] and
/// submitting completes the recycling cycle — the commit path returns it to
/// the pool after logging, so steady-state durable submission reuses the
/// same handful of buffers instead of allocating one per task.
pub fn spec_payload(spec: &TxnSpec) -> Option<Vec<u8>> {
    let op = match spec.op {
        OpKind::Insert => DictOp::Insert {
            key: spec.key,
            value: spec.value,
        },
        OpKind::Delete => DictOp::Remove { key: spec.key },
        OpKind::Lookup => return None,
    };
    let mut out = katme_stm::recycled_payload();
    if encode_op_into(&op, &mut out) {
        Some(out)
    } else {
        katme_stm::recycle_payload(out);
        None
    }
}

/// Pre-populate a dictionary so deletes find keys to remove from the start.
fn preload(dict: &dyn Dictionary, count: usize, seed: u64, distribution: DistributionKind) {
    let mut gen = OpGenerator::paper(distribution, seed.wrapping_mul(31).wrapping_add(7));
    for _ in 0..count {
        let spec = gen.next_spec();
        dict.insert(spec.key, spec.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_config_builder() {
        let cfg = DriverConfig::new()
            .with_workers(8)
            .with_producers(2)
            .with_scheduler(SchedulerKind::FixedKey)
            .with_model(ExecutorModel::Centralized)
            .with_duration(Duration::from_millis(50))
            .with_queue(QueueKind::Mutex)
            .with_contention_manager(CmKind::Karma)
            .with_work_stealing(true)
            .with_max_queue_depth(Some(64))
            .with_preload(5)
            .with_seed(9)
            .with_batch_size(16)
            .with_sample_threshold(2_000)
            .with_adaptation_interval(4_096)
            .with_drift_threshold(0.25)
            .with_max_repartitions(Some(7));
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.sample_threshold, Some(2_000));
        assert_eq!(cfg.adaptation_interval, Some(4_096));
        assert_eq!(cfg.drift_threshold, Some(0.25));
        assert_eq!(cfg.max_repartitions, Some(Some(7)));
        assert_eq!(cfg.producers, 2);
        assert_eq!(cfg.scheduler, SchedulerKind::FixedKey);
        assert_eq!(cfg.model, ExecutorModel::Centralized);
        assert_eq!(cfg.queue, QueueKind::Mutex);
        assert_eq!(cfg.contention_manager, CmKind::Karma);
        assert!(cfg.work_stealing);
        assert_eq!(cfg.max_queue_depth, Some(64));
        assert_eq!(cfg.preload, 5);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.batch_size, 16);
        assert_eq!(cfg.with_batch_size(0).batch_size, 1, "clamped to 1");
    }

    #[test]
    fn dictionary_run_completes_transactions_in_every_model() {
        for model in ExecutorModel::ALL {
            let config = DriverConfig::new()
                .with_workers(2)
                .with_producers(2)
                .with_model(model)
                .with_duration(Duration::from_millis(60))
                .with_preload(200);
            let result = Driver::new(config)
                .run_dictionary(StructureKind::HashTable, DistributionKind::Uniform);
            assert!(result.completed > 0, "{model}: {result:?}");
            assert!(result.produced >= result.completed, "{model}: {result:?}");
            assert!(result.throughput > 0.0, "{model}");
        }
    }

    #[test]
    fn batched_dictionary_run_completes_transactions_in_every_model() {
        for model in ExecutorModel::ALL {
            let config = DriverConfig::new()
                .with_workers(2)
                .with_producers(2)
                .with_model(model)
                .with_duration(Duration::from_millis(60))
                .with_preload(200)
                .with_batch_size(32);
            let result = Driver::new(config)
                .run_dictionary(StructureKind::HashTable, DistributionKind::Uniform);
            assert!(result.completed > 0, "{model}: {result:?}");
            assert!(result.produced >= result.completed, "{model}: {result:?}");
        }
    }

    #[test]
    fn windowed_run_reports_per_window_deltas() {
        let config = DriverConfig::new()
            .with_workers(2)
            .with_producers(2)
            .with_duration(Duration::from_millis(120))
            .with_preload(200);
        let (result, windows) = Driver::new(config).run_dictionary_windowed(
            StructureKind::HashTable,
            DistributionKind::Uniform,
            4,
        );
        assert_eq!(windows.len(), 4);
        assert!(result.completed > 0);
        let window_sum: u64 = windows.iter().map(|w| w.completed).sum();
        assert_eq!(
            window_sum, result.completed,
            "window deltas must tile the run"
        );
        for (index, window) in windows.iter().enumerate() {
            assert_eq!(window.index, index);
            assert!(window.duration > Duration::ZERO);
            assert!(window.contention_ratio >= 0.0);
        }
    }

    #[test]
    fn durable_dictionary_run_logs_commits_and_recovers() {
        let dir = std::env::temp_dir().join(format!("katme-driver-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = DriverConfig::new()
            .with_workers(2)
            .with_producers(2)
            .with_duration(Duration::from_millis(80))
            .with_preload(100)
            .with_batch_size(8)
            .with_durability(&dir);

        let result = Driver::new(config.clone())
            .run_dictionary_durable(StructureKind::HashTable, DistributionKind::Uniform);
        assert!(result.completed > 0, "{result:?}");
        let view = result.durability.expect("durable run reports the plane");
        assert!(view.appends > 0, "writing commits must be logged");
        assert!(view.fsyncs > 0);
        assert!(
            view.fsyncs <= view.appends,
            "group commit never syncs more often than it appends"
        );
        assert_eq!(result.recovery, Some(RecoveryReport::default()));

        // Second life over the same directory: recovery replays the first
        // run's surviving log (checkpoint + suffix) before the window.
        let again = Driver::new(config)
            .run_dictionary_durable(StructureKind::HashTable, DistributionKind::Uniform);
        let recovery = again.recovery.expect("durable run reports recovery");
        assert!(
            recovery.replayed > 0 || recovery.restored_checkpoint,
            "first run's log must be recovered: {recovery:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trivial_run_reports_both_sides_of_figure_4() {
        let config = DriverConfig::new()
            .with_workers(2)
            .with_duration(Duration::from_millis(50));
        let driver = Driver::new(config);
        let free_running = driver.run_trivial(false);
        let through_executor = driver.run_trivial(true);
        assert!(free_running.completed > 0);
        assert!(through_executor.completed > 0);
        assert_eq!(free_running.model, ExecutorModel::NoExecutor);
        assert_eq!(free_running.producers, 0);
    }
}
