//! The running system: worker pool, optional central dispatcher, live stats.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use katme_core::cost::CostModelView;
use katme_core::drift::AdaptationEvent;
use katme_core::executor::{Executor, ShutdownGate, SubmitError, SubmitRejection};
use katme_core::key::TxnKey;
use katme_core::lane::LaneTable;
use katme_core::models::ExecutorModel;
use katme_core::scheduler::Scheduler;
use katme_core::stats::LoadBalance;
use katme_durability::DurabilityView;
use katme_queue::{thread_stripe, Backoff, TwoLockQueue};
use katme_stm::{
    run_block_tasks, with_durable_payload, with_task_key, KeyRangeSnapshot, MvTask, Stm,
    StmStatsSnapshot,
};

use crate::durability::{DurabilityPlane, RecoveryReport};
use crate::error::KatmeError;
use crate::net::{NetCounters, NetView};
use crate::task::{handle_pair, Completion, KeyedTask, TaskHandle};

/// One queued unit of work: the pre-computed transaction key, the payload,
/// and (for handle-returning submissions) the completion side of the handle.
pub(crate) struct Envelope<T, R> {
    key: TxnKey,
    task: T,
    completion: Option<Completion<R>>,
    /// Position in the originating batch (0 for single submissions); lets a
    /// partial batch failure map rejected envelopes back to their handles
    /// and restore the caller's submission order.
    batch_index: usize,
    /// Serialized redo record for the durability plane, extracted at
    /// submission time (where the `KeyedTask` bound lives) and staged
    /// around the handler call on the worker. `None` when durability is off
    /// or the task is read-only.
    payload: Option<Vec<u8>>,
}

/// Typed partial-failure report from the batch submission API
/// ([`Runtime::submit_batch`], [`Runtime::try_submit_batch`] and their
/// detached variants).
///
/// Distinguishes "never accepted" (`accepted == 0`) from "partially
/// accepted" (`accepted > 0`): every accepted task is in flight and — for
/// the handle-returning calls — observable through
/// [`handles`](BatchSubmitError::handles); the rejected tasks are handed
/// back in their original submission order, ready to resubmit.
pub struct BatchSubmitError<T, R> {
    /// Number of tasks accepted before the failure.
    pub accepted: usize,
    /// Handles for the accepted tasks, in submission order (empty for the
    /// detached variants, which allocate no handles).
    pub handles: Vec<TaskHandle<R>>,
    /// The tasks that were not accepted, in submission order.
    pub rejected: Vec<T>,
    /// Why acceptance stopped ([`KatmeError::QueueFull`] or
    /// [`KatmeError::ShuttingDown`]).
    pub error: KatmeError,
}

impl<T, R> BatchSubmitError<T, R> {
    /// True when some (but not all) of the batch was accepted.
    pub fn is_partial(&self) -> bool {
        self.accepted > 0
    }

    /// Recover the rejected tasks for a retry.
    pub fn into_rejected(self) -> Vec<T> {
        self.rejected
    }
}

impl<T, R> std::fmt::Debug for BatchSubmitError<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSubmitError")
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected.len())
            .field("error", &self.error)
            .finish()
    }
}

impl<T, R> std::fmt::Display for BatchSubmitError<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch submission accepted {} task(s), rejected {}: {}",
            self.accepted,
            self.rejected.len(),
            self.error
        )
    }
}

impl<T, R> std::error::Error for BatchSubmitError<T, R> {}

/// Build a [`BatchSubmitError`] from rejected envelopes: restores the
/// caller's submission order, discards the rejected tasks' completions (the
/// matching handles are dropped here, never returned), and keeps only the
/// handles of accepted tasks. `accepted` is left at 0 for the caller to fill
/// in.
fn unpack_rejection<T, R>(
    mut rejected: Vec<Envelope<T, R>>,
    handles: Vec<TaskHandle<R>>,
    error: KatmeError,
) -> BatchSubmitError<T, R> {
    rejected.sort_by_key(|envelope| envelope.batch_index);
    let accepted_handles = if handles.is_empty() {
        handles
    } else {
        let rejected_indices: std::collections::HashSet<usize> = rejected
            .iter()
            .map(|envelope| envelope.batch_index)
            .collect();
        handles
            .into_iter()
            .enumerate()
            .filter_map(|(index, handle)| (!rejected_indices.contains(&index)).then_some(handle))
            .collect()
    };
    BatchSubmitError {
        accepted: 0,
        handles: accepted_handles,
        rejected: rejected.into_iter().map(|envelope| envelope.task).collect(),
        error,
    }
}

/// Multi-version lane state threaded from the builder: the routing table
/// the cost plane flips ranges in, and the first-pass parallelism MV blocks
/// execute with.
pub(crate) struct MvLaneState {
    pub(crate) table: Arc<LaneTable>,
    pub(crate) parallelism: usize,
    /// Serializes MV blocks from concurrent submitters. Designated ranges
    /// are, by construction, the contended ones: two blocks racing over the
    /// same hot keys would invalidate each other's bases at publish and
    /// re-execute most of their operations every retry — strictly worse
    /// than running the blocks back to back. One block at a time is also
    /// Block-STM's own execution model; the gate restores it for the
    /// hybrid lane. Uncontended submitters pay one free mutex acquire.
    pub(crate) block_gate: std::sync::Mutex<()>,
}

/// The optional runtime planes threaded from the builder, bundled so
/// [`Runtime::start`] takes one argument per plane family rather than one
/// per plane.
pub(crate) struct RuntimePlanes {
    /// Durability plane (WAL + checkpointer), see [`crate::Builder::durability`].
    pub(crate) durability: Option<Arc<DurabilityPlane>>,
    /// Multi-version optimistic lane, see [`crate::Builder::mv_lane`].
    pub(crate) mv: Option<MvLaneState>,
}

/// Stripe count for the inline-completion counters (power of two).
const INLINE_STRIPES: usize = 16;

/// Cache-line-aligned counter so striped increments do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicU64);

/// Per-thread-striped counter. The no-executor model increments this once
/// per inline-executed task; striping keeps the Figure-1(a) baseline free of
/// cross-thread cache-line *contention*. (The baseline still pays the
/// facade's fixed per-task costs — an accepting-flag load, a dyn-Fn handler
/// call, one striped increment — a few nanoseconds against STM transactions
/// costing hundreds; the paper's qualitative overhead shape is preserved.)
struct StripedCounter {
    stripes: Vec<PaddedCounter>,
}

impl StripedCounter {
    fn new() -> Self {
        StripedCounter {
            stripes: (0..INLINE_STRIPES)
                .map(|_| PaddedCounter::default())
                .collect(),
        }
    }

    fn increment(&self) {
        self.increment_by(1);
    }

    fn increment_by(&self, count: u64) {
        let stripe = thread_stripe() & (INLINE_STRIPES - 1);
        self.stripes[stripe].0.fetch_add(count, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Central-dispatcher state for [`ExecutorModel::Centralized`] (Figure 1(b)):
/// producers push raw envelopes onto one shared queue; a single dispatcher
/// thread runs the scheduler and forwards to the worker queues.
struct Central<T: Send + 'static, R: Send + 'static> {
    queue: Arc<TwoLockQueue<Envelope<T, R>>>,
    /// Intake gate guarding the central queue against dispatcher exit (the
    /// same handshake the worker pool uses — see [`ShutdownGate`]).
    gate: Arc<ShutdownGate>,
    depth: Option<usize>,
    dispatcher: Option<JoinHandle<()>>,
    /// Envelopes the dispatcher could not forward because the worker pool
    /// had already stopped (counted into `ShutdownReport::abandoned`).
    dropped: Arc<AtomicU64>,
}

/// A built, running KATME system: STM + scheduler + queues + workers behind
/// one handle. Created by [`Katme::builder`](crate::Katme::builder).
///
/// `T` is the task type (any [`KeyedTask`]), `R` the result type produced by
/// the handler the runtime was built with.
pub struct Runtime<T: Send + 'static, R: Send + 'static> {
    model: ExecutorModel,
    scheduler: Arc<dyn Scheduler>,
    handler: Arc<dyn Fn(usize, T) -> R + Send + Sync>,
    /// Worker pool (None for [`ExecutorModel::NoExecutor`]). Shared with the
    /// central dispatcher thread under [`ExecutorModel::Centralized`];
    /// shutdown joins the dispatcher first, then unwraps the `Arc`.
    executor: Option<Arc<Executor<Envelope<T, R>>>>,
    central: Option<Central<T, R>>,
    accepting: Arc<AtomicBool>,
    stm: Stm,
    stm_baseline: StmStatsSnapshot,
    started: Instant,
    producers: usize,
    drain_on_shutdown: bool,
    /// Tasks accepted through the queued models (the no-executor model
    /// counts via `inline_completed` instead, to keep its hot path free of
    /// shared-counter contention).
    submitted: AtomicU64,
    /// Tasks executed inline by `submit` under [`ExecutorModel::NoExecutor`].
    inline_completed: StripedCounter,
    /// The durability plane (WAL + checkpointer), when the runtime was
    /// built with [`crate::Builder::durability`]. Shut down *after* the
    /// worker pool, so every drained task's commit is already durable.
    durability: Option<Arc<DurabilityPlane>>,
    /// The multi-version optimistic lane, when the runtime was built with
    /// [`crate::Builder::mv_lane`]. Batch submissions whose keys fall in a
    /// designated range execute as one optimistic block instead of routing
    /// through the queues.
    mv: Option<MvLaneState>,
    /// Connection-plane counters, registered once by a network front end
    /// ([`Runtime::attach_net`]); `None` until a server attaches, after
    /// which [`Runtime::stats`] and [`Runtime::shutdown`] carry the
    /// snapshot.
    net: OnceLock<Arc<NetCounters>>,
}

impl<T: Send + 'static, R: Send + 'static> Runtime<T, R> {
    pub(crate) fn start(
        model: ExecutorModel,
        scheduler: Arc<dyn Scheduler>,
        handler: Arc<dyn Fn(usize, T) -> R + Send + Sync>,
        executor_config: katme_core::executor::ExecutorConfig,
        stm: Stm,
        producers: usize,
        planes: RuntimePlanes,
    ) -> Self {
        let RuntimePlanes { durability, mv } = planes;
        let accepting = Arc::new(AtomicBool::new(true));
        let max_queue_depth = executor_config.max_queue_depth;
        let drain_on_shutdown = executor_config.drain_on_shutdown;
        let batch_size = executor_config.batch_size;

        let executor = if model.uses_queues() {
            let handler = Arc::clone(&handler);
            Some(Arc::new(Executor::start(
                executor_config,
                Arc::clone(&scheduler),
                move |worker, envelope: Envelope<T, R>| {
                    // Scope the task to its key so the STM's key-range
                    // telemetry (when attached) attributes this task's
                    // commits and aborts to the right range; stage the
                    // durable payload (when present) for the commit path.
                    let result = with_task_key(envelope.key, || match envelope.payload {
                        Some(payload) => {
                            with_durable_payload(payload, || handler(worker, envelope.task))
                        }
                        None => handler(worker, envelope.task),
                    });
                    if let Some(completion) = envelope.completion {
                        completion.complete(result);
                    }
                },
            )))
        } else {
            None
        };
        if durability.is_some() {
            if let Some(executor) = &executor {
                // Workers drain the per-thread group-commit wait accumulator
                // after every handler batch, attributing fsync stalls to the
                // worker that incurred them.
                executor.attach_stall_probe(Arc::new(katme_stm::take_group_wait_nanos));
            }
        }

        let central = match (model, &executor) {
            (ExecutorModel::Centralized, Some(executor)) => {
                let queue: Arc<TwoLockQueue<Envelope<T, R>>> = Arc::new(TwoLockQueue::new());
                // The dispatcher's queue is demand the workers have not seen
                // yet: expose its depth to the pool telemetry so a saturated
                // dispatcher counts as a grow signal for the elastic
                // controller and the cost plane.
                {
                    let probe = Arc::clone(&queue);
                    executor.attach_backlog_probe(Arc::new(move || probe.count()));
                }
                let gate = Arc::new(ShutdownGate::new());
                let dropped = Arc::new(AtomicU64::new(0));
                let dispatcher = {
                    let queue = Arc::clone(&queue);
                    let gate = Arc::clone(&gate);
                    let forward = Arc::clone(executor);
                    let dropped = Arc::clone(&dropped);
                    std::thread::Builder::new()
                        .name("katme-dispatcher".into())
                        .spawn(move || {
                            let mut backoff = Backoff::new();
                            // Batched forwarding: drain up to batch_size
                            // envelopes per wakeup and hand them to the
                            // worker pool in one batch submission, so the
                            // scheduler and the worker queues see one call
                            // per batch instead of one per task.
                            let mut buffer: Vec<Envelope<T, R>> = Vec::with_capacity(batch_size);
                            loop {
                                // Exit handshake (see ShutdownGate): must be
                                // read *before* the dequeue below.
                                let may_exit = gate.may_finish();
                                let took = queue.dequeue_batch(&mut buffer, batch_size);
                                if took > 0 {
                                    // A full worker queue applies back-
                                    // pressure to the dispatcher itself.
                                    // Once the workers have stopped (only in
                                    // the no-drain teardown) the remaining
                                    // envelopes are dropped: their handles
                                    // resolve as abandoned and the drops are
                                    // counted into the report.
                                    let keyed: Vec<_> = buffer
                                        .drain(..)
                                        .map(|envelope| (envelope.key, envelope))
                                        .collect();
                                    if let Err(err) = forward.submit_batch_blocking(keyed) {
                                        dropped.fetch_add(
                                            err.rejected.len() as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                    backoff.reset();
                                } else {
                                    if may_exit {
                                        return;
                                    }
                                    backoff.snooze();
                                }
                            }
                        })
                        .expect("failed to spawn dispatcher thread")
                };
                Some(Central {
                    queue,
                    gate,
                    depth: max_queue_depth,
                    dispatcher: Some(dispatcher),
                    dropped,
                })
            }
            _ => None,
        };

        let stm_baseline = stm.snapshot();
        Runtime {
            model,
            scheduler,
            handler,
            executor,
            central,
            accepting,
            stm,
            stm_baseline,
            started: Instant::now(),
            producers,
            drain_on_shutdown,
            submitted: AtomicU64::new(0),
            inline_completed: StripedCounter::new(),
            durability,
            mv,
            net: OnceLock::new(),
        }
    }

    /// The executor model this runtime was built with.
    pub fn model(&self) -> ExecutorModel {
        self.model
    }

    /// Number of worker slots (the elastic pool's growth ceiling; 1 for the
    /// no-executor model, where the submitting thread is the worker).
    pub fn workers(&self) -> usize {
        self.executor
            .as_ref()
            .map_or(1, |executor| executor.workers())
    }

    /// Worker threads currently active (equals [`Runtime::workers`] for a
    /// fixed-size pool; moves within the configured range for an elastic
    /// one).
    pub fn active_workers(&self) -> usize {
        self.executor
            .as_ref()
            .map_or(1, |executor| executor.active_workers())
    }

    /// The producer-count hint this runtime was configured with (used by the
    /// experiment driver; the runtime itself accepts submissions from any
    /// number of threads).
    pub fn producers(&self) -> usize {
        self.producers
    }

    /// The scheduling policy in effect.
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.scheduler
    }

    /// The STM instance transactions run against (cloning shares counters).
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// Live durability-plane counters (appends, fsyncs, mean group size,
    /// checkpoint lag, ...), `None` for a volatile runtime.
    pub fn durability(&self) -> Option<DurabilityView> {
        self.durability.as_ref().map(|plane| plane.view())
    }

    /// What startup recovery restored and replayed, `None` for a volatile
    /// runtime. All-defaults for a durable runtime that started from an
    /// empty (or absent) log directory.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.durability.as_ref().map(|plane| plane.recovery())
    }

    /// True until [`Runtime::stop`] or [`Runtime::shutdown`] is called.
    pub fn is_running(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Submit a task, blocking under back-pressure, and receive a typed
    /// handle to its result. The task routes itself via [`KeyedTask::key`].
    pub fn submit(&self, task: T) -> Result<TaskHandle<R>, KatmeError>
    where
        T: KeyedTask,
    {
        let (handle, completion) = handle_pair();
        self.dispatch(task, Some(completion), true)?;
        Ok(handle)
    }

    /// Non-blocking [`Runtime::submit`]: rejects with
    /// [`KatmeError::QueueFull`] instead of waiting out back-pressure, and
    /// with [`KatmeError::ShuttingDown`] once the runtime is stopping.
    pub fn try_submit(&self, task: T) -> Result<TaskHandle<R>, KatmeError>
    where
        T: KeyedTask,
    {
        let (handle, completion) = handle_pair();
        self.dispatch(task, Some(completion), false)?;
        Ok(handle)
    }

    /// Fire-and-forget submission (no handle allocation) — the hot path for
    /// throughput experiments. Blocks under back-pressure.
    pub fn submit_detached(&self, task: T) -> Result<(), KatmeError>
    where
        T: KeyedTask,
    {
        self.dispatch(task, None, true)
    }

    /// Non-blocking [`Runtime::submit_detached`].
    pub fn try_submit_detached(&self, task: T) -> Result<(), KatmeError>
    where
        T: KeyedTask,
    {
        self.dispatch(task, None, false)
    }

    /// Submit a whole batch of tasks, blocking under back-pressure, and
    /// receive one typed handle per task (in submission order).
    ///
    /// The entire submit→schedule→enqueue path runs batch-wise: one
    /// scheduler pass over all keys, one queue lock round-trip per worker
    /// run, one shutdown-gate crossing per run — the per-task dispatch cost
    /// of a loop over [`Runtime::submit`] collapses to a handful of
    /// operations per batch. On failure (shutdown observed mid-batch) the
    /// [`BatchSubmitError`] reports the accepted prefix's handles and hands
    /// the rejected tasks back in submission order.
    pub fn submit_batch(
        &self,
        mut tasks: Vec<T>,
    ) -> Result<Vec<TaskHandle<R>>, BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        self.dispatch_batch(&mut tasks, true, true)
            .map(|(_, handles)| handles)
    }

    /// Non-blocking [`Runtime::submit_batch`]: instead of waiting out
    /// back-pressure, fills the destination queues up to their depth bound
    /// and reports the overflow as a partial failure
    /// ([`KatmeError::QueueFull`]) with the accepted handles and the
    /// rejected remainder, so the producer retries exactly what was not
    /// taken.
    pub fn try_submit_batch(
        &self,
        mut tasks: Vec<T>,
    ) -> Result<Vec<TaskHandle<R>>, BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        self.dispatch_batch(&mut tasks, true, false)
            .map(|(_, handles)| handles)
    }

    /// Fire-and-forget batch submission (no handle allocations) — the hot
    /// path for throughput experiments. Blocks under back-pressure; returns
    /// the number of tasks accepted (the whole batch on `Ok`).
    pub fn submit_batch_detached(&self, mut tasks: Vec<T>) -> Result<usize, BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        self.dispatch_batch(&mut tasks, false, true)
            .map(|(accepted, _)| accepted)
    }

    /// [`Runtime::submit_batch_detached`] that drains `tasks` in place and
    /// leaves the emptied buffer (capacity intact) with the caller — the
    /// zero-allocation producer loop refills and resubmits the same `Vec`
    /// every batch instead of building a new one. On error, `tasks` may
    /// hold the rejected remainder's buffer no longer (the rejects travel
    /// in the returned [`BatchSubmitError`], like the consuming variant).
    pub fn submit_batch_detached_reusing(
        &self,
        tasks: &mut Vec<T>,
    ) -> Result<usize, BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        self.dispatch_batch(tasks, false, true)
            .map(|(accepted, _)| accepted)
    }

    /// Non-blocking [`Runtime::submit_batch_detached`].
    pub fn try_submit_batch_detached(
        &self,
        mut tasks: Vec<T>,
    ) -> Result<usize, BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        self.dispatch_batch(&mut tasks, false, false)
            .map(|(accepted, _)| accepted)
    }

    /// Batch spine shared by the four `*_batch` entry points. Returns the
    /// accepted count and (for `with_handles`) one handle per accepted task.
    #[allow(clippy::type_complexity)]
    fn dispatch_batch(
        &self,
        tasks: &mut Vec<T>,
        with_handles: bool,
        blocking: bool,
    ) -> Result<(usize, Vec<TaskHandle<R>>), BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        let total = tasks.len();
        if total == 0 {
            return Ok((0, Vec::new()));
        }
        if !self.accepting.load(Ordering::Acquire) {
            return Err(BatchSubmitError {
                accepted: 0,
                handles: Vec::new(),
                rejected: std::mem::take(tasks),
                error: KatmeError::ShuttingDown,
            });
        }

        // Multi-version lane split: tasks whose keys fall in a designated
        // range execute optimistically as one block instead of routing
        // through the queues. `is_mv` is a single relaxed load when no range
        // is designated, so an undesignated lane costs the batch path
        // nothing.
        if let Some(mv) = &self.mv {
            if tasks.iter().any(|task| mv.table.is_mv(task.key())) {
                return self.dispatch_batch_mv(tasks, with_handles, blocking);
            }
        }

        match self.model {
            ExecutorModel::NoExecutor => {
                // Figure 1(a): the batch executes inline in the submitting
                // thread; one striped-counter update covers the whole batch.
                let mut handles = Vec::with_capacity(if with_handles { total } else { 0 });
                for task in tasks.drain(..) {
                    let result = self.run_inline(task);
                    if with_handles {
                        let (handle, completion) = handle_pair();
                        completion.complete(result);
                        handles.push(handle);
                    }
                }
                self.inline_completed.increment_by(total as u64);
                Ok((total, handles))
            }
            ExecutorModel::Centralized => {
                let central = self.central.as_ref().expect("centralized model");
                let (mut envelopes, handles) = self.package(tasks, with_handles);

                // Back-pressure against the central queue, respected
                // chunk-wise: never enqueue more than the observed free
                // space, so a large batch cannot blow the depth bound by a
                // whole batch. Blocking submissions wait for space and
                // continue with the remainder; non-blocking submissions
                // accept the prefix that fits and report the rest as
                // QueueFull overflow.
                let mut accepted = 0usize;
                loop {
                    let space = match central.depth {
                        None => envelopes.len(),
                        Some(depth) => {
                            if blocking {
                                let mut backoff = Backoff::new();
                                loop {
                                    let space = depth.saturating_sub(central.queue.count());
                                    if space > 0 {
                                        break space;
                                    }
                                    if !self.accepting.load(Ordering::Acquire) {
                                        let mut err = unpack_rejection(
                                            envelopes,
                                            handles,
                                            KatmeError::ShuttingDown,
                                        );
                                        err.accepted = accepted;
                                        return Err(err);
                                    }
                                    backoff.snooze();
                                }
                            } else {
                                depth.saturating_sub(central.queue.count())
                            }
                        }
                    };
                    if space == 0 {
                        let mut err = unpack_rejection(envelopes, handles, KatmeError::QueueFull);
                        err.accepted = accepted;
                        return Err(err);
                    }
                    let overflow = if space < envelopes.len() {
                        envelopes.split_off(space)
                    } else {
                        Vec::new()
                    };
                    let chunk_len = envelopes.len();
                    // Count the acceptance before the enqueue so a concurrent
                    // stats() never observes completed > submitted.
                    self.submitted
                        .fetch_add(chunk_len as u64, Ordering::Relaxed);
                    if !central.gate.enter() {
                        self.submitted
                            .fetch_sub(chunk_len as u64, Ordering::Relaxed);
                        envelopes.extend(overflow);
                        let mut err =
                            unpack_rejection(envelopes, handles, KatmeError::ShuttingDown);
                        err.accepted = accepted;
                        return Err(err);
                    }
                    central.queue.enqueue_batch(envelopes);
                    central.gate.exit();
                    accepted += chunk_len;

                    if overflow.is_empty() {
                        return Ok((accepted, handles));
                    }
                    if !blocking {
                        // Filled to the bound with tasks left over: overflow.
                        let mut err = unpack_rejection(overflow, handles, KatmeError::QueueFull);
                        err.accepted = accepted;
                        return Err(err);
                    }
                    envelopes = overflow;
                }
            }
            ExecutorModel::Parallel => {
                let executor = self.executor.as_ref().expect("parallel model");
                let (keyed, handles) = self.package_keyed(tasks, with_handles);
                // Count the acceptance before the push so a concurrent
                // stats() never observes completed > submitted.
                self.submitted.fetch_add(total as u64, Ordering::Relaxed);
                let outcome = if blocking {
                    executor.submit_batch_blocking(keyed)
                } else {
                    executor.try_submit_batch(keyed)
                };
                match outcome {
                    Ok(accepted) => Ok((accepted, handles)),
                    Err(err) => {
                        self.submitted
                            .fetch_sub(err.rejected.len() as u64, Ordering::Relaxed);
                        let error = match err.reason {
                            SubmitRejection::QueueFull => KatmeError::QueueFull,
                            SubmitRejection::ShuttingDown => KatmeError::ShuttingDown,
                        };
                        let accepted = err.accepted;
                        let rejected_envelopes: Vec<Envelope<T, R>> = err
                            .into_rejected()
                            .into_iter()
                            .map(|(_, envelope)| envelope)
                            .collect();
                        let mut batch_err = unpack_rejection(rejected_envelopes, handles, error);
                        batch_err.accepted = accepted;
                        Err(batch_err)
                    }
                }
            }
        }
    }

    /// Batch spine for a batch that contains at least one MV-designated
    /// task. The batch is split in submission order: the single-version
    /// remainder is handed to the normal queued path first (workers chew it
    /// concurrently), then the MV sub-batch executes as one optimistic
    /// block inline on the submitting thread — multi-version reads, a
    /// validate-and-re-execute-dependents pass, and one composite publish
    /// in deterministic (batch) commit order, with redo records enqueued to
    /// the durability sink in that same order.
    ///
    /// An MV block cannot be rejected (it runs inline, like the no-executor
    /// model), so back-pressure applies only to the remainder. On a partial
    /// remainder failure the MV tasks still execute and count as accepted;
    /// the error's handles list the MV handles after the accepted remainder
    /// handles.
    #[allow(clippy::type_complexity)]
    fn dispatch_batch_mv(
        &self,
        tasks: &mut Vec<T>,
        with_handles: bool,
        blocking: bool,
    ) -> Result<(usize, Vec<TaskHandle<R>>), BatchSubmitError<T, R>>
    where
        T: KeyedTask + Clone,
    {
        let mv = self.mv.as_ref().expect("mv lane state");
        let total = tasks.len();
        let durable = self.durability.is_some();

        let mut mv_tasks: Vec<(usize, T)> = Vec::new();
        let mut rest: Vec<(usize, T)> = Vec::new();
        for (index, task) in tasks.drain(..).enumerate() {
            if mv.table.is_mv(task.key()) {
                mv_tasks.push((index, task));
            } else {
                rest.push((index, task));
            }
        }
        let mv_len = mv_tasks.len();

        // Hand the single-version remainder to the normal path first; its
        // MV mask is all-false, so the recursion takes the plain spine.
        let rest_indices: Vec<usize> = rest.iter().map(|&(index, _)| index).collect();
        let rest_outcome = if rest.is_empty() {
            Ok((0, Vec::new()))
        } else {
            let mut rest_tasks: Vec<T> = rest.into_iter().map(|(_, task)| task).collect();
            self.dispatch_batch(&mut rest_tasks, with_handles, blocking)
        };

        // The MV block: one entry per task, keyed for the range telemetry
        // and carrying its redo payload for the commit-ordered durability
        // enqueue. Every entry runs through the one shared handler below
        // (`run_block_tasks`), so the block spine boxes no per-task closure;
        // the handler consumes the task, and a block op may be re-executed
        // after a dependency moves, so each run clones it.
        let block_tasks: Vec<MvTask<T>> = mv_tasks
            .iter()
            .map(|(_, task)| MvTask {
                key: Some(task.key()),
                payload: if durable {
                    task.durable_payload()
                } else {
                    None
                },
                task: task.clone(),
            })
            .collect();
        self.submitted.fetch_add(mv_len as u64, Ordering::Relaxed);
        let handler = &self.handler;
        let outcome = {
            let _block_turn = mv.block_gate.lock().unwrap_or_else(|e| e.into_inner());
            run_block_tasks(
                &self.stm,
                block_tasks,
                |task| handler(0, task.clone()),
                mv.parallelism,
            )
        };
        self.inline_completed.increment_by(mv_len as u64);

        let mut mv_handles: Vec<(usize, TaskHandle<R>)> =
            Vec::with_capacity(if with_handles { mv_len } else { 0 });
        for ((index, _), result) in mv_tasks.into_iter().zip(outcome.results) {
            if with_handles {
                let (handle, completion) = handle_pair();
                completion.complete(result);
                mv_handles.push((index, handle));
            }
        }

        match rest_outcome {
            Ok((rest_accepted, rest_handles)) => {
                let handles = if with_handles {
                    // Positional merge back into the caller's submission
                    // order.
                    let mut slots: Vec<Option<TaskHandle<R>>> = (0..total).map(|_| None).collect();
                    for (index, handle) in rest_indices.into_iter().zip(rest_handles) {
                        slots[index] = Some(handle);
                    }
                    for (index, handle) in mv_handles {
                        slots[index] = Some(handle);
                    }
                    slots
                        .into_iter()
                        .map(|slot| slot.expect("every batch position produced a handle"))
                        .collect()
                } else {
                    Vec::new()
                };
                Ok((rest_accepted + mv_len, handles))
            }
            Err(mut err) => {
                // The MV sub-batch executed regardless; report it as
                // accepted. The remainder's accepted/rejected split keeps
                // its own relative order.
                err.accepted += mv_len;
                err.handles
                    .extend(mv_handles.into_iter().map(|(_, handle)| handle));
                Err(err)
            }
        }
    }

    /// Execute one task inline on the submitting thread (the no-executor
    /// model), staging its durable payload for the commit path when the
    /// durability plane is on.
    fn run_inline(&self, mut task: T) -> R
    where
        T: KeyedTask,
    {
        let key = task.key();
        let payload = if self.durability.is_some() {
            task.take_durable_payload()
        } else {
            None
        };
        with_task_key(key, || match payload {
            Some(payload) => with_durable_payload(payload, || (self.handler)(0, task)),
            None => (self.handler)(0, task),
        })
    }

    /// Wrap a batch of tasks into indexed envelopes, allocating one handle
    /// per task when requested. Drains `tasks` in place so the caller's
    /// buffer keeps its capacity for the next batch.
    fn package(
        &self,
        tasks: &mut Vec<T>,
        with_handles: bool,
    ) -> (Vec<Envelope<T, R>>, Vec<TaskHandle<R>>)
    where
        T: KeyedTask,
    {
        let durable = self.durability.is_some();
        let mut handles = Vec::with_capacity(if with_handles { tasks.len() } else { 0 });
        let envelopes = tasks
            .drain(..)
            .enumerate()
            .map(|(batch_index, mut task)| {
                let completion = if with_handles {
                    let (handle, completion) = handle_pair();
                    handles.push(handle);
                    Some(completion)
                } else {
                    None
                };
                let payload = if durable {
                    task.take_durable_payload()
                } else {
                    None
                };
                Envelope {
                    key: task.key(),
                    task,
                    completion,
                    batch_index,
                    payload,
                }
            })
            .collect();
        (envelopes, handles)
    }

    /// [`Runtime::package`], but producing the `(key, envelope)` pairs the
    /// executor's batch API consumes — one pass, staged directly into a
    /// buffer recycled from the executor's batch pool (see
    /// [`katme_core::executor::Executor::recycled_batch`]), so the parallel
    /// model's steady-state packaging allocates nothing.
    #[allow(clippy::type_complexity)]
    fn package_keyed(
        &self,
        tasks: &mut Vec<T>,
        with_handles: bool,
    ) -> (Vec<(TxnKey, Envelope<T, R>)>, Vec<TaskHandle<R>>)
    where
        T: KeyedTask,
    {
        let durable = self.durability.is_some();
        let mut handles = Vec::with_capacity(if with_handles { tasks.len() } else { 0 });
        let mut keyed = self
            .executor
            .as_ref()
            .map(|executor| executor.recycled_batch())
            .unwrap_or_default();
        keyed.reserve(tasks.len());
        for (batch_index, mut task) in tasks.drain(..).enumerate() {
            let completion = if with_handles {
                let (handle, completion) = handle_pair();
                handles.push(handle);
                Some(completion)
            } else {
                None
            };
            let key = task.key();
            let payload = if durable {
                task.take_durable_payload()
            } else {
                None
            };
            keyed.push((
                key,
                Envelope {
                    key,
                    task,
                    completion,
                    batch_index,
                    payload,
                },
            ));
        }
        (keyed, handles)
    }

    fn dispatch(
        &self,
        mut task: T,
        completion: Option<Completion<R>>,
        blocking: bool,
    ) -> Result<(), KatmeError>
    where
        T: KeyedTask,
    {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(KatmeError::ShuttingDown);
        }
        let key = task.key();

        match self.model {
            ExecutorModel::NoExecutor => {
                // Figure 1(a): the producer executes its own transaction
                // synchronously — no scheduling, no queuing, so the model
                // stays a clean zero-overhead baseline.
                let result = self.run_inline(task);
                if let Some(completion) = completion {
                    completion.complete(result);
                }
                self.inline_completed.increment();
                Ok(())
            }
            ExecutorModel::Centralized => {
                let central = self.central.as_ref().expect("centralized model");
                let payload = if self.durability.is_some() {
                    task.take_durable_payload()
                } else {
                    None
                };
                let envelope = Envelope {
                    key,
                    task,
                    completion,
                    batch_index: 0,
                    payload,
                };
                if let Some(depth) = central.depth {
                    if blocking {
                        let mut backoff = Backoff::new();
                        while central.queue.count() >= depth {
                            if !self.accepting.load(Ordering::Acquire) {
                                return Err(KatmeError::ShuttingDown);
                            }
                            backoff.snooze();
                        }
                    } else if central.queue.count() >= depth {
                        return Err(KatmeError::QueueFull);
                    }
                }
                // Count the acceptance before the enqueue so a concurrent
                // stats() never observes completed > submitted.
                self.submitted.fetch_add(1, Ordering::Relaxed);
                if !central.gate.enter() {
                    self.submitted.fetch_sub(1, Ordering::Relaxed);
                    return Err(KatmeError::ShuttingDown);
                }
                central.queue.enqueue(envelope);
                central.gate.exit();
                Ok(())
            }
            ExecutorModel::Parallel => {
                let executor = self.executor.as_ref().expect("parallel model");
                let payload = if self.durability.is_some() {
                    task.take_durable_payload()
                } else {
                    None
                };
                let envelope = Envelope {
                    key,
                    task,
                    completion,
                    batch_index: 0,
                    payload,
                };
                // Count the acceptance before the push so a concurrent
                // stats() never observes completed > submitted.
                self.submitted.fetch_add(1, Ordering::Relaxed);
                let outcome = if blocking {
                    executor.submit_blocking(key, envelope)
                } else {
                    executor.try_submit(key, envelope)
                };
                match outcome {
                    Ok(()) => Ok(()),
                    Err(err) => {
                        self.submitted.fetch_sub(1, Ordering::Relaxed);
                        Err(match err {
                            SubmitError::QueueFull(_) => KatmeError::QueueFull,
                            SubmitError::ShuttingDown(_) => KatmeError::ShuttingDown,
                        })
                    }
                }
            }
        }
    }

    /// Tasks accepted so far.
    pub fn submitted(&self) -> u64 {
        match self.model {
            // Inline execution: accepted == completed by construction.
            ExecutorModel::NoExecutor => self.inline_completed.total(),
            _ => self.submitted.load(Ordering::Relaxed),
        }
    }

    /// Tasks executed so far, summed over workers.
    pub fn completed(&self) -> u64 {
        self.inline_completed.total()
            + self
                .executor
                .as_ref()
                .map_or(0, |executor| executor.completed())
    }

    /// Register the connection-plane counter block a network front end
    /// (e.g. the `katme-server` crate) increments, so socket-side activity
    /// shows up in [`Runtime::stats`] and the [`ShutdownReport`].
    ///
    /// At most one block can be attached per runtime; later calls return
    /// the already-registered block (shared servers should clone it) and
    /// drop the argument.
    pub fn attach_net(&self, counters: Arc<NetCounters>) -> Arc<NetCounters> {
        self.net.get_or_init(|| counters).clone()
    }

    /// The attached connection-plane counters, if a network front end
    /// registered one via [`Runtime::attach_net`].
    pub fn net(&self) -> Option<&Arc<NetCounters>> {
        self.net.get()
    }

    /// Live statistics: queue depths, per-worker progress, STM abort rates,
    /// scheduler repartition count — available at any point in the run, not
    /// only from the terminal [`ShutdownReport`].
    pub fn stats(&self) -> StatsView {
        let per_worker_completed = match &self.executor {
            Some(executor) => executor.per_worker_completed(),
            None => vec![self.inline_completed.total()],
        };
        StatsView {
            model: self.model,
            scheduler: self.scheduler.name(),
            workers: self.workers(),
            active_workers: self.active_workers(),
            uptime: self.started.elapsed(),
            submitted: self.submitted(),
            completed: self.completed(),
            per_worker_completed,
            steals: self
                .executor
                .as_ref()
                .map_or(0, |executor| executor.stolen()),
            adopted: self
                .executor
                .as_ref()
                .map_or(0, |executor| executor.adopted()),
            parks: self
                .executor
                .as_ref()
                .map_or(0, |executor| executor.parks()),
            resizes: self
                .executor
                .as_ref()
                .map_or(0, |executor| executor.resizes()),
            queue_depths: self
                .executor
                .as_ref()
                .map(|executor| executor.queue_lengths())
                .unwrap_or_default(),
            central_queue_depth: self
                .central
                .as_ref()
                .map_or(0, |central| central.queue.count()),
            repartitions: self.scheduler.repartitions(),
            partition_generation: self.scheduler.generation(),
            adaptations: self.scheduler.adaptation_log(),
            cost_model: self.scheduler.cost_model(),
            stm: self.stm.snapshot().since(&self.stm_baseline),
            durability: self.durability(),
            commit_wait_nanos: self
                .executor
                .as_ref()
                .map_or(0, |executor| executor.commit_wait_nanos()),
            lane_ranges: self
                .mv
                .as_ref()
                .map(|mv| mv.table.ranges())
                .unwrap_or_default(),
            lane_flips: self.mv.as_ref().map_or(0, |mv| mv.table.flips()),
            lane_generation: self.mv.as_ref().map_or(0, |mv| mv.table.generation()),
            key_ranges: self
                .stm
                .stats()
                .key_telemetry()
                .map(|telemetry| telemetry.snapshot()),
            net: self.net.get().map(|counters| counters.view()),
        }
    }

    /// Initiate shutdown without blocking: new submissions are rejected with
    /// [`KatmeError::ShuttingDown`]. What happens to already-accepted work
    /// follows `drain_on_shutdown`:
    ///
    /// * draining (the default): workers — and the central dispatcher, when
    ///   present — keep consuming until every accepted task has executed, so
    ///   every live [`TaskHandle`] still resolves with a result;
    /// * not draining: the worker pool stops promptly, producers blocked on
    ///   back-pressure return [`KatmeError::ShuttingDown`] instead of
    ///   pushing onto queues nobody will drain, and leftover tasks resolve
    ///   their handles as [`KatmeError::TaskAbandoned`].
    ///
    /// Call [`Runtime::shutdown`] afterwards to join the threads and collect
    /// the report; `stop` itself is safe to call from any thread, any number
    /// of times.
    pub fn stop(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        if let Some(central) = &self.central {
            central.gate.close();
        }
        if !self.drain_on_shutdown {
            if let Some(executor) = &self.executor {
                executor.stop();
            }
        }
    }

    /// Stop producers and workers, join every thread, and report the run.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.accepting.store(false, Ordering::SeqCst);
        let elapsed = self.started.elapsed();

        // Tear down the dispatcher first so in-flight central envelopes are
        // either forwarded (drain) or dropped (their handles resolve as
        // abandoned) before the workers stop.
        let mut central_abandoned = 0u64;
        if let Some(central) = self.central.take() {
            central.gate.close();
            if let Some(dispatcher) = central.dispatcher {
                let _ = dispatcher.join();
            }
            while central.queue.dequeue().is_some() {
                central_abandoned += 1;
            }
            central_abandoned += central.dropped.load(Ordering::Relaxed);
        }

        let inline = self.inline_completed.total();
        let plane = self.durability.take();
        let net = self.net.get().map(|counters| counters.view());

        let mut report = match self.executor.take() {
            Some(executor) => {
                let executor = Arc::into_inner(executor)
                    .expect("dispatcher joined; runtime holds the last executor reference");
                let report = executor.shutdown();
                ShutdownReport {
                    completed: report.completed() + inline,
                    abandoned: report.abandoned + central_abandoned,
                    stolen: report.stolen,
                    adopted: report.adopted,
                    idle_polls: report.idle_polls,
                    parks: report.parks,
                    load: report.load,
                    elapsed,
                    stm: self.stm.snapshot().since(&self.stm_baseline),
                    repartitions: self.scheduler.repartitions(),
                    resizes: report.resizes,
                    active_workers: report.active_workers,
                    adaptations: self.scheduler.adaptation_log(),
                    commit_wait_nanos: report.commit_wait_nanos,
                    durability: None,
                    recovery: None,
                    net,
                }
            }
            None => ShutdownReport {
                completed: inline,
                abandoned: 0,
                stolen: 0,
                adopted: 0,
                idle_polls: 0,
                parks: 0,
                load: LoadBalance::new(vec![inline]),
                elapsed,
                stm: self.stm.snapshot().since(&self.stm_baseline),
                repartitions: self.scheduler.repartitions(),
                resizes: 0,
                active_workers: 1,
                adaptations: self.scheduler.adaptation_log(),
                commit_wait_nanos: 0,
                durability: None,
                recovery: None,
                net,
            },
        };
        if let Some(plane) = plane {
            // Workers are drained and joined: every acknowledged commit is
            // already on disk; this flush only covers the unacknowledged
            // tail, then the final counters are captured for the report.
            plane.shutdown();
            report.durability = Some(plane.view());
            report.recovery = Some(plane.recovery());
        }
        report
    }
}

impl<T: Send + 'static, R: Send + 'static> std::fmt::Debug for Runtime<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("model", &self.model)
            .field("scheduler", &self.scheduler.name())
            .field("workers", &self.workers())
            .field("running", &self.is_running())
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .finish()
    }
}

impl<T: Send + 'static, R: Send + 'static> Drop for Runtime<T, R> {
    /// Dropping a runtime without calling [`Runtime::shutdown`] still stops
    /// and joins the dispatcher and worker threads.
    fn drop(&mut self) {
        self.accepting.store(false, Ordering::SeqCst);
        if let Some(central) = self.central.take() {
            central.gate.close();
            if let Some(dispatcher) = central.dispatcher {
                let _ = dispatcher.join();
            }
        }
        if let Some(executor) = self.executor.take() {
            drop(executor); // Executor::drop stops and joins the workers.
        }
    }
}

/// Point-in-time view of a running [`Runtime`], from [`Runtime::stats`].
#[derive(Debug, Clone)]
pub struct StatsView {
    /// Executor wiring in use.
    pub model: ExecutorModel,
    /// Scheduling policy name.
    pub scheduler: &'static str,
    /// Worker slots (the elastic growth ceiling; equals the configured
    /// worker count for a fixed-size pool).
    pub workers: usize,
    /// Worker threads currently active.
    pub active_workers: usize,
    /// Time since the runtime started.
    pub uptime: Duration,
    /// Tasks accepted so far.
    pub submitted: u64,
    /// Tasks executed so far (own-queue completions plus stolen and adopted
    /// work).
    pub completed: u64,
    /// Tasks each worker drained from its *own* queue. Stolen and adopted
    /// executions are reported in [`StatsView::steals`] and
    /// [`StatsView::adopted`], so this vector reads routed load — the
    /// honest input to [`StatsView::imbalance`].
    pub per_worker_completed: Vec<u64>,
    /// Tasks executed after being stolen from an active peer's queue.
    pub steals: u64,
    /// Tasks executed after being adopted from a retired worker's queue.
    pub adopted: u64,
    /// Condvar parks: idle periods workers spent blocked at zero CPU
    /// (woken by the next enqueue) instead of backoff polling.
    pub parks: u64,
    /// Worker-pool resizes performed so far.
    pub resizes: u64,
    /// Current depth of each worker queue (over all slots).
    pub queue_depths: Vec<usize>,
    /// Current depth of the central dispatch queue (centralized model only).
    pub central_queue_depth: usize,
    /// Times the scheduler has recomputed its partition.
    pub repartitions: u64,
    /// The routing-table generation currently in effect (0 until the first
    /// adaptation; static schedulers stay at 0).
    pub partition_generation: u64,
    /// The adaptation log: one entry per published partition generation
    /// (generation, trigger cause, before/after expected imbalance), oldest
    /// first. Bounded to the most recent entries
    /// ([`katme_core::adaptive::ADAPTATION_LOG_CAP`]); the generation
    /// numbers stay continuous, so eviction is detectable.
    pub adaptations: Vec<AdaptationEvent>,
    /// The predictive cost plane's state (calibration, trust, margin, last
    /// prediction error), `None` unless [`crate::Builder::cost_model`] is
    /// on. Also readable through [`StatsView::cost_model`].
    pub cost_model: Option<CostModelView>,
    /// STM activity since the runtime started.
    pub stm: StmStatsSnapshot,
    /// Durability-plane counters — appends, fsyncs, mean group size,
    /// checkpoint lag, recovery tallies — `None` unless the runtime was
    /// built with [`crate::Builder::durability`]. Also readable through
    /// [`StatsView::durability`].
    pub durability: Option<DurabilityView>,
    /// Wall-clock nanoseconds workers have spent blocked in group-commit
    /// waits (the durable commit's fsync acknowledgment), summed over
    /// workers. Always 0 for a volatile runtime.
    pub commit_wait_nanos: u64,
    /// Key ranges currently designated to the multi-version lane (empty
    /// when the lane is off or cold).
    pub lane_ranges: Vec<(u64, u64)>,
    /// Lane flips (designations plus undesignations) so far.
    pub lane_flips: u64,
    /// Monotone lane-table generation (bumped on every flip).
    pub lane_generation: u64,
    /// Cumulative per-bucket key-range telemetry — commit and abort counts
    /// per key range — `None` unless the runtime attached telemetry (any
    /// adaptation-enabled build). Feed two of these to
    /// [`katme_stm::KeyRangeSnapshot::since`] for a windowed view; each
    /// bucket's abort-over-commit ratio is the paper's per-range
    /// "frequency of contentions".
    pub key_ranges: Option<KeyRangeSnapshot>,
    /// Connection-plane counters — accepted/live/dropped connections,
    /// protocol-level pushback, bytes either way — `None` unless a network
    /// front end attached via [`Runtime::attach_net`]. Also readable
    /// through [`StatsView::net`].
    pub net: Option<NetView>,
}

impl StatsView {
    /// Mean completed tasks per second since start.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Completed tasks per second, per worker.
    pub fn per_worker_throughput(&self) -> Vec<f64> {
        let secs = self.uptime.as_secs_f64().max(f64::MIN_POSITIVE);
        self.per_worker_completed
            .iter()
            .map(|&count| count as f64 / secs)
            .collect()
    }

    /// STM aborts per committed transaction (the paper's "frequency of
    /// contentions").
    ///
    /// Cumulative since runtime start — on a long-lived runtime this goes
    /// stale, averaging over traffic long past. For a live view, diff two
    /// stats snapshots with [`StatsView::since`] and read the window's
    /// [`StatsWindow::contention_ratio`].
    pub fn abort_rate(&self) -> f64 {
        self.stm.contention_ratio()
    }

    /// The delta between this view and an `earlier` one from the same
    /// runtime: windowed completions, throughput, and STM activity — the
    /// non-stale counterpart of the cumulative [`StatsView::abort_rate`],
    /// built on [`StmStatsSnapshot::since`].
    pub fn since(&self, earlier: &StatsView) -> StatsWindow {
        StatsWindow {
            duration: self.uptime.saturating_sub(earlier.uptime),
            submitted: self.submitted.saturating_sub(earlier.submitted),
            completed: self.completed.saturating_sub(earlier.completed),
            repartitions: self.repartitions.saturating_sub(earlier.repartitions),
            lane_flips: self.lane_flips.saturating_sub(earlier.lane_flips),
            stm: self.stm.since(&earlier.stm),
        }
    }

    /// The predictive cost plane's state — calibration, trust, decision
    /// margin, last prediction error — `None` unless the runtime was built
    /// with [`crate::Builder::cost_model`].
    pub fn cost_model(&self) -> Option<&CostModelView> {
        self.cost_model.as_ref()
    }

    /// The durability plane's counters — `None` unless the runtime was
    /// built with [`crate::Builder::durability`].
    pub fn durability(&self) -> Option<&DurabilityView> {
        self.durability.as_ref()
    }

    /// The connection plane's counters — `None` unless a network front end
    /// attached one via [`Runtime::attach_net`].
    pub fn net(&self) -> Option<&NetView> {
        self.net.as_ref()
    }

    /// Multi-version re-executions per MV commit — the lane's analogue of
    /// [`StatsView::abort_rate`] (re-running only the dependents of a moved
    /// read is the work an abort-and-retry would have wasted wholesale).
    pub fn mv_reexec_per_commit(&self) -> f64 {
        self.stm.mv_reexec_ratio()
    }

    /// Fraction of all commits that went through the multi-version lane
    /// (0.0 when the lane is off or cold). Per-range residency is the
    /// designated ranges in [`StatsView::lane_ranges`] weighted by their
    /// share of [`StatsView::key_ranges`] traffic.
    pub fn mv_residency(&self) -> f64 {
        self.stm.mv_residency()
    }

    /// Tasks currently waiting in queues (workers plus dispatcher).
    pub fn backlog(&self) -> usize {
        self.queue_depths.iter().sum::<usize>() + self.central_queue_depth
    }

    /// Max-over-mean completion imbalance across workers (1.0 = even).
    ///
    /// Counts currently-active slots plus any retired slot that actually
    /// executed work; dormant never-activated slots of an elastic pool are
    /// excluded, so a balanced 2-of-8 pool reads 1.0 rather than 4.0. An
    /// active-but-starved worker still counts at zero — that *is* the
    /// imbalance signal the paper's metric is after.
    pub fn imbalance(&self) -> f64 {
        let counted: Vec<u64> = self
            .per_worker_completed
            .iter()
            .enumerate()
            .filter(|&(index, &completed)| index < self.active_workers || completed > 0)
            .map(|(_, &completed)| completed)
            .collect();
        LoadBalance::new(counted).imbalance()
    }
}

/// Windowed delta between two [`StatsView`]s of the same runtime, from
/// [`StatsView::since`].
#[derive(Debug, Clone)]
pub struct StatsWindow {
    /// Wall-clock length of the window.
    pub duration: Duration,
    /// Tasks accepted during the window.
    pub submitted: u64,
    /// Tasks executed during the window.
    pub completed: u64,
    /// Partition republishes during the window.
    pub repartitions: u64,
    /// Multi-version lane flips during the window.
    pub lane_flips: u64,
    /// STM activity during the window.
    pub stm: StmStatsSnapshot,
}

impl StatsWindow {
    /// Completed tasks per second inside the window.
    pub fn throughput(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// STM aborts per committed transaction inside the window — current,
    /// unlike the cumulative [`StatsView::abort_rate`].
    pub fn contention_ratio(&self) -> f64 {
        self.stm.contention_ratio()
    }
}

/// Terminal summary returned by [`Runtime::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Tasks executed over the runtime's lifetime.
    pub completed: u64,
    /// Tasks left in queues at shutdown (non-zero only without draining).
    pub abandoned: u64,
    /// Tasks executed after being stolen from an active peer's queue.
    pub stolen: u64,
    /// Tasks executed after being adopted from a retired worker's queue
    /// (the elastic hand-off path).
    pub adopted: u64,
    /// Worker polls that found no work.
    pub idle_polls: u64,
    /// Condvar parks: idle periods workers spent blocked at zero CPU
    /// instead of backoff polling.
    pub parks: u64,
    /// Per-worker own-queue completion counts (routed load; stolen and
    /// adopted work is in the fields above).
    pub load: LoadBalance,
    /// Wall-clock lifetime of the runtime.
    pub elapsed: Duration,
    /// STM activity over the runtime's lifetime.
    pub stm: StmStatsSnapshot,
    /// Times the scheduler recomputed its partition.
    pub repartitions: u64,
    /// Worker-pool resizes performed by the elastic plane (each also
    /// appears in [`ShutdownReport::adaptations`] as a
    /// [`katme_core::drift::AdaptationCause::Resize`] entry).
    pub resizes: u64,
    /// Active workers at shutdown.
    pub active_workers: usize,
    /// The scheduler's adaptation log (one entry per published generation).
    pub adaptations: Vec<AdaptationEvent>,
    /// Wall-clock nanoseconds workers spent blocked in group-commit waits,
    /// summed over workers (0 for a volatile runtime).
    pub commit_wait_nanos: u64,
    /// Final durability-plane counters, captured after the WAL's terminal
    /// flush — `None` unless the runtime was built with
    /// [`crate::Builder::durability`].
    pub durability: Option<DurabilityView>,
    /// What startup recovery restored and replayed (`None` for a volatile
    /// runtime; all-defaults when the log directory started empty).
    pub recovery: Option<RecoveryReport>,
    /// Final connection-plane counters (`None` unless a network front end
    /// attached via [`Runtime::attach_net`]). The server drains in-flight
    /// replies before the runtime shuts down, so `replies` here accounts
    /// for every accepted command that completed.
    pub net: Option<NetView>,
}

impl ShutdownReport {
    /// Mean completed tasks per second over the runtime's lifetime.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// STM aborts per committed transaction.
    pub fn abort_rate(&self) -> f64 {
        self.stm.contention_ratio()
    }
}
