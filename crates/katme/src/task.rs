//! Self-routing tasks and typed completion handles.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use katme_core::key::TxnKey;
use katme_workload::TxnSpec;

use crate::error::KatmeError;

/// A task that knows its own transaction key, so
/// [`Runtime::submit`](crate::Runtime::submit) can route it without a
/// separate `(key, task)` pair at every call site.
///
/// §3.1 of the paper: the key is a point in a linear space in which
/// "numerical proximity should correlate strongly (though not necessarily
/// precisely) with data locality (and thus likelihood of conflict)".
pub trait KeyedTask {
    /// The transaction key the scheduler partitions on.
    fn key(&self) -> TxnKey;

    /// The serialized redo record for this task, logged to the write-ahead
    /// log when the runtime was built with
    /// [`Builder::durability`](crate::Builder::durability) and a writing
    /// transaction commits while executing the task. `None` (the default)
    /// marks the task read-only for durability purposes: nothing is logged
    /// and the commit never waits on an fsync. Called once per execution
    /// attempt batch, on the submitting thread.
    fn durable_payload(&self) -> Option<Vec<u8>> {
        None
    }

    /// Consuming variant of [`KeyedTask::durable_payload`], called by the
    /// runtime when it owns the task and will not execute it again (the
    /// single-submission and batch paths). Tasks that *store* a payload
    /// should override this to move it out and avoid the clone the
    /// borrowing accessor pays (see [`Durable`]); the default delegates to
    /// [`KeyedTask::durable_payload`].
    fn take_durable_payload(&mut self) -> Option<Vec<u8>> {
        self.durable_payload()
    }
}

/// Adapter attaching an externally computed key to any payload — the escape
/// hatch for key mappings the task type cannot carry itself (hash-bucket
/// indices, constant hot-spot keys, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WithKey<T> {
    /// The transaction key to schedule on.
    pub key: TxnKey,
    /// The payload handed to the runtime's handler.
    pub task: T,
}

impl<T> WithKey<T> {
    /// Attach `key` to `task`.
    pub fn new(key: TxnKey, task: T) -> Self {
        WithKey { key, task }
    }
}

impl<T> KeyedTask for WithKey<T> {
    fn key(&self) -> TxnKey {
        self.key
    }
}

/// A bare integer task is its own key (handy for demos and tests).
impl KeyedTask for u64 {
    fn key(&self) -> TxnKey {
        *self
    }
}

/// Adapter attaching a pre-serialized redo record to any keyed task, making
/// it a durable update under
/// [`Builder::durability`](crate::Builder::durability). The key (and
/// everything else) delegates to the inner task; only
/// [`KeyedTask::durable_payload`] is overridden.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Durable<T> {
    /// The underlying keyed task.
    pub task: T,
    /// Redo record appended to the WAL when a writing transaction commits
    /// during execution; `None` marks the task read-only (nothing logged,
    /// no fsync wait).
    pub payload: Option<Vec<u8>>,
}

impl<T> Durable<T> {
    /// Attach `payload` to `task`.
    pub fn new(task: T, payload: Option<Vec<u8>>) -> Self {
        Durable { task, payload }
    }
}

impl<T: KeyedTask> KeyedTask for Durable<T> {
    fn key(&self) -> TxnKey {
        self.task.key()
    }

    fn durable_payload(&self) -> Option<Vec<u8>> {
        self.payload.clone()
    }

    fn take_durable_payload(&mut self) -> Option<Vec<u8>> {
        self.payload.take()
    }
}

/// The natural mapping for ordered dictionaries (red-black tree, sorted
/// list): the dictionary key itself is the transaction key. Hash-table
/// workloads should wrap specs in [`WithKey`] with the bucket index instead
/// (the paper's §4.2 mapping).
impl KeyedTask for TxnSpec {
    fn key(&self) -> TxnKey {
        TxnKey::from(self.key)
    }
}

enum Slot<R> {
    Pending,
    Done(R),
    Taken,
    Abandoned,
}

struct Shared<R> {
    slot: Mutex<Slot<R>>,
    ready: Condvar,
}

/// Typed handle to one submitted task, returned by
/// [`Runtime::submit`](crate::Runtime::submit).
///
/// The result can be awaited ([`TaskHandle::wait`],
/// [`TaskHandle::wait_timeout`]) or polled ([`TaskHandle::poll`],
/// [`TaskHandle::is_finished`]). If the runtime shuts down without executing
/// the task (possible only with `drain_on_shutdown(false)`), the handle
/// resolves to [`KatmeError::TaskAbandoned`].
pub struct TaskHandle<R> {
    shared: Arc<Shared<R>>,
}

impl<R> TaskHandle<R> {
    /// True once the task has completed (or been abandoned); `wait` will not
    /// block after this returns true.
    pub fn is_finished(&self) -> bool {
        !matches!(*lock(&self.shared.slot), Slot::Pending)
    }

    /// Non-blocking poll: `None` while the task is still in flight, the
    /// result once it finished. The result is moved out, so a second poll
    /// after `Some` reports [`KatmeError::TaskAbandoned`].
    pub fn poll(&self) -> Option<Result<R, KatmeError>> {
        let mut slot = lock(&self.shared.slot);
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Pending => {
                *slot = Slot::Pending;
                None
            }
            Slot::Done(value) => Some(Ok(value)),
            Slot::Abandoned => Some(Err(KatmeError::TaskAbandoned)),
            Slot::Taken => Some(Err(KatmeError::TaskAbandoned)),
        }
    }

    /// Block until the task completes and return its result.
    pub fn wait(self) -> Result<R, KatmeError> {
        let mut slot = lock(&self.shared.slot);
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Pending => {
                    *slot = Slot::Pending;
                    slot = self
                        .shared
                        .ready
                        .wait(slot)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Slot::Done(value) => return Ok(value),
                Slot::Abandoned | Slot::Taken => return Err(KatmeError::TaskAbandoned),
            }
        }
    }

    /// Block for at most `timeout`; [`KatmeError::Timeout`] if the task is
    /// still in flight when it elapses.
    pub fn wait_timeout(self, timeout: Duration) -> Result<R, KatmeError> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock(&self.shared.slot);
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Pending => {
                    *slot = Slot::Pending;
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(KatmeError::Timeout);
                    }
                    let (guard, _timed_out) = self
                        .shared
                        .ready
                        .wait_timeout(slot, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot = guard;
                }
                Slot::Done(value) => return Ok(value),
                Slot::Abandoned | Slot::Taken => return Err(KatmeError::TaskAbandoned),
            }
        }
    }
}

impl<R> std::fmt::Debug for TaskHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Producer side of the handle, carried inside the runtime's task envelopes.
/// Dropping it unfulfilled (task abandoned in a queue at shutdown) resolves
/// the handle with [`KatmeError::TaskAbandoned`].
pub(crate) struct Completion<R> {
    shared: Arc<Shared<R>>,
    fulfilled: bool,
}

impl<R> Completion<R> {
    /// Deliver the task's result and wake any waiter.
    pub(crate) fn complete(mut self, value: R) {
        *lock(&self.shared.slot) = Slot::Done(value);
        self.fulfilled = true;
        self.shared.ready.notify_all();
    }
}

impl<R> Drop for Completion<R> {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut slot = lock(&self.shared.slot);
            if matches!(*slot, Slot::Pending) {
                *slot = Slot::Abandoned;
            }
            drop(slot);
            self.shared.ready.notify_all();
        }
    }
}

/// Create a connected (handle, completion) pair.
pub(crate) fn handle_pair<R>() -> (TaskHandle<R>, Completion<R>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(Slot::Pending),
        ready: Condvar::new(),
    });
    (
        TaskHandle {
            shared: Arc::clone(&shared),
        },
        Completion {
            shared,
            fulfilled: false,
        },
    )
}

fn lock<R>(mutex: &Mutex<Slot<R>>) -> std::sync::MutexGuard<'_, Slot<R>> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_key_and_primitive_tasks_route_themselves() {
        assert_eq!(WithKey::new(9, "payload").key(), 9);
        assert_eq!(77u64.key(), 77);
        let spec = TxnSpec {
            key: 1234,
            value: 0,
            op: katme_workload::OpKind::Insert,
        };
        assert_eq!(spec.key(), 1234);
    }

    #[test]
    fn handle_resolves_after_complete() {
        let (handle, completion) = handle_pair::<u32>();
        assert!(!handle.is_finished());
        assert!(handle.poll().is_none());
        completion.complete(5);
        assert!(handle.is_finished());
        assert_eq!(handle.wait().unwrap(), 5);
    }

    #[test]
    fn poll_moves_the_result_out_once() {
        let (handle, completion) = handle_pair::<String>();
        completion.complete("done".to_string());
        assert_eq!(handle.poll(), Some(Ok("done".to_string())));
        assert_eq!(handle.poll(), Some(Err(KatmeError::TaskAbandoned)));
    }

    #[test]
    fn dropping_the_completion_marks_abandonment() {
        let (handle, completion) = handle_pair::<u32>();
        drop(completion);
        assert_eq!(handle.wait(), Err(KatmeError::TaskAbandoned));
    }

    #[test]
    fn wait_blocks_until_cross_thread_completion() {
        let (handle, completion) = handle_pair::<u32>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            completion.complete(11);
        });
        assert_eq!(handle.wait().unwrap(), 11);
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_gives_up_on_slow_tasks() {
        let (handle, completion) = handle_pair::<u32>();
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(20)),
            Err(KatmeError::Timeout)
        );
        completion.complete(1); // late completion must not panic
    }
}
