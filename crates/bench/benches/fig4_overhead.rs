//! Figure 4 bench: executor overhead on trivial transactions. Each iteration
//! executes a fixed number of single-TVar-increment transactions either in a
//! plain loop ("no executor"), through the executor pipeline one task at a
//! time ("executor"), or through the batched dispatch plane
//! ("executor-batched").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_bench::short_measurement;
use katme_core::prelude::*;
use katme_stm::{Stm, TVar};

const TXNS: u64 = 20_000;

fn run_no_executor(workers: usize) -> u64 {
    let stm = Stm::default();
    let counters: Vec<TVar<u64>> = (0..workers).map(|_| TVar::new(0)).collect();
    std::thread::scope(|s| {
        for counter in &counters {
            let stm = stm.clone();
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..TXNS / workers as u64 {
                    stm.atomically(|tx| tx.modify(&counter, |v| v + 1));
                }
            });
        }
    });
    counters.iter().map(|c| *c.load()).sum()
}

fn run_with_executor(workers: usize, submit_batch: usize) -> u64 {
    let stm = Stm::default();
    let counters: Arc<Vec<TVar<u64>>> = Arc::new((0..workers).map(|_| TVar::new(0)).collect());
    let stm_for_workers = stm.clone();
    let counters_for_workers = Arc::clone(&counters);
    let executor = Executor::start(
        ExecutorConfig::default()
            .with_drain_on_shutdown(true)
            .with_batch_size(submit_batch),
        std::sync::Arc::new(RoundRobinScheduler::new(workers)),
        move |worker, _task: u64| {
            stm_for_workers.atomically(|tx| tx.modify(&counters_for_workers[worker], |v| v + 1));
        },
    );
    if submit_batch == 1 {
        for i in 0..TXNS {
            executor
                .submit_blocking(i, i)
                .expect("executor accepts while running");
        }
    } else {
        let mut next = 0;
        while next < TXNS {
            let end = (next + submit_batch as u64).min(TXNS);
            let batch: Vec<(u64, u64)> = (next..end).map(|i| (i, i)).collect();
            executor
                .submit_batch_blocking(batch)
                .expect("executor accepts while running");
            next = end;
        }
    }
    executor.shutdown();
    counters.iter().map(|c| *c.load()).sum()
}

const SUBMIT_BATCH: usize = 64;

fn bench_fig4(c: &mut Criterion) {
    let (warm_up, measurement, samples) = short_measurement();
    let mut group = c.benchmark_group("fig4/trivial-transactions");
    group
        .warm_up_time(warm_up)
        .measurement_time(measurement)
        .sample_size(samples)
        .throughput(criterion::Throughput::Elements(TXNS));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("no-executor", workers),
            &workers,
            |b, &w| b.iter(|| run_no_executor(w)),
        );
        group.bench_with_input(BenchmarkId::new("executor", workers), &workers, |b, &w| {
            b.iter(|| run_with_executor(w, 1))
        });
        group.bench_with_input(
            BenchmarkId::new("executor-batched", workers),
            &workers,
            |b, &w| b.iter(|| run_with_executor(w, SUBMIT_BATCH)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
