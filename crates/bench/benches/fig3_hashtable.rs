//! Figure 3 bench: time to push one batch of hash-table transactions through
//! the full pipeline, per scheduler × key distribution. The scheduler
//! ordering (adaptive ≤ fixed, both beating round-robin on uniform keys;
//! fixed collapsing on exponential keys) is the paper's result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_bench::{run_pipeline_batch, short_measurement, BATCH};
use katme_collections::StructureKind;
use katme_core::scheduler::SchedulerKind;
use katme_workload::DistributionKind;

fn bench_fig3(c: &mut Criterion) {
    let (warm_up, measurement, samples) = short_measurement();
    let workers = 4;
    for distribution in DistributionKind::paper_distributions() {
        let mut group = c.benchmark_group(format!("fig3/{}", distribution.name()));
        group
            .warm_up_time(warm_up)
            .measurement_time(measurement)
            .sample_size(samples)
            .throughput(criterion::Throughput::Elements(BATCH as u64));
        for scheduler in SchedulerKind::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(scheduler.name()),
                &scheduler,
                |b, &scheduler| {
                    b.iter(|| {
                        run_pipeline_batch(
                            StructureKind::HashTable,
                            distribution,
                            scheduler,
                            workers,
                            BATCH,
                        )
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
