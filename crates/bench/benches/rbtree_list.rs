//! Tech-report companion bench: the Figure-3 sweep for the red-black tree
//! and sorted list. The key-based schedulers' advantage is expected to be
//! large for the tree and smaller (but present) for the list, matching the
//! paper's summary in §4.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_bench::{run_pipeline_batch, short_measurement};
use katme_collections::StructureKind;
use katme_core::scheduler::SchedulerKind;
use katme_workload::DistributionKind;

/// Smaller batch than the hash-table bench: list operations are O(n).
const BATCH: usize = 1_500;

fn bench_tree_list(c: &mut Criterion) {
    let (warm_up, measurement, samples) = short_measurement();
    let workers = 4;
    for structure in [StructureKind::RbTree, StructureKind::SortedList] {
        for distribution in [
            DistributionKind::Uniform,
            DistributionKind::exponential_paper(),
        ] {
            let mut group =
                c.benchmark_group(format!("{}/{}", structure.name(), distribution.name()));
            group
                .warm_up_time(warm_up)
                .measurement_time(measurement)
                .sample_size(samples)
                .throughput(criterion::Throughput::Elements(BATCH as u64));
            for scheduler in SchedulerKind::ALL {
                group.bench_with_input(
                    BenchmarkId::from_parameter(scheduler.name()),
                    &scheduler,
                    |b, &scheduler| {
                        b.iter(|| {
                            run_pipeline_batch(structure, distribution, scheduler, workers, BATCH)
                        })
                    },
                );
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_tree_list);
criterion_main!(benches);
