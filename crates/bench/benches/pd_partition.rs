//! Figure 2 / PD-partition component bench: cost of the adaptive machinery —
//! sampling keys into a histogram, estimating the piecewise-linear CDF,
//! computing the equal-probability partition, and the per-dispatch cost of
//! each scheduler. The paper's claim is that adaptation overhead is "low
//! run-time overhead"; these numbers quantify it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_core::histogram::Histogram;
use katme_core::key::KeyBounds;
use katme_core::partition::KeyPartition;
use katme_core::scheduler::{FixedKeyScheduler, RoundRobinScheduler, Scheduler};
use katme_core::{AdaptiveKeyScheduler, PiecewiseCdf};
use katme_workload::{DistributionKind, KeyDistribution};

fn bench_estimation(c: &mut Criterion) {
    let bounds = KeyBounds::new(0, 131_071);
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 3);
    let samples: Vec<u64> = (0..10_000).map(|_| u64::from(dist.sample_raw())).collect();

    let mut group = c.benchmark_group("pd-partition");
    group.sample_size(30);
    group.bench_function("histogram-10k-samples", |b| {
        b.iter(|| Histogram::from_samples(bounds, 256, &samples))
    });
    let hist = Histogram::from_samples(bounds, 256, &samples);
    group.bench_function("cdf-from-histogram", |b| {
        b.iter(|| PiecewiseCdf::from_histogram(&hist))
    });
    let cdf = PiecewiseCdf::from_histogram(&hist);
    group.bench_function("partition-from-cdf-16-workers", |b| {
        b.iter(|| KeyPartition::from_cdf(&cdf, 16))
    });
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let bounds = KeyBounds::new(0, 131_071);
    let mut dist = KeyDistribution::new(DistributionKind::gaussian_paper(), 9);
    let keys: Vec<u64> = (0..4_096).map(|_| u64::from(dist.sample_raw())).collect();

    let round_robin = RoundRobinScheduler::new(8);
    let fixed = FixedKeyScheduler::new(8, bounds);
    let adaptive = AdaptiveKeyScheduler::new(8, bounds).with_sample_threshold(1_000);
    // Warm the adaptive scheduler past its sampling phase.
    for &k in &keys {
        adaptive.dispatch(k);
    }

    let mut group = c.benchmark_group("dispatch-per-key");
    group.sample_size(50);
    group.throughput(criterion::Throughput::Elements(keys.len() as u64));
    let schedulers: [(&str, &dyn Scheduler); 3] = [
        ("round-robin", &round_robin),
        ("fixed", &fixed),
        ("adaptive", &adaptive),
    ];
    for (name, scheduler) in schedulers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheduler, |b, s| {
            b.iter(|| {
                let mut acc = 0usize;
                for &k in &keys {
                    acc = acc.wrapping_add(s.dispatch(k));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation, bench_dispatch);
criterion_main!(benches);
