//! Task-queue micro-benchmarks: the Michael & Scott two-lock queue against
//! the single-lock baseline, the bounded ring and the sharded segment queue,
//! single-threaded and under producer/consumer concurrency — per-item and
//! batch transfer.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_queue::{BoundedQueue, MutexQueue, ShardedSegQueue, TaskQueue, TwoLockQueue};

const OPS: u64 = 20_000;
const XFER_BATCH: usize = 64;

fn single_threaded<Q: TaskQueue<u64>>(queue: &Q) -> u64 {
    let mut out = 0;
    for i in 0..OPS {
        queue.push(i);
        if i % 2 == 1 {
            out += queue.try_pop().unwrap_or(0);
        }
    }
    while let Some(v) = queue.try_pop() {
        out += v;
    }
    out
}

fn producer_consumer<Q: TaskQueue<u64> + Send + Sync + 'static>(queue: Arc<Q>) -> u64 {
    std::thread::scope(|s| {
        let producer_q = Arc::clone(&queue);
        s.spawn(move || {
            for i in 0..OPS {
                producer_q.push(i);
            }
        });
        let consumer_q = Arc::clone(&queue);
        let consumer = s.spawn(move || {
            let mut received = 0u64;
            while received < OPS {
                if consumer_q.try_pop().is_some() {
                    received += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            received
        });
        consumer.join().unwrap()
    })
}

/// Move OPS items through the queue in XFER_BATCH-sized push_batch/pop_batch
/// calls (one producer, one consumer thread).
fn batch_producer_consumer<Q: TaskQueue<u64> + Send + Sync + 'static>(queue: Arc<Q>) -> u64 {
    std::thread::scope(|s| {
        let producer_q = Arc::clone(&queue);
        s.spawn(move || {
            let mut next = 0u64;
            while next < OPS {
                let end = (next + XFER_BATCH as u64).min(OPS);
                producer_q.push_batch((next..end).collect());
                next = end;
            }
        });
        let consumer_q = Arc::clone(&queue);
        let consumer = s.spawn(move || {
            let mut received = 0u64;
            let mut buffer = Vec::with_capacity(XFER_BATCH);
            while received < OPS {
                let took = consumer_q.pop_batch(&mut buffer, XFER_BATCH);
                if took > 0 {
                    received += took as u64;
                    buffer.clear();
                } else {
                    std::thread::yield_now();
                }
            }
            received
        });
        consumer.join().unwrap()
    })
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues/single-thread");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(OPS));
    group.bench_function("two-lock", |b| {
        b.iter(|| single_threaded(&TwoLockQueue::new()))
    });
    group.bench_function("mutex", |b| b.iter(|| single_threaded(&MutexQueue::new())));
    group.bench_function("bounded-1024", |b| {
        b.iter(|| single_threaded(&BoundedQueue::new(1_024 + OPS as usize)))
    });
    group.finish();

    let mut group = c.benchmark_group("queues/producer-consumer");
    group.sample_size(15);
    group.throughput(criterion::Throughput::Elements(OPS));
    group.bench_with_input(BenchmarkId::from_parameter("two-lock"), &(), |b, _| {
        b.iter(|| producer_consumer(Arc::new(TwoLockQueue::new())))
    });
    group.bench_with_input(BenchmarkId::from_parameter("mutex"), &(), |b, _| {
        b.iter(|| producer_consumer(Arc::new(MutexQueue::new())))
    });
    group.bench_with_input(BenchmarkId::from_parameter("sharded-seg"), &(), |b, _| {
        b.iter(|| producer_consumer(Arc::new(ShardedSegQueue::new())))
    });
    group.finish();

    // Batch transfer: the dispatch-plane hot path — one lock round-trip per
    // XFER_BATCH items on each side instead of one per item.
    let mut group = c.benchmark_group("queues/batch-transfer");
    group.sample_size(15);
    group.throughput(criterion::Throughput::Elements(OPS));
    group.bench_with_input(BenchmarkId::from_parameter("two-lock"), &(), |b, _| {
        b.iter(|| batch_producer_consumer(Arc::new(TwoLockQueue::new())))
    });
    group.bench_with_input(BenchmarkId::from_parameter("mutex"), &(), |b, _| {
        b.iter(|| batch_producer_consumer(Arc::new(MutexQueue::new())))
    });
    group.bench_with_input(BenchmarkId::from_parameter("sharded-seg"), &(), |b, _| {
        b.iter(|| batch_producer_consumer(Arc::new(ShardedSegQueue::new())))
    });
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
