//! STM substrate micro-benchmarks: read-only, write-only and read-modify-
//! write transaction costs, transaction size scaling, and a contention-
//! manager ablation under conflict (the paper runs everything under Polka).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_stm::{CmKind, Stm, TVar};

fn bench_single_var(c: &mut Criterion) {
    let stm = Stm::default();
    let var = TVar::new(0u64);
    let mut group = c.benchmark_group("stm/single-var");
    group.sample_size(60);
    group.bench_function("read-only", |b| {
        b.iter(|| stm.atomically(|tx| tx.read_cloned(&var)))
    });
    group.bench_function("blind-write", |b| {
        b.iter(|| stm.atomically(|tx| tx.write(&var, 1)))
    });
    group.bench_function("read-modify-write", |b| {
        b.iter(|| stm.atomically(|tx| tx.modify(&var, |v| v + 1)))
    });
    group.bench_function("non-transactional-load", |b| b.iter(|| *var.load()));
    group.finish();
}

fn bench_footprint_scaling(c: &mut Criterion) {
    let stm = Stm::default();
    let vars: Vec<TVar<u64>> = (0..256).map(|i| TVar::new(i as u64)).collect();
    let mut group = c.benchmark_group("stm/footprint");
    group.sample_size(40);
    for size in [4usize, 16, 64, 256] {
        group.throughput(criterion::Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("read-n-write-1", size), &size, |b, &n| {
            b.iter(|| {
                stm.atomically(|tx| {
                    let mut sum = 0u64;
                    for var in &vars[..n] {
                        sum += *tx.read(var)?;
                    }
                    tx.write(&vars[0], sum)?;
                    Ok(sum)
                })
            })
        });
    }
    group.finish();
}

fn bench_contention_managers(c: &mut Criterion) {
    // Two threads hammering the same counter: the contention manager decides
    // how gracefully the loser backs off.
    let mut group = c.benchmark_group("stm/contention-manager");
    group.sample_size(15);
    for cm in CmKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(cm.name()), &cm, |b, &cm| {
            b.iter(|| {
                let stm = Stm::with_contention_manager(cm);
                let counter = TVar::new(0u64);
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        let stm = stm.clone();
                        let counter = counter.clone();
                        s.spawn(move || {
                            for _ in 0..500 {
                                stm.atomically(|tx| tx.modify(&counter, |v| v + 1));
                            }
                        });
                    }
                });
                *counter.load()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_var,
    bench_footprint_scaling,
    bench_contention_managers
);
criterion_main!(benches);
