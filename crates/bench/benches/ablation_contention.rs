//! Ablation: how much of the adaptive executor's benefit comes from conflict
//! avoidance. A tiny hash table (few buckets) forces frequent conflicts; the
//! key-based schedulers serialize same-bucket transactions on one worker and
//! should therefore abort far less than round-robin — the effect the paper
//! predicts will "pay off in high-contention applications".

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use katme_bench::apply_spec;
use katme_collections::HashTable;
use katme_core::prelude::*;
use katme_stm::Stm;
use katme_workload::{DistributionKind, OpGenerator, TxnSpec};

const BATCH: usize = 3_000;
const SMALL_BUCKETS: usize = 64;

fn run_high_contention(scheduler_kind: SchedulerKind, workers: usize) -> (u64, u64) {
    let stm = Stm::default();
    let table = Arc::new(HashTable::with_buckets(stm.clone(), SMALL_BUCKETS));
    let scheduler = scheduler_kind.build(workers, KeyBounds::new(0, SMALL_BUCKETS as u64 - 1));
    let table_for_workers = Arc::clone(&table);
    let executor = Executor::start(
        ExecutorConfig::default().with_drain_on_shutdown(true),
        scheduler,
        move |_worker, spec: TxnSpec| apply_spec(&*table_for_workers, &spec),
    );
    let mut gen = OpGenerator::paper(DistributionKind::Uniform, 0xc0ffee);
    for _ in 0..BATCH {
        let spec = gen.next_spec();
        let bucket = u64::from(spec.key) % SMALL_BUCKETS as u64;
        executor
            .submit_blocking(bucket, spec)
            .expect("executor accepts while running");
    }
    let completed = executor.shutdown().completed();
    let snap = stm.snapshot();
    (completed, snap.total_aborts())
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/high-contention-hashtable");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(BATCH as u64));
    for scheduler in SchedulerKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheduler.name()),
            &scheduler,
            |b, &scheduler| b.iter(|| run_high_contention(scheduler, 4)),
        );
    }
    group.finish();

    // Print the abort counts once so the ablation also reports the conflict
    // reduction itself (not just its timing effect).
    eprintln!(
        "\nconflict ablation (aborts while executing {BATCH} txns on {SMALL_BUCKETS} buckets):"
    );
    for scheduler in SchedulerKind::ALL {
        let (completed, aborts) = run_high_contention(scheduler, 4);
        eprintln!(
            "  {:>12}: {completed} completed, {aborts} aborted attempts",
            scheduler.name()
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
