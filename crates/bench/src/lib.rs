//! # katme-bench — Criterion benchmarks for the KATME reproduction
//!
//! One bench target per figure/table of the paper, plus component
//! micro-benchmarks and ablations:
//!
//! * `fig3_hashtable` — hash-table throughput per scheduler × distribution.
//! * `fig4_overhead` — executor vs. free-running trivial transactions.
//! * `rbtree_list` — the tech-report tree/list sweeps.
//! * `pd_partition` — cost of sampling, CDF estimation and partitioning.
//! * `stm_ops` — raw STM read/write/commit costs and contention-manager
//!   ablation.
//! * `queues` — Michael & Scott two-lock queue vs. the single-lock baseline.
//! * `ablation_contention` — scheduler ablation under forced conflicts.
//!
//! Criterion measures *time per iteration*; for the figure benches each
//! iteration is one fixed-size batch of transactions pushed through the full
//! pipeline, so lower is better and the relative ordering of the schedulers
//! is the result that mirrors the paper. The experiment binaries in
//! `katme-harness` report the same comparisons as transactions/second over a
//! wall-clock window (the paper's own metric).

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use katme_collections::StructureKind;
use katme_core::prelude::*;
use katme_stm::Stm;
use katme_workload::{DistributionKind, OpGenerator, TxnSpec};

/// Batch size used by the pipeline benches (one Criterion iteration = one
/// batch pushed through producers → executor → workers → STM).
pub const BATCH: usize = 4_000;

/// Criterion settings that keep the full suite's runtime reasonable:
/// (warm-up time, measurement time, sample size).
pub fn short_measurement() -> (Duration, Duration, usize) {
    (Duration::from_millis(300), Duration::from_millis(900), 10)
}

/// Apply one spec to a dictionary (the facade's canonical mapping).
pub use katme::apply_spec;

/// Run one batch of transactions through the full executor pipeline and
/// return the number completed (used by the figure benches). Submits
/// per-task, matching the paper's protocol; see
/// [`run_pipeline_batch_submission`] for the batched dispatch plane.
pub fn run_pipeline_batch(
    structure: StructureKind,
    distribution: DistributionKind,
    scheduler: SchedulerKind,
    workers: usize,
    batch: usize,
) -> u64 {
    run_pipeline_batch_submission(structure, distribution, scheduler, workers, batch, 1)
}

/// Like [`run_pipeline_batch`], but producers hand the executor chunks of
/// `submit_batch` tasks at a time (1 = the per-task protocol) and workers
/// drain with the same granularity — the bench-side comparison of per-task
/// vs. batched dispatch at identical workload.
pub fn run_pipeline_batch_submission(
    structure: StructureKind,
    distribution: DistributionKind,
    scheduler: SchedulerKind,
    workers: usize,
    batch: usize,
    submit_batch: usize,
) -> u64 {
    let submit_batch = submit_batch.max(1);
    let stm = Stm::default();
    let dict = structure.build(stm);
    let bounds = match structure {
        StructureKind::HashTable => KeyBounds::new(0, katme_collections::PAPER_BUCKETS as u64 - 1),
        _ => KeyBounds::dict16(),
    };
    let scheduler = scheduler.build(workers, bounds);
    let dict_for_workers = Arc::clone(&dict);
    let executor = Executor::start(
        ExecutorConfig::default()
            .with_drain_on_shutdown(true)
            .with_batch_size(submit_batch),
        scheduler,
        move |_worker, spec: TxnSpec| apply_spec(&*dict_for_workers, &spec),
    );
    let mapper = BucketKeyMapper::paper();
    let dict_mapper = DictKeyMapper;
    let key_for = |spec: &TxnSpec| match structure {
        StructureKind::HashTable => mapper.key(spec),
        _ => dict_mapper.key(spec),
    };
    let gen = OpGenerator::paper(distribution, 0xbe7c);
    if submit_batch == 1 {
        for spec in gen.take(batch) {
            let key = key_for(&spec);
            executor
                .submit_blocking(key, spec)
                .expect("executor accepts while running");
        }
    } else {
        let mut remaining = batch;
        for chunk in gen.batches(submit_batch) {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(chunk.len());
            remaining -= take;
            let keyed: Vec<_> = chunk
                .into_iter()
                .take(take)
                .map(|spec| (key_for(&spec), spec))
                .collect();
            executor
                .submit_batch_blocking(keyed)
                .expect("executor accepts while running");
        }
    }
    executor.shutdown().completed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_batch_completes_everything() {
        let done = run_pipeline_batch(
            StructureKind::HashTable,
            DistributionKind::Uniform,
            SchedulerKind::AdaptiveKey,
            2,
            500,
        );
        assert_eq!(done, 500);
    }

    #[test]
    fn batched_submission_completes_the_same_workload() {
        let done = run_pipeline_batch_submission(
            StructureKind::HashTable,
            DistributionKind::Uniform,
            SchedulerKind::AdaptiveKey,
            2,
            500,
            64,
        );
        assert_eq!(done, 500);
    }
}
