//! Incremental frame decoding: byte stream in, complete frames out.
//!
//! TCP delivers byte runs with no respect for message boundaries — a read
//! may end mid-header, mid-body, or carry a dozen pipelined frames at once.
//! [`FrameDecoder`] absorbs arbitrary byte runs via [`FrameDecoder::feed`]
//! and yields complete frames (tag plus body, header stripped) one at a
//! time; a torn frame simply stays buffered until the rest arrives.
//!
//! Hostile or garbled input is bounded: a declared frame length over the
//! decoder's cap is rejected *from the header alone* — the decoder never
//! buffers toward an oversized or garbage-prefixed frame, so a misbehaving
//! peer cannot make the server allocate past
//! [`HEADER_LEN`]` + max_frame` per connection.
//! Wire errors are sticky: framing is not self-resynchronizing, so after an
//! error the connection must be closed, and every subsequent call returns
//! the same error.

use crate::protocol::{Command, Reply, WireError, HEADER_LEN};

/// Incremental splitter of a byte stream into length-prefixed frames.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily in [`FrameDecoder::feed`]).
    pos: usize,
    max_frame: usize,
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// Decoder accepting frames up to `max_frame` bytes of declared length
    /// (tag plus body; the 4-byte header is not counted).
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// Absorb a byte run exactly as it came off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact the consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to its unparsed tail, not
        // its history.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next complete frame (tag plus body), `Ok(None)` when the buffered
    /// bytes end mid-frame. Errors are sticky — see the module docs.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        if let Some(error) = &self.poisoned {
            return Err(error.clone());
        }
        let available = self.buf.len() - self.pos;
        if available < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = self.buf[self.pos..self.pos + HEADER_LEN]
            .try_into()
            .expect("slice of HEADER_LEN bytes");
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 {
            return Err(self.poison(WireError::EmptyFrame));
        }
        if len > self.max_frame {
            return Err(self.poison(WireError::Oversized {
                len,
                max: self.max_frame,
            }));
        }
        if available < HEADER_LEN + len {
            return Ok(None);
        }
        let start = self.pos + HEADER_LEN;
        self.pos = start + len;
        Ok(Some(&self.buf[start..start + len]))
    }

    fn poison(&mut self, error: WireError) -> WireError {
        self.poisoned = Some(error.clone());
        error
    }
}

/// Server-side decoder: byte stream in, [`Command`]s out.
///
/// A parse failure (unknown opcode, wrong payload size) poisons the
/// underlying frame stream like a framing error — the connection is done.
#[derive(Debug)]
pub struct CommandDecoder {
    frames: FrameDecoder,
}

impl CommandDecoder {
    /// Decoder accepting request frames up to `max_frame` declared bytes.
    pub fn new(max_frame: usize) -> Self {
        CommandDecoder {
            frames: FrameDecoder::new(max_frame),
        }
    }

    /// Absorb a byte run from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.frames.feed(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.frames.buffered()
    }

    /// Next complete command, `Ok(None)` when the stream ends mid-frame.
    pub fn try_next(&mut self) -> Result<Option<Command>, WireError> {
        match self.frames.next_frame()? {
            Some(frame) => match Command::parse(frame) {
                Ok(command) => Ok(Some(command)),
                Err(error) => Err(self.frames.poison(error)),
            },
            None => Ok(None),
        }
    }
}

/// Client-side decoder: byte stream in, [`Reply`]s out.
#[derive(Debug)]
pub struct ReplyDecoder {
    frames: FrameDecoder,
}

impl ReplyDecoder {
    /// Decoder accepting reply frames up to `max_frame` declared bytes
    /// (replies include the `STATS` bulk, so the cap should be generous).
    pub fn new(max_frame: usize) -> Self {
        ReplyDecoder {
            frames: FrameDecoder::new(max_frame),
        }
    }

    /// Absorb a byte run from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.frames.feed(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.frames.buffered()
    }

    /// Next complete reply, `Ok(None)` when the stream ends mid-frame.
    pub fn try_next(&mut self) -> Result<Option<Reply>, WireError> {
        match self.frames.next_frame()? {
            Some(frame) => match Reply::parse(frame) {
                Ok(reply) => Ok(Some(reply)),
                Err(error) => Err(self.frames.poison(error)),
            },
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{OP_GET, OP_PING};

    fn encoded(commands: &[Command]) -> Vec<u8> {
        let mut buf = Vec::new();
        for cmd in commands {
            cmd.encode_into(&mut buf);
        }
        buf
    }

    #[test]
    fn torn_frames_across_arbitrary_read_boundaries() {
        let commands = [
            Command::Put { key: 1, value: 10 },
            Command::Cas {
                key: 1,
                expected: 10,
                new: 11,
            },
            Command::Ping,
            Command::Get { key: 1 },
        ];
        let bytes = encoded(&commands);
        // Split the stream at every possible boundary, including mid-header
        // and mid-body, and at every chunk size from 1 byte up.
        for chunk in 1..=bytes.len() {
            let mut decoder = CommandDecoder::new(64);
            let mut decoded = Vec::new();
            for part in bytes.chunks(chunk) {
                decoder.feed(part);
                while let Some(cmd) = decoder.try_next().unwrap() {
                    decoded.push(cmd);
                }
            }
            assert_eq!(decoded, commands, "chunk size {chunk}");
            assert_eq!(decoder.buffered(), 0);
        }
    }

    #[test]
    fn pipelined_multi_command_buffer_decodes_in_order() {
        let commands: Vec<Command> = (0..100).map(|key| Command::Get { key }).collect();
        let mut decoder = CommandDecoder::new(64);
        decoder.feed(&encoded(&commands));
        let mut decoded = Vec::new();
        while let Some(cmd) = decoder.try_next().unwrap() {
            decoded.push(cmd);
        }
        assert_eq!(decoded, commands);
    }

    #[test]
    fn oversized_frame_rejected_from_header_alone() {
        let mut decoder = FrameDecoder::new(64);
        // Header declares 1 MiB; only the header has arrived — rejection
        // must not wait for (or buffer toward) the body.
        decoder.feed(&(1u32 << 20).to_le_bytes());
        assert_eq!(
            decoder.next_frame(),
            Err(WireError::Oversized {
                len: 1 << 20,
                max: 64
            })
        );
        // Errors are sticky: the stream cannot be resynchronized.
        decoder.feed(&encoded(&[Command::Ping]));
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn garbage_prefix_rejected() {
        // ASCII garbage reads as an absurd little-endian length.
        let mut decoder = CommandDecoder::new(64);
        decoder.feed(b"GET / HTTP/1.1\r\n");
        assert!(matches!(
            decoder.try_next(),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut decoder = FrameDecoder::new(64);
        decoder.feed(&0u32.to_le_bytes());
        assert_eq!(decoder.next_frame(), Err(WireError::EmptyFrame));
    }

    #[test]
    fn unknown_opcode_poisons_the_stream() {
        let mut decoder = CommandDecoder::new(64);
        decoder.feed(&1u32.to_le_bytes());
        decoder.feed(&[0xEE]);
        decoder.feed(&encoded(&[Command::Ping]));
        assert_eq!(decoder.try_next(), Err(WireError::UnknownOpcode(0xEE)));
        // Sticky: the valid PING behind the poison pill is unreachable.
        assert_eq!(decoder.try_next(), Err(WireError::UnknownOpcode(0xEE)));
    }

    #[test]
    fn consumed_prefix_is_compacted() {
        let mut decoder = FrameDecoder::new(64);
        for _ in 0..1000 {
            decoder.feed(&encoded(&[Command::Get { key: 9 }]));
            while decoder.next_frame().unwrap().is_some() {}
        }
        // A connection that keeps up retains no history.
        assert_eq!(decoder.buffered(), 0);
        assert!(
            decoder.buf.len() < 64,
            "buffer grew to {}",
            decoder.buf.len()
        );
    }

    #[test]
    fn reply_decoder_round_trips_a_burst() {
        let replies = [
            Reply::Ok,
            Reply::Int(7),
            Reply::Nil,
            Reply::Busy,
            Reply::Bulk(b"a b\n".to_vec()),
        ];
        let mut bytes = Vec::new();
        for reply in &replies {
            reply.encode_into(&mut bytes);
        }
        for chunk in [1, 3, bytes.len()] {
            let mut decoder = ReplyDecoder::new(1024);
            let mut decoded = Vec::new();
            for part in bytes.chunks(chunk) {
                decoder.feed(part);
                while let Some(reply) = decoder.try_next().unwrap() {
                    decoded.push(reply);
                }
            }
            assert_eq!(decoded, replies, "chunk size {chunk}");
        }
    }

    #[test]
    fn partial_header_then_partial_body() {
        let mut decoder = CommandDecoder::new(64);
        let bytes = encoded(&[Command::Get { key: 0xAABBCCDD }]);
        decoder.feed(&bytes[..2]); // half a header
        assert_eq!(decoder.try_next(), Ok(None));
        decoder.feed(&bytes[2..6]); // header complete, body torn
        assert_eq!(decoder.try_next(), Ok(None));
        decoder.feed(&bytes[6..]);
        assert_eq!(
            decoder.try_next(),
            Ok(Some(Command::Get { key: 0xAABBCCDD }))
        );
        let _ = (OP_GET, OP_PING);
    }
}
