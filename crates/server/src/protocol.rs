//! The KATME wire protocol: RESP-like, length-prefixed, pipelined.
//!
//! Every message — request or reply — is one *frame*:
//!
//! ```text
//! [len: u32 little-endian][tag: u8][body: len-1 bytes]
//! ```
//!
//! `len` counts the tag byte plus the body, so the smallest legal frame is
//! `len == 1` (a bare tag). Frames are self-delimiting, which is what makes
//! the protocol pipelined: a client may write any number of request frames
//! back-to-back and read the same number of reply frames back, in order.
//!
//! Requests carry an opcode tag ([`Command`]); replies carry a RESP-style
//! type tag ([`Reply`]): `+` simple OK, `:` integer, `_` nil, `$` bulk
//! bytes, `-` error. Back-pressure is part of the reply alphabet — `-BUSY`
//! when the executor's queues rejected the command and `-SHUTDOWN` when the
//! server is draining — so a client always gets exactly one reply per
//! pipelined command, even for the commands that were never executed.
//!
//! The full specification lives in `docs/PROTOCOL.md`.

use katme_collections::{Key, Value};

/// Frame header size: the little-endian `u32` length prefix.
pub const HEADER_LEN: usize = 4;

/// Opcode tag for [`Command::Get`].
pub const OP_GET: u8 = 0x01;
/// Opcode tag for [`Command::Put`].
pub const OP_PUT: u8 = 0x02;
/// Opcode tag for [`Command::Del`].
pub const OP_DEL: u8 = 0x03;
/// Opcode tag for [`Command::Cas`].
pub const OP_CAS: u8 = 0x04;
/// Opcode tag for [`Command::Ping`].
pub const OP_PING: u8 = 0x05;
/// Opcode tag for [`Command::Stats`].
pub const OP_STATS: u8 = 0x06;

/// Reply tag: simple OK (`+`).
pub const REPLY_OK: u8 = b'+';
/// Reply tag: integer (`:`), body is a little-endian `u64`.
pub const REPLY_INT: u8 = b':';
/// Reply tag: nil (`_`), empty body — a missing key.
pub const REPLY_NIL: u8 = b'_';
/// Reply tag: bulk bytes (`$`) — the `STATS` text.
pub const REPLY_BULK: u8 = b'$';
/// Reply tag: error (`-`), ASCII body (`BUSY`, `SHUTDOWN`, `ERR ...`).
pub const REPLY_ERR: u8 = b'-';

/// The largest request frame a well-formed client can produce ([`Command::Cas`]:
/// tag + key + two values = 21 bytes). Servers may enforce any cap at or
/// above this; the default server cap leaves headroom for future commands.
pub const MAX_REQUEST_FRAME: usize = 21;

/// A decoded client request.
///
/// `GET`/`PUT`/`DEL`/`CAS` are dictionary operations and route through the
/// executor keyed by their dictionary key; `PING`/`STATS` are connection
/// control and are answered in-line by the connection worker (they still
/// occupy a pipeline slot, acting as ordering barriers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Look up `key`; replies `:value` or `_` (nil).
    Get {
        /// Dictionary key to look up.
        key: Key,
    },
    /// Insert `key -> value`; replies `:1` (newly inserted) or `:0`
    /// (overwrote an existing entry).
    Put {
        /// Dictionary key to insert under.
        key: Key,
        /// Value to store.
        value: Value,
    },
    /// Remove `key`; replies `:1` (was present) or `:0`.
    Del {
        /// Dictionary key to remove.
        key: Key,
    },
    /// Atomically replace `key`'s value with `new` iff it currently equals
    /// `expected`; replies `:1` (swapped) or `:0` (mismatch or missing).
    Cas {
        /// Dictionary key to compare-and-swap.
        key: Key,
        /// Value the entry must currently hold.
        expected: Value,
        /// Replacement value.
        new: Value,
    },
    /// Liveness probe; replies `+` immediately.
    Ping,
    /// Server statistics; replies a `$` bulk of ASCII `name value` lines.
    Stats,
}

impl Command {
    /// This command's opcode tag.
    pub fn opcode(&self) -> u8 {
        match self {
            Command::Get { .. } => OP_GET,
            Command::Put { .. } => OP_PUT,
            Command::Del { .. } => OP_DEL,
            Command::Cas { .. } => OP_CAS,
            Command::Ping => OP_PING,
            Command::Stats => OP_STATS,
        }
    }

    /// The dictionary key this command touches (`None` for the control
    /// commands `PING`/`STATS`).
    pub fn dict_key(&self) -> Option<Key> {
        match self {
            Command::Get { key }
            | Command::Put { key, .. }
            | Command::Del { key }
            | Command::Cas { key, .. } => Some(*key),
            Command::Ping | Command::Stats => None,
        }
    }

    /// True for the control commands the connection worker answers in-line
    /// instead of submitting to the executor.
    pub fn is_inline(&self) -> bool {
        matches!(self, Command::Ping | Command::Stats)
    }

    /// Append this command's complete frame (header included) to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let body_len = match self {
            Command::Get { .. } | Command::Del { .. } => 4,
            Command::Put { .. } => 12,
            Command::Cas { .. } => 20,
            Command::Ping | Command::Stats => 0,
        };
        buf.extend_from_slice(&(1 + body_len as u32).to_le_bytes());
        buf.push(self.opcode());
        match self {
            Command::Get { key } | Command::Del { key } => {
                buf.extend_from_slice(&key.to_le_bytes());
            }
            Command::Put { key, value } => {
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&value.to_le_bytes());
            }
            Command::Cas { key, expected, new } => {
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&expected.to_le_bytes());
                buf.extend_from_slice(&new.to_le_bytes());
            }
            Command::Ping | Command::Stats => {}
        }
    }

    /// Bytes [`Command::encode_into`] appends: header plus tag plus body.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + 1
            + match self {
                Command::Get { .. } | Command::Del { .. } => 4,
                Command::Put { .. } => 12,
                Command::Cas { .. } => 20,
                Command::Ping | Command::Stats => 0,
            }
    }

    /// Parse a command from a complete frame payload (tag plus body, the
    /// header already stripped by the frame decoder).
    pub fn parse(frame: &[u8]) -> Result<Command, WireError> {
        let (&opcode, body) = frame.split_first().ok_or(WireError::EmptyFrame)?;
        let bad = || WireError::BadPayload {
            tag: opcode,
            len: body.len(),
        };
        match opcode {
            OP_GET => Ok(Command::Get {
                key: read_u32(body).ok_or_else(bad)?,
            }),
            OP_DEL => Ok(Command::Del {
                key: read_u32(body).ok_or_else(bad)?,
            }),
            OP_PUT => {
                if body.len() != 12 {
                    return Err(bad());
                }
                Ok(Command::Put {
                    key: read_u32(&body[..4]).ok_or_else(bad)?,
                    value: read_u64(&body[4..]).ok_or_else(bad)?,
                })
            }
            OP_CAS => {
                if body.len() != 20 {
                    return Err(bad());
                }
                Ok(Command::Cas {
                    key: read_u32(&body[..4]).ok_or_else(bad)?,
                    expected: read_u64(&body[4..12]).ok_or_else(bad)?,
                    new: read_u64(&body[12..]).ok_or_else(bad)?,
                })
            }
            OP_PING => {
                if !body.is_empty() {
                    return Err(bad());
                }
                Ok(Command::Ping)
            }
            OP_STATS => {
                if !body.is_empty() {
                    return Err(bad());
                }
                Ok(Command::Stats)
            }
            other => Err(WireError::UnknownOpcode(other)),
        }
    }
}

/// A decoded server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+` — simple acknowledgment (`PING`).
    Ok,
    /// `:` — integer result (`GET` hit value, `PUT`/`DEL`/`CAS` outcome).
    Int(u64),
    /// `_` — nil (`GET` miss).
    Nil,
    /// `$` — bulk bytes (`STATS` text).
    Bulk(Vec<u8>),
    /// `-BUSY` — the executor's queues are full; the command was *not*
    /// executed and may be retried.
    Busy,
    /// `-SHUTDOWN` — the server is draining; the command was not executed.
    Shutdown,
    /// `-ERR <detail>` — protocol violation; the server closes the
    /// connection after sending this.
    Err(String),
}

impl Reply {
    /// True for the error replies (`-BUSY`, `-SHUTDOWN`, `-ERR`).
    pub fn is_error(&self) -> bool {
        matches!(self, Reply::Busy | Reply::Shutdown | Reply::Err(_))
    }

    /// True for the back-pressure replies (`-BUSY`, `-SHUTDOWN`) — the
    /// command was rejected without execution and may be retried (`BUSY`)
    /// or the session is over (`SHUTDOWN`).
    pub fn is_pushback(&self) -> bool {
        matches!(self, Reply::Busy | Reply::Shutdown)
    }

    /// Append this reply's complete frame (header included) to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Ok => frame(buf, REPLY_OK, &[]),
            Reply::Int(value) => frame(buf, REPLY_INT, &value.to_le_bytes()),
            Reply::Nil => frame(buf, REPLY_NIL, &[]),
            Reply::Bulk(body) => frame(buf, REPLY_BULK, body),
            Reply::Busy => frame(buf, REPLY_ERR, b"BUSY"),
            Reply::Shutdown => frame(buf, REPLY_ERR, b"SHUTDOWN"),
            Reply::Err(detail) => {
                let mut body = Vec::with_capacity(4 + detail.len());
                body.extend_from_slice(b"ERR ");
                body.extend_from_slice(detail.as_bytes());
                frame(buf, REPLY_ERR, &body);
            }
        }
    }

    /// Parse a reply from a complete frame payload (tag plus body).
    pub fn parse(frame: &[u8]) -> Result<Reply, WireError> {
        let (&tag, body) = frame.split_first().ok_or(WireError::EmptyFrame)?;
        let bad = || WireError::BadPayload {
            tag,
            len: body.len(),
        };
        match tag {
            REPLY_OK => Ok(Reply::Ok),
            REPLY_INT => Ok(Reply::Int(read_u64(body).ok_or_else(bad)?)),
            REPLY_NIL => {
                if !body.is_empty() {
                    return Err(bad());
                }
                Ok(Reply::Nil)
            }
            REPLY_BULK => Ok(Reply::Bulk(body.to_vec())),
            REPLY_ERR => Ok(match body {
                b"BUSY" => Reply::Busy,
                b"SHUTDOWN" => Reply::Shutdown,
                other => Reply::Err(
                    String::from_utf8_lossy(other.strip_prefix(b"ERR ").unwrap_or(other))
                        .into_owned(),
                ),
            }),
            other => Err(WireError::UnknownReplyTag(other)),
        }
    }
}

fn frame(buf: &mut Vec<u8>, tag: u8, body: &[u8]) {
    buf.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(body);
}

fn read_u32(body: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(body.try_into().ok()?))
}

fn read_u64(body: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(body.try_into().ok()?))
}

/// A violation of the wire format. Framing is not self-resynchronizing —
/// after any of these the stream position is untrustworthy, so the peer
/// closes the connection (the server sends a final `-ERR` first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A frame declared `len == 0` (frames carry at least the tag byte).
    EmptyFrame,
    /// A frame declared a length over the receiver's cap — either an
    /// oversized message or garbage bytes misread as a header.
    Oversized {
        /// The declared frame length.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// A request frame with an opcode outside the command alphabet.
    UnknownOpcode(u8),
    /// A reply frame with a tag outside the reply alphabet.
    UnknownReplyTag(u8),
    /// A known tag with a body of the wrong size.
    BadPayload {
        /// The frame's tag byte.
        tag: u8,
        /// The body length received.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::UnknownReplyTag(tag) => write!(f, "unknown reply tag {tag:#04x}"),
            WireError::BadPayload { tag, len } => {
                write!(f, "bad payload length {len} for tag {tag:#04x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_COMMANDS: [Command; 6] = [
        Command::Get { key: 7 },
        Command::Put {
            key: 0xDEAD_BEEF,
            value: u64::MAX,
        },
        Command::Del { key: 0 },
        Command::Cas {
            key: 12345,
            expected: 1,
            new: 2,
        },
        Command::Ping,
        Command::Stats,
    ];

    #[test]
    fn every_command_round_trips() {
        for cmd in ALL_COMMANDS {
            let mut buf = Vec::new();
            cmd.encode_into(&mut buf);
            assert_eq!(buf.len(), cmd.encoded_len(), "{cmd:?}");
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            assert_eq!(len, buf.len() - HEADER_LEN, "{cmd:?}");
            assert_eq!(Command::parse(&buf[HEADER_LEN..]), Ok(cmd));
        }
    }

    #[test]
    fn every_reply_round_trips() {
        let replies = [
            Reply::Ok,
            Reply::Int(0),
            Reply::Int(u64::MAX),
            Reply::Nil,
            Reply::Bulk(b"workers 4\n".to_vec()),
            Reply::Bulk(Vec::new()),
            Reply::Busy,
            Reply::Shutdown,
            Reply::Err("bad payload length 3 for tag 0x02".into()),
        ];
        for reply in replies {
            let mut buf = Vec::new();
            reply.encode_into(&mut buf);
            assert_eq!(Reply::parse(&buf[HEADER_LEN..]), Ok(reply));
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(Command::parse(&[0x7F]), Err(WireError::UnknownOpcode(0x7F)));
        assert_eq!(Command::parse(&[]), Err(WireError::EmptyFrame));
    }

    #[test]
    fn wrong_payload_sizes_rejected() {
        // GET with a truncated key, PUT with a CAS-sized body, PING with a
        // trailing byte: all length violations for a known opcode.
        for frame in [
            &[OP_GET, 1, 2, 3][..],
            &[OP_PUT; 21][..],
            &[OP_PING, 0][..],
            &[OP_CAS; 5][..],
        ] {
            assert!(
                matches!(Command::parse(frame), Err(WireError::BadPayload { .. })),
                "{frame:?}"
            );
        }
    }

    #[test]
    fn pushback_replies_have_fixed_spelling() {
        let mut busy = Vec::new();
        Reply::Busy.encode_into(&mut busy);
        assert_eq!(&busy[4..], b"-BUSY");
        let mut shutdown = Vec::new();
        Reply::Shutdown.encode_into(&mut shutdown);
        assert_eq!(&shutdown[4..], b"-SHUTDOWN");
        assert!(Reply::Busy.is_pushback() && Reply::Shutdown.is_pushback());
        assert!(!Reply::Ok.is_pushback());
        assert!(Reply::Err("x".into()).is_error() && !Reply::Err("x".into()).is_pushback());
    }

    #[test]
    fn cas_is_the_largest_request() {
        let max = ALL_COMMANDS
            .iter()
            .map(|cmd| cmd.encoded_len() - HEADER_LEN)
            .max()
            .unwrap();
        assert_eq!(max, MAX_REQUEST_FRAME);
    }
}
