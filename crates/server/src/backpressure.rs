//! The back-pressure contract: a bounded per-connection in-flight window
//! and the mapping from executor rejections to protocol-level pushback.
//!
//! A connection never buffers more than its window of decoded-but-unreplied
//! commands. The connection worker fills the window from the socket, flushes
//! it as one `try_submit_batch`, and *waits for the replies to hit the wire*
//! before admitting more — so server-side memory per connection is bounded
//! by the window regardless of how fast the client writes or how slowly it
//! reads. When the executor rejects part of a batch
//! ([`katme::KatmeError::QueueFull`] / [`katme::KatmeError::ShuttingDown`]),
//! the rejected commands get [`Reply::Busy`] / [`Reply::Shutdown`] instead
//! of being queued again: the *client* owns the retry, which is what keeps
//! an overloaded server's memory flat.

use katme::KatmeError;

use crate::protocol::Reply;

/// Why a command was bounced without execution, and the reply that says so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pushback {
    /// The executor's queues were full (`-BUSY`): retry later.
    Busy,
    /// The runtime is shutting down (`-SHUTDOWN`): the session is over.
    Shutdown,
}

impl Pushback {
    /// Map an executor-side rejection to protocol-level pushback. `None`
    /// for errors that are not back-pressure (those become `-ERR`).
    pub fn from_error(error: &KatmeError) -> Option<Pushback> {
        match error {
            KatmeError::QueueFull => Some(Pushback::Busy),
            KatmeError::ShuttingDown => Some(Pushback::Shutdown),
            _ => None,
        }
    }

    /// The wire reply carrying this pushback.
    pub fn reply(&self) -> Reply {
        match self {
            Pushback::Busy => Reply::Busy,
            Pushback::Shutdown => Reply::Shutdown,
        }
    }
}

/// Bounded in-flight accounting for one connection: commands decoded off
/// the socket but not yet replied to. The connection worker admits into the
/// window as it decodes and retires as replies are written; [`Window::full`]
/// is the signal to stop decoding and flush.
#[derive(Debug)]
pub struct Window {
    cap: usize,
    inflight: usize,
}

impl Window {
    /// Window admitting at most `cap` in-flight commands (min 1).
    pub fn new(cap: usize) -> Self {
        Window {
            cap: cap.max(1),
            inflight: 0,
        }
    }

    /// The bound this window enforces.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Commands currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// True when no more commands may be admitted before a flush.
    pub fn full(&self) -> bool {
        self.inflight >= self.cap
    }

    /// Admit one decoded command.
    pub fn admit(&mut self) {
        self.inflight += 1;
    }

    /// Retire `n` commands whose replies have been written.
    pub fn retire(&mut self, n: usize) {
        debug_assert!(n <= self.inflight, "retiring more than in flight");
        self.inflight = self.inflight.saturating_sub(n);
    }
}
