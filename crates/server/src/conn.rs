//! One connection = one producer: the worker loop that turns a socket's
//! pipelined byte stream into executor batches and writes ordered replies.
//!
//! The loop alternates read → decode → flush. Decoded dictionary commands
//! accumulate into a batch tagged with per-connection sequence numbers;
//! when the batch reaches the in-flight window (or the read side goes
//! momentarily quiet, or an in-line command needs a barrier) the batch is
//! flushed: one `try_submit_batch`, wait for every accepted handle, merge
//! rejected commands back as pushback replies, sort by sequence number, and
//! write the whole reply run from one pooled buffer. Sorting by sequence —
//! rather than trusting handle order — keeps per-connection reply order
//! correct across batch boundaries *and* across executor lanes that may
//! resolve handles out of submission order.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use katme::{KatmeError, KeyedTask, NetCounters, Runtime, TxnKey};
use katme_stm::{recycle_payload, recycled_payload};

use crate::backpressure::{Pushback, Window};
use crate::decode::CommandDecoder;
use crate::protocol::{Command, Reply};

/// A dictionary command in flight through the executor, tagged with its
/// position in the connection's pipeline so replies can be re-sequenced.
#[derive(Debug, Clone)]
pub(crate) struct NetTask {
    pub(crate) seq: u64,
    pub(crate) cmd: Command,
}

impl KeyedTask for NetTask {
    fn key(&self) -> TxnKey {
        // In-line commands never reach the executor; `unwrap_or` keeps the
        // impl total anyway.
        self.cmd.dict_key().unwrap_or(0) as TxnKey
    }
}

/// The handler's result: the reply plus the pipeline position it belongs to.
#[derive(Debug, Clone)]
pub(crate) struct SeqReply {
    pub(crate) seq: u64,
    pub(crate) reply: Reply,
}

/// Per-connection limits, copied out of the server config.
#[derive(Debug, Clone)]
pub(crate) struct ConnLimits {
    pub(crate) max_frame_bytes: usize,
    pub(crate) inflight_window: usize,
    pub(crate) read_timeout: Duration,
}

/// Serve one accepted connection to completion. Returns when the peer
/// closes, a wire error poisons the stream, the socket fails, or the server
/// begins shutdown (after draining in-flight replies).
pub(crate) fn run_connection(
    mut stream: TcpStream,
    runtime: &Runtime<NetTask, SeqReply>,
    counters: &NetCounters,
    limits: &ConnLimits,
    shutdown: &Arc<AtomicBool>,
    render_stats: &(dyn Fn() -> Vec<u8> + Sync),
) {
    // A finite read timeout doubles as the shutdown poll interval: a
    // connection blocked on a quiet peer still notices the shutdown flag.
    if stream.set_read_timeout(Some(limits.read_timeout)).is_err() {
        counters.connection_closed();
        return;
    }
    let _ = stream.set_nodelay(true);

    let mut decoder = CommandDecoder::new(limits.max_frame_bytes);
    let mut window = Window::new(limits.inflight_window);
    let mut batch: Vec<NetTask> = Vec::new();
    let mut next_seq = 0u64;
    let mut rbuf = [0u8; 4096];

    'session: loop {
        if shutdown.load(Ordering::Acquire) {
            // Drain: flush what is already decoded so every accepted
            // command gets its reply before the socket closes.
            let _ = flush(&mut stream, runtime, counters, &mut window, &mut batch);
            break;
        }
        // With commands already decoded and waiting, poll instead of block:
        // if the peer has nothing more queued right now, flush immediately
        // rather than serving a partial pipeline at read-timeout latency
        // (SO_RCVTIMEO only resolves to kernel-tick granularity).
        if stream.set_nonblocking(!batch.is_empty()).is_err() {
            break;
        }
        let quiet = match stream.read(&mut rbuf) {
            Ok(0) => {
                // Peer finished writing: answer everything decoded so far,
                // then close our side too.
                let _ = flush(&mut stream, runtime, counters, &mut window, &mut batch);
                break;
            }
            Ok(n) => {
                counters.bytes_in(n as u64);
                decoder.feed(&rbuf[..n]);
                false
            }
            Err(error) if matches!(error.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                true
            }
            Err(error) if error.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };

        loop {
            match decoder.try_next() {
                Ok(Some(cmd)) => {
                    counters.commands(1);
                    if cmd.is_inline() {
                        // Barrier: everything decoded before this command
                        // must be answered before it.
                        if flush(&mut stream, runtime, counters, &mut window, &mut batch).is_err() {
                            break 'session;
                        }
                        let reply = match cmd {
                            Command::Ping => Reply::Ok,
                            Command::Stats => Reply::Bulk(render_stats()),
                            _ => unreachable!("is_inline covers Ping and Stats"),
                        };
                        if write_replies(&mut stream, counters, &[reply]).is_err() {
                            break 'session;
                        }
                    } else {
                        window.admit();
                        batch.push(NetTask { seq: next_seq, cmd });
                        next_seq += 1;
                        if window.full()
                            && flush(&mut stream, runtime, counters, &mut window, &mut batch)
                                .is_err()
                        {
                            break 'session;
                        }
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    // The stream position is untrustworthy: answer what was
                    // cleanly decoded, send a final -ERR, and hang up.
                    counters.frame_error();
                    let _ = flush(&mut stream, runtime, counters, &mut window, &mut batch);
                    let _ = write_replies(&mut stream, counters, &[Reply::Err(error.to_string())]);
                    counters.connection_dropped();
                    counters.connection_closed();
                    return;
                }
            }
        }

        // The read side went quiet mid-window: flush the partial batch so a
        // non-saturating client still sees its replies promptly.
        if quiet && flush(&mut stream, runtime, counters, &mut window, &mut batch).is_err() {
            break;
        }
    }
    counters.connection_closed();
}

/// Submit the pending batch, wait every accepted handle, merge pushback for
/// the rejected remainder, and write the replies in pipeline order.
fn flush(
    stream: &mut TcpStream,
    runtime: &Runtime<NetTask, SeqReply>,
    counters: &NetCounters,
    window: &mut Window,
    batch: &mut Vec<NetTask>,
) -> std::io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let tasks = std::mem::take(batch);
    let count = tasks.len();
    counters.observe_inflight(count as u64);

    let mut replies: Vec<Reply> = Vec::with_capacity(count);
    let mut sequenced: Vec<SeqReply> = Vec::with_capacity(count);
    match runtime.try_submit_batch(tasks) {
        Ok(handles) => {
            for handle in handles {
                sequenced.push(resolve(handle.wait()));
            }
        }
        Err(partial) => {
            let pushback = Pushback::from_error(&partial.error).unwrap_or(Pushback::Busy);
            match pushback {
                Pushback::Busy => counters.pushback_busy(partial.rejected.len() as u64),
                Pushback::Shutdown => counters.pushback_shutdown(partial.rejected.len() as u64),
            }
            for handle in partial.handles {
                sequenced.push(resolve(handle.wait()));
            }
            for task in partial.rejected {
                sequenced.push(SeqReply {
                    seq: task.seq,
                    reply: pushback.reply(),
                });
            }
        }
    }
    // Pipeline order is the sequence numbers, not handle or lane order.
    sequenced.sort_by_key(|entry| entry.seq);
    replies.extend(sequenced.into_iter().map(|entry| entry.reply));
    window.retire(count);
    write_replies(stream, counters, &replies)
}

/// Map a handle resolution to its reply; a task abandoned by a non-draining
/// shutdown still answers its pipeline slot (with `-SHUTDOWN`).
fn resolve(result: Result<SeqReply, KatmeError>) -> SeqReply {
    match result {
        Ok(reply) => reply,
        // wait() on an abandoned task is the only error reachable here, and
        // only without drain-on-shutdown; its seq is unknown, so this path
        // must never be hit with reordering possible. The server always
        // builds draining runtimes, making this defensive.
        Err(_) => SeqReply {
            seq: u64::MAX,
            reply: Reply::Shutdown,
        },
    }
}

/// Encode a reply run into one pooled buffer and write it with a single
/// syscall-friendly `write_all`.
fn write_replies(
    stream: &mut TcpStream,
    counters: &NetCounters,
    replies: &[Reply],
) -> std::io::Result<()> {
    if replies.is_empty() {
        return Ok(());
    }
    let mut buf = recycled_payload();
    for reply in replies {
        reply.encode_into(&mut buf);
    }
    let outcome = stream.write_all(&buf);
    if outcome.is_ok() {
        counters.bytes_out(buf.len() as u64);
        counters.replies(replies.len() as u64);
    }
    recycle_payload(buf);
    outcome
}
