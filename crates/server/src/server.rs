//! The TCP front end: acceptor, connection workers, and the facade hook
//! that turns a configured [`katme::Builder`] into a listening [`Server`].
//!
//! The acceptor thread polls a non-blocking listener with the queue crate's
//! [`Backoff`] (spin → yield → sleep, the same idle discipline the worker
//! pool uses) so an idle server costs no CPU; each accepted socket gets a
//! connection-worker thread running the `conn` module's loop against the
//! shared runtime. Shutdown is drain-first: stop accepting, let every
//! connection flush its in-flight replies, join the workers, then shut the
//! runtime down — so the terminal [`ShutdownReport`] accounts for every
//! accepted command.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use katme::{
    Builder, NetCounters, NetView, Runtime, ShutdownReport, StatsView, Stm, StmConfig,
    StructureKind,
};
use katme_collections::TxDictionary;
use katme_queue::Backoff;

use crate::conn::{run_connection, ConnLimits, NetTask, SeqReply};
use crate::protocol::{Command, Reply, MAX_REQUEST_FRAME};
use crate::stats::render_stats;

/// Connection-plane tuning for [`ServeExt::serve_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dictionary implementation the commands execute against.
    pub structure: StructureKind,
    /// STM configuration for the shared [`Stm`] instance the dictionary and
    /// the runtime both use (superseding any `Builder::stm` /
    /// `Builder::stm_config` setting — the server must own the instance the
    /// dictionary is built on).
    pub stm_config: StmConfig,
    /// Connections accepted concurrently; extras are answered `-BUSY` and
    /// closed (counted as dropped).
    pub max_connections: usize,
    /// Request-frame length cap (tag plus body). Anything above — including
    /// garbage bytes misread as a header — is rejected without buffering.
    pub max_frame_bytes: usize,
    /// Per-connection bound on decoded-but-unreplied commands: the
    /// back-pressure contract. Also the executor batch size for a saturated
    /// pipeline.
    pub inflight_window: usize,
    /// Socket read timeout; doubles as the shutdown-poll and partial-batch
    /// flush interval.
    pub read_timeout: Duration,
    /// Test and load-shaping knob: busy-spin this long inside every
    /// dictionary command handler, making queue-full pushback reproducible.
    pub op_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            structure: StructureKind::HashTable,
            stm_config: StmConfig::default(),
            max_connections: 256,
            max_frame_bytes: MAX_REQUEST_FRAME.max(64),
            inflight_window: 256,
            read_timeout: Duration::from_millis(25),
            op_delay: None,
        }
    }
}

impl ServerConfig {
    /// Set the dictionary implementation.
    pub fn with_structure(mut self, structure: StructureKind) -> Self {
        self.structure = structure;
        self
    }

    /// Set the STM configuration for the shared instance.
    pub fn with_stm_config(mut self, config: StmConfig) -> Self {
        self.stm_config = config;
        self
    }

    /// Set the concurrent-connection cap.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Set the request-frame length cap.
    pub fn with_max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max.max(MAX_REQUEST_FRAME);
        self
    }

    /// Set the per-connection in-flight window.
    pub fn with_inflight_window(mut self, window: usize) -> Self {
        self.inflight_window = window.max(1);
        self
    }

    /// Set the socket read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Busy-spin this long per dictionary command (load-shaping knob).
    pub fn with_op_delay(mut self, delay: Duration) -> Self {
        self.op_delay = Some(delay);
        self
    }
}

/// Extension trait adding [`serve`](ServeExt::serve) to [`katme::Builder`]:
/// finish building the runtime *and* put a TCP front end in front of it.
pub trait ServeExt {
    /// Serve the builder's runtime on `addr` with the default
    /// [`ServerConfig`]. Bind to port 0 for an ephemeral port
    /// ([`Server::local_addr`] reports the actual one).
    fn serve(self, addr: impl ToSocketAddrs) -> io::Result<Server>;

    /// Serve with explicit connection-plane tuning.
    fn serve_with(self, addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server>;
}

impl ServeExt for Builder {
    fn serve(self, addr: impl ToSocketAddrs) -> io::Result<Server> {
        self.serve_with(addr, ServerConfig::default())
    }

    fn serve_with(self, addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        Server::start(self, addr, config)
    }
}

/// A listening KATME service: runtime + dictionary + acceptor + connection
/// workers behind one handle. Create via [`ServeExt::serve`]; tear down via
/// [`Server::shutdown`] (dropping the handle tears down without a report).
pub struct Server {
    runtime: Option<Arc<Runtime<NetTask, SeqReply>>>,
    counters: Arc<NetCounters>,
    dict: Arc<dyn TxDictionary>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    fn start(
        builder: Builder,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let stm = Stm::new(config.stm_config.clone());
        let dict = config.structure.build(stm.clone());
        let handler_dict = Arc::clone(&dict);
        let handler_stm = stm.clone();
        let op_delay = config.op_delay;
        let runtime = builder
            .stm(stm)
            .build(move |_worker, task: NetTask| {
                if let Some(delay) = op_delay {
                    spin_for(delay);
                }
                SeqReply {
                    seq: task.seq,
                    reply: execute(&*handler_dict, &handler_stm, task.cmd),
                }
            })
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidInput, error))?;
        let runtime = Arc::new(runtime);
        let counters = runtime.attach_net(Arc::new(NetCounters::new()));

        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let limits = ConnLimits {
            max_frame_bytes: config.max_frame_bytes,
            inflight_window: config.inflight_window,
            read_timeout: config.read_timeout,
        };

        let acceptor = {
            let runtime = Arc::clone(&runtime);
            let counters = Arc::clone(&counters);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("katme-acceptor".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        runtime,
                        counters,
                        shutdown,
                        conns,
                        limits,
                        max_connections,
                    )
                })?
        };

        Ok(Server {
            runtime: Some(runtime),
            counters,
            dict,
            addr,
            shutdown,
            acceptor: Some(acceptor),
            conns,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live runtime statistics, connection plane included
    /// ([`StatsView::net`] is always `Some` for a served runtime).
    pub fn stats(&self) -> StatsView {
        self.runtime
            .as_ref()
            .expect("runtime present until shutdown")
            .stats()
    }

    /// Live connection-plane counters alone (cheaper than [`Server::stats`]).
    pub fn net(&self) -> NetView {
        self.counters.view()
    }

    /// The dictionary the served commands execute against (for preloading
    /// and validation around a test or benchmark run).
    pub fn dictionary(&self) -> &Arc<dyn TxDictionary> {
        &self.dict
    }

    /// Drain and tear down: stop accepting, let every connection write its
    /// in-flight replies and close, join the workers, then shut the runtime
    /// down. The report's [`ShutdownReport::net`] carries the final
    /// connection-plane counters.
    pub fn shutdown(mut self) -> ShutdownReport {
        let runtime = self.teardown().expect("first teardown owns the runtime");
        Arc::into_inner(runtime)
            .expect("all connection workers joined; server holds the last runtime reference")
            .shutdown()
    }

    /// Common teardown: returns the runtime Arc once every thread that
    /// cloned it has been joined.
    fn teardown(&mut self) -> Option<Arc<Runtime<NetTask, SeqReply>>> {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let workers = {
            let mut conns = self.conns.lock().expect("conn registry lock");
            std::mem::take(&mut *conns)
        };
        for worker in workers {
            let _ = worker.join();
        }
        self.runtime.take()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("structure", &self.dict.name())
            .field("net", &self.counters.view())
            .finish()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still drains and joins; the runtime
        // then tears itself down through its own Drop.
        let _ = self.teardown();
    }
}

/// The acceptor: poll the non-blocking listener, spawn a connection worker
/// per socket, bounce extras with `-BUSY`, reap finished workers.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    runtime: Arc<Runtime<NetTask, SeqReply>>,
    counters: Arc<NetCounters>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    limits: ConnLimits,
    max_connections: usize,
) {
    let mut backoff = Backoff::new().with_max_sleep(Duration::from_millis(5));
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff.reset();
                if counters.view().connected >= max_connections as u64 {
                    bounce(stream, &counters);
                    continue;
                }
                counters.connection_opened();
                let worker = {
                    let runtime = Arc::clone(&runtime);
                    let counters = Arc::clone(&counters);
                    let shutdown = Arc::clone(&shutdown);
                    let limits = limits.clone();
                    std::thread::Builder::new()
                        .name("katme-conn".into())
                        .spawn(move || {
                            let render = || render_stats(&runtime.stats());
                            run_connection(
                                stream, &runtime, &counters, &limits, &shutdown, &render,
                            );
                        })
                };
                match worker {
                    Ok(handle) => {
                        let mut registry = conns.lock().expect("conn registry lock");
                        // Reap finished workers so a churny client cannot
                        // grow the registry without bound.
                        registry.retain(|worker| !worker.is_finished());
                        registry.push(handle);
                    }
                    Err(_) => {
                        // Spawn failed: the opened connection cannot be
                        // served.
                        counters.connection_closed();
                        counters.connection_dropped();
                    }
                }
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => backoff.snooze(),
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => backoff.snooze(),
        }
    }
}

/// Refuse a connection over the cap: one `-BUSY` frame, then close.
fn bounce(mut stream: TcpStream, counters: &NetCounters) {
    let mut buf = Vec::with_capacity(16);
    Reply::Busy.encode_into(&mut buf);
    if stream.write_all(&buf).is_ok() {
        counters.bytes_out(buf.len() as u64);
        counters.replies(1);
    }
    counters.connection_dropped();
}

/// Execute one dictionary command against the shared structure.
fn execute(dict: &dyn TxDictionary, stm: &Stm, cmd: Command) -> Reply {
    match cmd {
        Command::Get { key } => match dict.lookup(key) {
            Some(value) => Reply::Int(value),
            None => Reply::Nil,
        },
        Command::Put { key, value } => Reply::Int(dict.insert(key, value) as u64),
        Command::Del { key } => Reply::Int(dict.remove(key) as u64),
        Command::Cas { key, expected, new } => {
            // Composed transaction: the lookup and the conditional insert
            // commit atomically or not at all.
            let swapped = stm.atomically(|tx| {
                Ok(match dict.lookup_tx(tx, key)? {
                    Some(current) if current == expected => {
                        dict.insert_tx(tx, key, new)?;
                        true
                    }
                    _ => false,
                })
            });
            Reply::Int(swapped as u64)
        }
        // In-line commands are answered by the connection worker and never
        // submitted; keep the handler total anyway.
        Command::Ping => Reply::Ok,
        Command::Stats => Reply::Err("STATS is connection-inline".into()),
    }
}

/// Busy-wait for `delay` without syscalls (used by the load-shaping knob;
/// sleeping would park the worker and distort queue-depth measurements).
fn spin_for(delay: Duration) {
    let end = std::time::Instant::now() + delay;
    while std::time::Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn serve_small(config: ServerConfig) -> Server {
        katme::Katme::builder()
            .workers(2)
            .key_range(0, u32::MAX as u64)
            .serve_with("127.0.0.1:0", config)
            .expect("loopback bind")
    }

    #[test]
    fn loopback_round_trip_all_commands() {
        let server = serve_small(ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();

        assert_eq!(client.request(Command::Ping).unwrap(), Reply::Ok);
        assert_eq!(
            client.request(Command::Put { key: 7, value: 40 }).unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            client.request(Command::Put { key: 7, value: 41 }).unwrap(),
            Reply::Int(0), // overwrite
        );
        assert_eq!(
            client.request(Command::Get { key: 7 }).unwrap(),
            Reply::Int(41)
        );
        assert_eq!(client.request(Command::Get { key: 8 }).unwrap(), Reply::Nil);
        assert_eq!(
            client
                .request(Command::Cas {
                    key: 7,
                    expected: 41,
                    new: 42
                })
                .unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            client
                .request(Command::Cas {
                    key: 7,
                    expected: 41,
                    new: 43
                })
                .unwrap(),
            Reply::Int(0), // stale expected
        );
        assert_eq!(
            client.request(Command::Del { key: 7 }).unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            client.request(Command::Del { key: 7 }).unwrap(),
            Reply::Int(0)
        );
        match client.request(Command::Stats).unwrap() {
            Reply::Bulk(body) => {
                assert!(crate::stats::stat_value(&body, "net_commands").unwrap() >= 9);
                assert_eq!(crate::stats::stat_value(&body, "net_connected"), Some(1));
            }
            other => panic!("STATS returned {other:?}"),
        }

        let report = server.shutdown();
        let net = report.net.expect("served runtime carries net counters");
        assert_eq!(net.accepted, 1);
        assert_eq!(net.connected, 0, "connection drained at shutdown");
        assert!(net.commands >= 10);
        assert_eq!(net.frame_errors, 0);
        assert!(net.bytes_in > 0 && net.bytes_out > 0);
    }

    #[test]
    fn pipelined_burst_replies_in_order() {
        let server = serve_small(ServerConfig::default().with_inflight_window(16));
        let mut client = Client::connect(server.local_addr()).unwrap();

        // 64 commands through a window of 16: replies must come back in
        // pipeline order across (at least) four batch boundaries.
        let mut commands = Vec::new();
        for key in 0..32u32 {
            commands.push(Command::Put {
                key,
                value: key as u64 + 100,
            });
        }
        for key in 0..32u32 {
            commands.push(Command::Get { key });
        }
        client.send(&commands).unwrap();
        let replies = client.recv_n(64).unwrap();
        for (i, reply) in replies[..32].iter().enumerate() {
            assert_eq!(*reply, Reply::Int(1), "PUT #{i}");
        }
        for (i, reply) in replies[32..].iter().enumerate() {
            assert_eq!(*reply, Reply::Int(i as u64 + 100), "GET #{i}");
        }
        let net = server.net();
        assert!(
            net.peak_inflight <= 16,
            "window breached: peak {}",
            net.peak_inflight
        );
        server.shutdown();
    }

    #[test]
    fn garbage_prefix_gets_err_reply_and_close() {
        let server = serve_small(ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.send_raw(b"GET key HTTP-style\r\n").unwrap();
        match client.recv().unwrap() {
            Reply::Err(detail) => assert!(detail.contains("exceeds cap"), "{detail}"),
            other => panic!("expected -ERR, got {other:?}"),
        }
        // Server hangs up after the -ERR.
        assert!(client.recv().is_err());
        let net = server.net();
        assert_eq!(net.frame_errors, 1);
        assert_eq!(net.dropped, 1);
        server.shutdown();
    }

    #[test]
    fn connection_cap_bounces_with_busy() {
        let server = serve_small(ServerConfig::default().with_max_connections(1));
        let mut first = Client::connect(server.local_addr()).unwrap();
        assert_eq!(first.request(Command::Ping).unwrap(), Reply::Ok);
        let mut second = Client::connect(server.local_addr()).unwrap();
        assert_eq!(second.recv().unwrap(), Reply::Busy);
        assert!(second.recv().is_err(), "bounced connection is closed");
        drop(first);
        server.shutdown();
    }
}
