//! A small blocking client for the wire protocol — the building block of
//! the load generator, the integration tests, and any tool that talks to a
//! served runtime.
//!
//! The client is deliberately pipelining-first: [`Client::send`] writes any
//! number of encoded commands in one `write_all`, and [`Client::recv`] /
//! [`Client::recv_n`] read replies back in order. [`Client::request`] is
//! the depth-1 convenience for tests and scripts.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::decode::ReplyDecoder;
use crate::protocol::{Command, Reply};

/// Reply frames can carry the `STATS` bulk; cap well above any plausible
/// stats body while still bounding a misbehaving server.
const MAX_REPLY_FRAME: usize = 1 << 20;

/// A blocking, pipelining connection to a KATME server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    decoder: ReplyDecoder,
    wbuf: Vec<u8>,
}

impl Client {
    /// Connect to a served runtime.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            decoder: ReplyDecoder::new(MAX_REPLY_FRAME),
            wbuf: Vec::with_capacity(4096),
        })
    }

    /// Write `commands` back-to-back as one pipelined burst.
    pub fn send(&mut self, commands: &[Command]) -> io::Result<()> {
        self.wbuf.clear();
        for command in commands {
            command.encode_into(&mut self.wbuf);
        }
        self.stream.write_all(&self.wbuf)
    }

    /// Write pre-encoded bytes verbatim — the escape hatch the codec tests
    /// use to send torn, oversized, or garbage frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read the next reply, blocking until a complete frame arrives. A
    /// malformed frame surfaces as [`io::ErrorKind::InvalidData`]; a server
    /// close with no pending reply as [`io::ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut rbuf = [0u8; 4096];
        loop {
            if let Some(reply) = self
                .decoder
                .try_next()
                .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error))?
            {
                return Ok(reply);
            }
            match self.stream.read(&mut rbuf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-pipeline",
                    ))
                }
                Ok(n) => self.decoder.feed(&rbuf[..n]),
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
    }

    /// Read the next `n` replies in order.
    pub fn recv_n(&mut self, n: usize) -> io::Result<Vec<Reply>> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Depth-1 round trip: send one command, read its reply.
    pub fn request(&mut self, command: Command) -> io::Result<Reply> {
        self.send(std::slice::from_ref(&command))?;
        self.recv()
    }

    /// Bound how long [`Client::recv`] may block on the socket (`None`
    /// blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Half-close the write side, signalling the server this client is done
    /// sending (replies can still be read).
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }
}
