//! Rendering of the `STATS` reply: a `$` bulk of ASCII `name value` lines.
//!
//! The body is a stable, machine-greppable projection of
//! [`katme::StatsView`] — executor counters first, then the connection
//! plane when attached. One `name value\n` line per counter, names
//! `snake_case`, values decimal integers (throughput is reported in whole
//! commands/s). Consumers must tolerate new lines being appended.

use katme::StatsView;

/// Render the `STATS` bulk body from a live stats snapshot.
pub fn render_stats(view: &StatsView) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    let mut line = |name: &str, value: u64| {
        out.extend_from_slice(name.as_bytes());
        out.push(b' ');
        out.extend_from_slice(value.to_string().as_bytes());
        out.push(b'\n');
    };
    line("workers", view.workers as u64);
    line("active_workers", view.active_workers as u64);
    line("uptime_ms", view.uptime.as_millis() as u64);
    line("submitted", view.submitted);
    line("completed", view.completed);
    line("throughput", view.throughput() as u64);
    line("backlog", view.backlog() as u64);
    line("steals", view.steals);
    line("parks", view.parks);
    line("resizes", view.resizes);
    line("repartitions", view.repartitions);
    line("stm_commits", view.stm.commits);
    line("stm_aborts", view.stm.total_aborts());
    if let Some(net) = view.net() {
        line("net_accepted", net.accepted);
        line("net_connected", net.connected);
        line("net_dropped", net.dropped);
        line("net_pushback_busy", net.pushback_busy);
        line("net_pushback_shutdown", net.pushback_shutdown);
        line("net_frame_errors", net.frame_errors);
        line("net_commands", net.commands);
        line("net_replies", net.replies);
        line("net_bytes_in", net.bytes_in);
        line("net_bytes_out", net.bytes_out);
        line("net_peak_inflight", net.peak_inflight);
    }
    out
}

/// Parse one counter back out of a `STATS` body (test and loadgen helper).
pub fn stat_value(body: &[u8], name: &str) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    text.lines().find_map(|line| {
        let (key, value) = line.split_once(' ')?;
        (key == name).then(|| value.parse().ok())?
    })
}
