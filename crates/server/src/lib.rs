//! # katme-server — the network service plane
//!
//! A TCP front end for the KATME executor, built entirely on `std::net`
//! (zero external dependencies, matching the workspace's offline build).
//! It speaks a RESP-like length-prefixed, pipelined wire protocol —
//! `GET`/`PUT`/`DEL`/`CAS` over the transactional dictionary plus
//! `PING`/`STATS` — and turns every accepted connection into a producer for
//! the runtime underneath:
//!
//! * [`protocol`] defines the frame format, the command and reply alphabets,
//!   and the encoders; [`decode`] turns torn byte runs back into frames,
//!   rejecting oversized and garbage-prefixed input without buffering it.
//! * the connection worker's worker loop decodes pipelined commands into executor
//!   batches (`try_submit_batch`), preserves per-connection reply order
//!   across batch boundaries by sequence-tagging every command, and holds a
//!   bounded in-flight window — the [`backpressure`] contract under which
//!   `QueueFull`/`ShuttingDown` surface as `-BUSY`/`-SHUTDOWN` replies
//!   instead of unbounded buffering.
//! * [`server`] runs the acceptor and connection workers and hooks into the
//!   facade: bring [`ServeExt`] into scope and any configured
//!   [`katme::Builder`] gains [`serve`](ServeExt::serve).
//! * [`client`] is the blocking, pipelining counterpart used by the load
//!   generator and the tests.
//!
//! ```no_run
//! use katme::Katme;
//! use katme_server::{Client, Command, Reply, ServeExt};
//!
//! let server = Katme::builder()
//!     .workers(2)
//!     .key_range(0, u32::MAX as u64)
//!     .serve("127.0.0.1:0")?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! client.send(&[
//!     Command::Put { key: 7, value: 42 },
//!     Command::Get { key: 7 },
//! ])?;
//! assert_eq!(client.recv()?, Reply::Int(1)); // newly inserted
//! assert_eq!(client.recv()?, Reply::Int(42));
//!
//! let report = server.shutdown();
//! assert!(report.net.unwrap().commands >= 2);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The wire format is specified in `docs/PROTOCOL.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backpressure;
pub mod client;
pub(crate) mod conn;
pub mod decode;
pub mod protocol;
pub mod server;
pub mod stats;

pub use backpressure::{Pushback, Window};
pub use client::Client;
pub use decode::{CommandDecoder, FrameDecoder, ReplyDecoder};
pub use protocol::{Command, Reply, WireError};
pub use server::{ServeExt, Server, ServerConfig};
pub use stats::{render_stats, stat_value};
