//! Single-lock queue baseline.
//!
//! The simplest correct MPMC queue: a `VecDeque` behind one mutex. The
//! executor benchmarks use it as a baseline against which the two-lock
//! Michael & Scott queue is compared; it is also handy in tests because its
//! behaviour is trivially sequentially consistent.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::TaskQueue;

/// A `Mutex<VecDeque>` FIFO queue.
pub struct MutexQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MutexQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        MutexQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        MutexQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Append an item to the tail.
    pub fn enqueue(&self, item: T) {
        self.inner.lock().push_back(item);
    }

    /// Remove the item at the head, if any.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Append a whole batch under one lock acquisition, preserving order.
    pub fn enqueue_batch(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        self.inner.lock().extend(batch);
    }

    /// Move up to `max` items from the head into `out` under one lock
    /// acquisition. Returns the number of items moved.
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut inner = self.inner.lock();
        let take = inner.len().min(max);
        out.extend(inner.drain(..take));
        take
    }

    /// Number of queued items.
    pub fn count(&self) -> usize {
        self.inner.lock().len()
    }
}

impl<T: Send> TaskQueue<T> for MutexQueue<T> {
    fn push(&self, item: T) {
        self.enqueue(item);
    }

    fn try_pop(&self) -> Option<T> {
        self.dequeue()
    }

    fn len(&self) -> usize {
        self.count()
    }

    fn push_batch(&self, batch: Vec<T>) {
        self.enqueue_batch(batch);
    }

    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(out, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = MutexQueue::new();
        q.enqueue('a');
        q.enqueue('b');
        q.enqueue('c');
        assert_eq!(q.dequeue(), Some('a'));
        assert_eq!(q.dequeue(), Some('b'));
        assert_eq!(q.dequeue(), Some('c'));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn len_is_accurate() {
        let q = MutexQueue::with_capacity(8);
        assert!(q.is_empty());
        for i in 0..5 {
            q.enqueue(i);
        }
        assert_eq!(q.count(), 5);
        assert_eq!(TaskQueue::len(&q), 5);
    }

    #[test]
    fn batch_operations_preserve_order() {
        let q = MutexQueue::new();
        q.enqueue_batch((0..10).collect());
        q.enqueue(10);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 4), 4);
        assert_eq!(q.dequeue_batch(&mut out, 100), 7);
        assert_eq!(out, (0..=10).collect::<Vec<_>>());
        assert_eq!(q.dequeue_batch(&mut out, 1), 0);
    }

    #[test]
    fn concurrent_producers_do_not_lose_items() {
        let q = Arc::new(MutexQueue::new());
        let threads = 4;
        let per_thread = 1_000;
        thread::scope(|s| {
            for _ in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per_thread {
                        q.enqueue(i);
                    }
                });
            }
        });
        assert_eq!(q.count(), threads * per_thread);
    }
}
