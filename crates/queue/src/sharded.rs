//! Sharded segment queue optimized for batch transfer.
//!
//! The per-worker queues become the dispatch-plane bottleneck once producers
//! submit in batches: a single head/tail lock pair serializes every producer
//! against every other producer even when they arrive with pre-grouped work.
//! This queue splits the buffer into independent *shards*, each holding a
//! FIFO of *segments* (contiguous runs of items). A batch push deposits the
//! whole batch as one segment under one shard lock; a batch pop hands entire
//! segments over to the consumer, so a `Vec` of tasks crosses the
//! producer/worker boundary with one lock acquisition on each side and zero
//! per-item synchronization.
//!
//! Ordering guarantees (the same contract [`TaskQueue`] documents):
//!
//! * **Within a batch**: a batch lands in a single shard as one segment and
//!   segments drain front-to-back, so items of one batch are always popped
//!   in push order.
//! * **Per producer**: each producer thread is pinned to one shard (stable
//!   thread-local stripe), and every shard is FIFO, so a producer's pushes
//!   are popped in order.
//! * **Globally**: like any sharded queue, items from *different* producers
//!   may be interleaved differently than their real-time push order;
//!   consumers rotate over shards to keep drain fair.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::TaskQueue;

/// Default shard count (power of two, so shard selection is a mask).
pub const DEFAULT_SHARDS: usize = 8;

/// Items a single-push "open" tail segment may accumulate before a new
/// segment is started (keeps segment hand-off granular under mixed
/// single/batch traffic).
const OPEN_SEGMENT_CAP: usize = 64;

/// One shard: a FIFO of segments. Items inside a segment are FIFO; segments
/// themselves are FIFO; hence the shard is FIFO.
struct Shard<T> {
    segments: Mutex<VecDeque<VecDeque<T>>>,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard {
            segments: Mutex::new(VecDeque::new()),
        }
    }
}

/// A sharded, segment-based MPMC FIFO queue (see the module docs for the
/// ordering contract). Batch transfers move whole segments and touch exactly
/// one shard lock per call.
pub struct ShardedSegQueue<T> {
    shards: Vec<Shard<T>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    /// Cached element count so `len` touches no lock.
    len: AtomicUsize,
    /// Rotating consumer cursor for fair shard scanning.
    next_pop: AtomicUsize,
}

impl<T> Default for ShardedSegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable per-thread stripe index, assigned round-robin on first use, so
/// threads spread over a set of stripes while each stays pinned to one.
/// This queue uses it for shard pinning (preserving per-producer FIFO);
/// callers with their own striped structures (e.g. striped counters) mask
/// it down to their stripe count.
pub fn thread_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    STRIPE.with(|slot| {
        let mut stripe = slot.get();
        if stripe == usize::MAX {
            stripe = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(stripe);
        }
        stripe
    })
}

impl<T> ShardedSegQueue<T> {
    /// Create a queue with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Create a queue with a specific shard count (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedSegQueue {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            mask: shards - 1,
            len: AtomicUsize::new(0),
            next_pop: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn producer_shard(&self) -> &Shard<T> {
        &self.shards[thread_stripe() & self.mask]
    }

    /// Append one item to this thread's shard.
    pub fn enqueue(&self, item: T) {
        {
            let mut segments = self.producer_shard().segments.lock();
            match segments.back_mut() {
                Some(open) if open.len() < OPEN_SEGMENT_CAP => open.push_back(item),
                _ => {
                    let mut segment = VecDeque::with_capacity(OPEN_SEGMENT_CAP.min(16));
                    segment.push_back(item);
                    segments.push_back(segment);
                }
            }
        }
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Deposit a whole batch as one segment under one shard lock. The batch
    /// is popped in push order (it stays contiguous).
    pub fn enqueue_batch(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        {
            let mut segments = self.producer_shard().segments.lock();
            // VecDeque::from(Vec) is O(1): the allocation is reused.
            segments.push_back(VecDeque::from(batch));
        }
        self.len.fetch_add(n, Ordering::Release);
    }

    /// Remove the oldest item of the first non-empty shard (rotating scan).
    pub fn dequeue(&self) -> Option<T> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let start = self.next_pop.fetch_add(1, Ordering::Relaxed);
        for offset in 0..self.shards.len() {
            let shard = &self.shards[(start + offset) & self.mask];
            let mut segments = shard.segments.lock();
            if let Some(front) = segments.front_mut() {
                let item = front.pop_front();
                if front.is_empty() {
                    segments.pop_front();
                }
                if item.is_some() {
                    drop(segments);
                    self.len.fetch_sub(1, Ordering::Release);
                    return item;
                }
            }
        }
        None
    }

    /// Move up to `max` items into `out`, whole segments at a time, scanning
    /// shards round-robin. Each shard is locked at most once per call.
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 || self.len.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let start = self.next_pop.fetch_add(1, Ordering::Relaxed);
        let mut moved = 0usize;
        for offset in 0..self.shards.len() {
            if moved >= max {
                break;
            }
            let shard = &self.shards[(start + offset) & self.mask];
            let mut segments = shard.segments.lock();
            while moved < max {
                let Some(front) = segments.front_mut() else {
                    break;
                };
                let remaining = max - moved;
                if front.len() <= remaining {
                    // Whole-segment hand-off: O(len) moves, no per-item locking.
                    moved += front.len();
                    let segment = segments.pop_front().expect("front exists");
                    out.extend(segment);
                } else {
                    moved += remaining;
                    out.extend(front.drain(..remaining));
                }
            }
        }
        if moved > 0 {
            self.len.fetch_sub(moved, Ordering::Release);
        }
        moved
    }

    /// Number of queued items.
    pub fn count(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

impl<T: Send> TaskQueue<T> for ShardedSegQueue<T> {
    fn push(&self, item: T) {
        self.enqueue(item);
    }

    fn try_pop(&self) -> Option<T> {
        self.dequeue()
    }

    fn len(&self) -> usize {
        self.count()
    }

    fn push_batch(&self, batch: Vec<T>) {
        self.enqueue_batch(batch);
    }

    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(out, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn batch_is_popped_in_push_order() {
        let q = ShardedSegQueue::new();
        q.enqueue_batch((0..100).collect());
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_pop_hands_over_whole_segments() {
        let q = ShardedSegQueue::new();
        q.enqueue_batch((0..10).collect());
        q.enqueue_batch((10..20).collect());
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 15), 15);
        assert_eq!(out, (0..15).collect::<Vec<_>>());
        assert_eq!(q.count(), 5);
        out.clear();
        assert_eq!(q.dequeue_batch(&mut out, 100), 5);
        assert_eq!(out, (15..20).collect::<Vec<_>>());
    }

    #[test]
    fn singles_and_batches_interleave_in_order_per_thread() {
        let q = ShardedSegQueue::<u32>::with_shards(1);
        q.enqueue(0);
        q.enqueue_batch(vec![1, 2, 3]);
        q.enqueue(4);
        let mut out = Vec::new();
        q.dequeue_batch(&mut out, 10);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_tracks_batch_operations() {
        let q = ShardedSegQueue::new();
        assert!(q.is_empty());
        q.enqueue_batch(vec![1u8, 2, 3]);
        q.enqueue(4);
        assert_eq!(q.count(), 4);
        let mut out = Vec::new();
        q.dequeue_batch(&mut out, 2);
        assert_eq!(q.count(), 2);
        q.dequeue();
        q.dequeue();
        assert_eq!(q.count(), 0);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_batches_lose_nothing() {
        let q = Arc::new(ShardedSegQueue::new());
        let producers = 4u64;
        let batches_per_producer = 50u64;
        let batch_len = 100u64;
        let total = producers * batches_per_producer * batch_len;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for b in 0..batches_per_producer {
                    let base = (p * batches_per_producer + b) * batch_len;
                    q.enqueue_batch((base..base + batch_len).collect());
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 10_000 {
                        let mut out = Vec::new();
                        if q.dequeue_batch(&mut out, 64) > 0 {
                            got.extend(out);
                            dry = 0;
                        } else {
                            dry += 1;
                            thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = HashSet::new();
        let mut count = 0usize;
        for h in consumers {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate {v}");
                count += 1;
            }
        }
        let mut rest = Vec::new();
        q.dequeue_batch(&mut rest, usize::MAX);
        count += rest.len();
        assert_eq!(count, total as usize);
    }

    #[test]
    fn per_producer_fifo_is_preserved() {
        let q = Arc::new(ShardedSegQueue::new());
        let producers = 3u64;
        let per_producer = 3_000u64;
        thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per_producer {
                        if i % 7 == 0 {
                            q.enqueue_batch(vec![(p, i)]);
                        } else {
                            q.enqueue((p, i));
                        }
                    }
                });
            }
        });
        let mut last = vec![None::<u64>; producers as usize];
        while let Some((p, i)) = q.dequeue() {
            if let Some(prev) = last[p as usize] {
                assert!(i > prev, "producer {p} reordered: {prev} then {i}");
            }
            last[p as usize] = Some(i);
        }
        for (p, seen) in last.iter().enumerate() {
            assert_eq!(seen.unwrap(), per_producer - 1, "producer {p} lost items");
        }
    }

    #[test]
    fn single_shard_config_serves_concurrent_producers() {
        // One shard: every producer lands in the same shard, so the queue
        // degenerates to a plain segment FIFO — nothing may be lost and each
        // producer's order must survive the contention.
        let q = Arc::new(ShardedSegQueue::<(u64, u64)>::with_shards(1));
        assert_eq!(q.shards(), 1);
        let producers = 4u64;
        let per_producer = 2_000u64;
        thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for chunk in 0..(per_producer / 100) {
                        let base = chunk * 100;
                        q.enqueue_batch((base..base + 100).map(|i| (p, i)).collect());
                    }
                });
            }
        });
        assert_eq!(q.count() as u64, producers * per_producer);
        let mut last = vec![None::<u64>; producers as usize];
        let mut total = 0u64;
        let mut out = Vec::new();
        while q.dequeue_batch(&mut out, 333) > 0 {
            for (p, i) in out.drain(..) {
                if let Some(prev) = last[p as usize] {
                    assert!(i > prev, "producer {p} reordered: {prev} then {i}");
                }
                last[p as usize] = Some(i);
                total += 1;
            }
        }
        assert_eq!(total, producers * per_producer);
    }

    #[test]
    fn empty_batch_push_is_a_no_op() {
        let q = ShardedSegQueue::<u8>::new();
        q.enqueue_batch(Vec::new());
        assert_eq!(q.count(), 0);
        assert_eq!(q.dequeue(), None);
        // An empty batch must not leave an empty segment behind that a later
        // batch pop would trip over.
        q.enqueue_batch(Vec::new());
        q.enqueue_batch(vec![1, 2, 3]);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 10), 3);
        assert_eq!(out, vec![1, 2, 3]);
        // Zero-max pop is likewise a no-op.
        q.enqueue(4);
        out.clear();
        assert_eq!(q.dequeue_batch(&mut out, 0), 0);
        assert!(out.is_empty());
        assert_eq!(q.count(), 1);
    }

    #[test]
    fn cross_shard_batch_drain_preserves_per_batch_order_under_concurrency() {
        // Producers on different shards push tagged batches while consumers
        // drain whole segments concurrently. Global interleaving across
        // shards is unspecified, but within every (producer, batch) the
        // items must come out in push order, and a producer's batches must
        // drain in the order they were pushed.
        let q = Arc::new(ShardedSegQueue::<(u64, u64, u64)>::with_shards(4));
        let producers = 4u64;
        let batches = 40u64;
        let batch_len = 50u64;
        let total = (producers * batches * batch_len) as usize;

        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 10_000 {
                        let mut out = Vec::new();
                        if q.dequeue_batch(&mut out, 75) > 0 {
                            got.extend(out);
                            dry = 0;
                        } else {
                            dry += 1;
                            thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for b in 0..batches {
                        q.enqueue_batch((0..batch_len).map(|i| (p, b, i)).collect());
                    }
                });
            }
        });
        let mut drained: Vec<Vec<(u64, u64, u64)>> =
            consumers.into_iter().map(|h| h.join().unwrap()).collect();
        let mut rest = Vec::new();
        q.dequeue_batch(&mut rest, usize::MAX);
        drained.push(rest);

        let mut seen = 0usize;
        // Per consumer stream: within a producer the (batch, index) pairs
        // must be non-decreasing lexicographically — segments drain
        // front-to-back and whole segments move atomically per call.
        for stream in &drained {
            let mut last = vec![None::<(u64, u64)>; producers as usize];
            for &(p, b, i) in stream {
                if let Some(prev) = last[p as usize] {
                    assert!(
                        (b, i) > prev,
                        "producer {p} drained out of order: {prev:?} then {:?}",
                        (b, i)
                    );
                }
                last[p as usize] = Some((b, i));
                seen += 1;
            }
        }
        assert_eq!(seen, total, "every pushed item must drain exactly once");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSegQueue::<u8>::with_shards(0).shards(), 1);
        assert_eq!(ShardedSegQueue::<u8>::with_shards(3).shards(), 4);
        assert_eq!(ShardedSegQueue::<u8>::with_shards(8).shards(), 8);
    }
}
