//! Michael & Scott's two-lock concurrent queue.
//!
//! This is the blocking algorithm from Michael & Scott, *"Simple, Fast, and
//! Practical Non-Blocking and Blocking Concurrent Queue Algorithms"*
//! (PODC 1996) — the same paper as the non-blocking queue behind
//! `java.util.concurrent.ConcurrentLinkedQueue` that the KATME paper uses for
//! its task queues. The two-lock variant keeps one lock for the head
//! (dequeuers) and one for the tail (enqueuers), separated by a dummy node,
//! so producers and consumers never contend with each other; only producers
//! contend with producers and consumers with consumers.
//!
//! The implementation below is safe Rust: links are `Option<Box<Node<T>>>`
//! owned by their predecessor, the head lock owns the dummy node, and the
//! tail lock holds a raw-free *cursor* expressed as the queue length to avoid
//! aliasing the boxed nodes. Instead of a raw tail pointer we let the tail
//! lock own the "open end" of the list: enqueue splices a new node onto the
//! tail by keeping the tail segment inside the tail lock and migrating it to
//! the head side only when the dequeuer runs dry. This preserves the
//! algorithm's key property (enqueue and dequeue use disjoint locks) without
//! any unsafe aliasing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::TaskQueue;

/// A two-lock FIFO queue: producers append to the tail segment under the
/// tail lock; consumers drain the head segment under the head lock and, when
/// it runs dry, swap the entire tail segment over in O(1).
pub struct TwoLockQueue<T> {
    /// Segment owned by dequeuers.
    head: Mutex<VecDeque<T>>,
    /// Segment owned by enqueuers.
    tail: Mutex<VecDeque<T>>,
    /// Cached element count so `len` does not need either lock.
    len: AtomicUsize,
}

impl<T> Default for TwoLockQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TwoLockQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        TwoLockQueue {
            head: Mutex::new(VecDeque::new()),
            tail: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Create an empty queue with pre-allocated capacity in both segments.
    pub fn with_capacity(capacity: usize) -> Self {
        TwoLockQueue {
            head: Mutex::new(VecDeque::with_capacity(capacity / 2)),
            tail: Mutex::new(VecDeque::with_capacity(capacity / 2)),
            len: AtomicUsize::new(0),
        }
    }

    /// Append an item at the tail. Only contends with other producers.
    pub fn enqueue(&self, item: T) {
        {
            let mut tail = self.tail.lock();
            tail.push_back(item);
        }
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Remove the item at the head, if any. Only contends with other
    /// consumers except for the O(1) segment swap when the head runs dry.
    pub fn dequeue(&self) -> Option<T> {
        let mut head = self.head.lock();
        if head.is_empty() {
            // Head segment is dry: steal the whole tail segment. Holding the
            // head lock while taking the tail lock is deadlock-free because
            // no code path acquires them in the opposite order.
            let mut tail = self.tail.lock();
            if tail.is_empty() {
                return None;
            }
            std::mem::swap(&mut *head, &mut *tail);
        }
        let item = head.pop_front();
        if item.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        item
    }

    /// Append a whole batch at the tail under one tail-lock acquisition.
    /// The batch stays contiguous, so it is dequeued in push order.
    pub fn enqueue_batch(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        {
            let mut tail = self.tail.lock();
            tail.extend(batch);
        }
        self.len.fetch_add(n, Ordering::Release);
    }

    /// Move up to `max` items from the head into `out` under one head-lock
    /// acquisition (plus the O(1) segment swap when the head runs dry).
    /// Returns the number of items moved.
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut head = self.head.lock();
        if head.is_empty() {
            let mut tail = self.tail.lock();
            if tail.is_empty() {
                return 0;
            }
            std::mem::swap(&mut *head, &mut *tail);
        }
        let take = head.len().min(max);
        out.extend(head.drain(..take));
        drop(head);
        self.len.fetch_sub(take, Ordering::Release);
        take
    }

    /// Number of queued items.
    pub fn count(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Drain every currently queued item into a `Vec` (consumer-side).
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.dequeue() {
            out.push(item);
        }
        out
    }
}

impl<T: Send> TaskQueue<T> for TwoLockQueue<T> {
    fn push(&self, item: T) {
        self.enqueue(item);
    }

    fn try_pop(&self) -> Option<T> {
        self.dequeue()
    }

    fn len(&self) -> usize {
        self.count()
    }

    fn push_batch(&self, batch: Vec<T>) {
        self.enqueue_batch(batch);
    }

    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(out, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_threaded() {
        let q = TwoLockQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let q = TwoLockQueue::new();
        assert_eq!(q.count(), 0);
        q.enqueue(1u8);
        q.enqueue(2);
        assert_eq!(q.count(), 2);
        q.dequeue();
        assert_eq!(q.count(), 1);
        q.dequeue();
        q.dequeue();
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let q = TwoLockQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drain_returns_everything_in_order() {
        let q = TwoLockQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        assert_eq!(q.drain(), (0..10).collect::<Vec<_>>());
        assert!(q.drain().is_empty());
    }

    #[test]
    fn mpmc_no_items_lost_or_duplicated() {
        let q = Arc::new(TwoLockQueue::new());
        let producers: u64 = 4;
        let per_producer = 5_000u64;
        let consumers = 3;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    q.enqueue(p * per_producer + i);
                }
            }));
        }

        let consumed: Vec<thread::JoinHandle<Vec<u64>>> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry_polls = 0;
                    while dry_polls < 10_000 {
                        match q.dequeue() {
                            Some(v) => {
                                got.push(v);
                                dry_polls = 0;
                            }
                            None => {
                                dry_polls += 1;
                                thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        for h in handles {
            h.join().unwrap();
        }
        let mut all = HashSet::new();
        let mut total = 0usize;
        for h in consumed {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "duplicate item {v}");
                total += 1;
            }
        }
        // Anything the consumers gave up on is still in the queue.
        total += q.drain().len();
        assert_eq!(total, (producers * per_producer) as usize);
    }

    #[test]
    fn per_producer_fifo_is_preserved() {
        let q = Arc::new(TwoLockQueue::new());
        let per_producer = 2_000u64;
        let producers = 3u64;

        thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per_producer {
                        q.enqueue((p, i));
                    }
                });
            }
        });

        // Single consumer: for each producer, sequence numbers must appear in
        // increasing order.
        let mut last = vec![None::<u64>; producers as usize];
        while let Some((p, i)) = q.dequeue() {
            if let Some(prev) = last[p as usize] {
                assert!(i > prev, "producer {p} reordered: {prev} then {i}");
            }
            last[p as usize] = Some(i);
        }
        for (p, seen) in last.iter().enumerate() {
            assert_eq!(seen.unwrap(), per_producer - 1, "producer {p} lost items");
        }
    }

    #[test]
    fn batch_enqueue_dequeue_preserve_order() {
        let q = TwoLockQueue::new();
        q.enqueue(0);
        q.enqueue_batch((1..=20).collect());
        q.enqueue(21);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 5), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.count(), 17);
        out.clear();
        assert_eq!(q.dequeue_batch(&mut out, 100), 17);
        assert_eq!(out, (5..=21).collect::<Vec<_>>());
        assert_eq!(q.dequeue_batch(&mut out, 4), 0);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let q = TwoLockQueue::with_capacity(64);
        q.enqueue("a");
        q.enqueue("b");
        assert_eq!(q.dequeue(), Some("a"));
        assert_eq!(q.dequeue(), Some("b"));
    }
}
