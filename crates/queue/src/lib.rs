//! # katme-queue — concurrent task queues for the KATME executor
//!
//! The paper connects producer and worker threads through per-worker task
//! queues, instantiated as `java.util.concurrent.ConcurrentLinkedQueue`
//! (the Michael & Scott concurrent queue). This crate provides the Rust
//! equivalents used by `katme-core`:
//!
//! * [`TwoLockQueue`] — Michael & Scott's *two-lock* concurrent queue
//!   (head lock and tail lock held independently, so an enqueuer never blocks
//!   a dequeuer). This is the default executor queue: the algorithm comes
//!   from the same paper as the non-blocking queue the JDK uses, and it is
//!   expressible in safe Rust.
//! * [`MutexQueue`] — a single-lock `VecDeque`, the simplest correct queue,
//!   used as the baseline in the queue micro-benchmarks.
//! * [`BoundedQueue`] — a fixed-capacity ring buffer with back-pressure,
//!   used when the harness wants to bound producer run-ahead.
//! * [`Backoff`] — a small truncated-exponential backoff helper shared by
//!   spinning consumers.
//!
//! All queues implement the [`TaskQueue`] trait so the executor can be
//! configured with any of them (and the benches can compare them).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod bounded;
pub mod mutex_queue;
pub mod two_lock;

pub use backoff::Backoff;
pub use bounded::{BoundedQueue, PushError};
pub use mutex_queue::MutexQueue;
pub use two_lock::TwoLockQueue;

/// Common interface for the executor's per-worker task queues.
///
/// Queues are multi-producer / multi-consumer: any number of producer threads
/// may [`push`](TaskQueue::push) concurrently with any number of workers
/// calling [`try_pop`](TaskQueue::try_pop). FIFO order is preserved per
/// producer (and globally for the unbounded queues, which serialize enqueues
/// on the tail).
pub trait TaskQueue<T>: Send + Sync {
    /// Append an item to the tail of the queue.
    fn push(&self, item: T);

    /// Remove and return the item at the head of the queue, or `None` when
    /// the queue is currently empty.
    fn try_pop(&self) -> Option<T>;

    /// Approximate number of queued items (exact when quiescent).
    fn len(&self) -> usize;

    /// True when the queue is (momentarily) empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which queue implementation the executor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Michael & Scott two-lock queue (default).
    #[default]
    TwoLock,
    /// Single global lock around a `VecDeque`.
    Mutex,
}

impl QueueKind {
    /// Instantiate a boxed queue of this kind.
    pub fn build<T: Send + 'static>(&self) -> Box<dyn TaskQueue<T>> {
        match self {
            QueueKind::TwoLock => Box::new(TwoLockQueue::new()),
            QueueKind::Mutex => Box::new(MutexQueue::new()),
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::TwoLock => "two-lock",
            QueueKind::Mutex => "mutex",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_kind_builds_working_queues() {
        for kind in [QueueKind::TwoLock, QueueKind::Mutex] {
            let q = kind.build::<u32>();
            assert!(q.is_empty());
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.try_pop(), Some(1));
            assert_eq!(q.try_pop(), Some(2));
            assert_eq!(q.try_pop(), None);
            assert!(!kind.name().is_empty());
        }
    }
}
