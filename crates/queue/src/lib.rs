//! # katme-queue — concurrent task queues for the KATME executor
//!
//! The paper connects producer and worker threads through per-worker task
//! queues, instantiated as `java.util.concurrent.ConcurrentLinkedQueue`
//! (the Michael & Scott concurrent queue). This crate provides the Rust
//! equivalents used by `katme-core`:
//!
//! * [`TwoLockQueue`] — Michael & Scott's *two-lock* concurrent queue
//!   (head lock and tail lock held independently, so an enqueuer never blocks
//!   a dequeuer). This is the default executor queue: the algorithm comes
//!   from the same paper as the non-blocking queue the JDK uses, and it is
//!   expressible in safe Rust.
//! * [`MutexQueue`] — a single-lock `VecDeque`, the simplest correct queue,
//!   used as the baseline in the queue micro-benchmarks.
//! * [`ShardedSegQueue`] — a sharded *segment* queue optimized for batch
//!   transfer: a batch crosses the queue as one contiguous segment under one
//!   shard lock on each side.
//! * [`BoundedQueue`] — a fixed-capacity ring buffer with back-pressure,
//!   used when the harness wants to bound producer run-ahead.
//! * [`Backoff`] — a small truncated-exponential backoff helper shared by
//!   spinning consumers.
//!
//! ## The batch API
//!
//! Every queue implements [`TaskQueue`], which since the batched dispatch
//! plane refactor is *batch-first*: [`TaskQueue::push_batch`] appends a whole
//! `Vec` of tasks and [`TaskQueue::pop_batch`] drains up to `max` tasks into
//! a caller-owned buffer. Each implementation specializes both to one lock
//! round-trip per call (the trait's default falls back to per-item
//! `push`/`try_pop` so third-party queues stay source-compatible). Two
//! guarantees hold for every implementation:
//!
//! * items of one batch are popped in push order (batches stay contiguous);
//! * per-producer FIFO order is preserved across single and batch pushes.
//!
//! The bounded queue additionally reports *partial* batch acceptance:
//! [`BoundedQueue::try_push_batch`] returns a [`PushBatchError`] that says
//! how many items were accepted and hands the remainder back so producers can
//! retry exactly the tasks that did not fit (see `PushBatchError::accepted`
//! for the never-accepted vs. partially-accepted distinction).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod bounded;
pub mod mutex_queue;
pub mod sharded;
pub mod two_lock;

pub use backoff::Backoff;
pub use bounded::{BoundedQueue, PushBatchError, PushError};
pub use mutex_queue::MutexQueue;
pub use sharded::{thread_stripe, ShardedSegQueue};
pub use two_lock::TwoLockQueue;

/// Common interface for the executor's per-worker task queues.
///
/// Queues are multi-producer / multi-consumer: any number of producer threads
/// may [`push`](TaskQueue::push) concurrently with any number of workers
/// calling [`try_pop`](TaskQueue::try_pop). FIFO order is preserved per
/// producer (and globally for the unbounded non-sharded queues, which
/// serialize enqueues on the tail). A batch pushed with
/// [`push_batch`](TaskQueue::push_batch) is always popped in push order.
pub trait TaskQueue<T>: Send + Sync {
    /// Append an item to the tail of the queue.
    fn push(&self, item: T);

    /// Remove and return the item at the head of the queue, or `None` when
    /// the queue is currently empty.
    fn try_pop(&self) -> Option<T>;

    /// Approximate number of queued items (exact when quiescent).
    fn len(&self) -> usize;

    /// True when the queue is (momentarily) empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a whole batch, preserving its internal order. Implementations
    /// specialize this to one lock round-trip; the default falls back to
    /// per-item [`push`](TaskQueue::push).
    fn push_batch(&self, batch: Vec<T>) {
        for item in batch {
            self.push(item);
        }
    }

    /// Move up to `max` items from the head into `out` (appended), returning
    /// the number moved. Implementations specialize this to one lock
    /// round-trip; the default falls back to per-item
    /// [`try_pop`](TaskQueue::try_pop).
    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut moved = 0;
        while moved < max {
            match self.try_pop() {
                Some(item) => {
                    out.push(item);
                    moved += 1;
                }
                None => break,
            }
        }
        moved
    }
}

/// Which queue implementation the executor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Michael & Scott two-lock queue (default).
    #[default]
    TwoLock,
    /// Single global lock around a `VecDeque`.
    Mutex,
    /// Sharded segment queue optimized for batch transfer.
    Sharded,
}

impl QueueKind {
    /// All queue implementations, for configuration sweeps.
    pub const ALL: [QueueKind; 3] = [QueueKind::TwoLock, QueueKind::Mutex, QueueKind::Sharded];

    /// Instantiate a boxed queue of this kind.
    pub fn build<T: Send + 'static>(&self) -> Box<dyn TaskQueue<T>> {
        match self {
            QueueKind::TwoLock => Box::new(TwoLockQueue::new()),
            QueueKind::Mutex => Box::new(MutexQueue::new()),
            QueueKind::Sharded => Box::new(ShardedSegQueue::new()),
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::TwoLock => "two-lock",
            QueueKind::Mutex => "mutex",
            QueueKind::Sharded => "sharded-seg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_kind_builds_working_queues() {
        for kind in QueueKind::ALL {
            let q = kind.build::<u32>();
            assert!(q.is_empty());
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.try_pop(), Some(1));
            assert_eq!(q.try_pop(), Some(2));
            assert_eq!(q.try_pop(), None);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn batch_fifo_is_preserved_across_all_queue_kinds() {
        for kind in QueueKind::ALL {
            let q = kind.build::<u32>();
            q.push(0);
            q.push_batch((1..=50).collect());
            q.push(51);
            q.push_batch((52..=60).collect());

            let mut out = Vec::new();
            // Drain through a mix of batch and single pops.
            assert_eq!(q.pop_batch(&mut out, 7), 7, "{}", kind.name());
            out.push(q.try_pop().unwrap());
            q.pop_batch(&mut out, usize::MAX);
            assert_eq!(out, (0..=60).collect::<Vec<_>>(), "{}", kind.name());
            assert!(q.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn bounded_queue_batch_fifo_through_the_trait() {
        let q = BoundedQueue::new(128);
        TaskQueue::push_batch(&q, (0..100u32).collect());
        let mut out = Vec::new();
        assert_eq!(TaskQueue::pop_batch(&q, &mut out, 100), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_batch_respects_max_and_reports_empty() {
        for kind in QueueKind::ALL {
            let q = kind.build::<u32>();
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(&mut out, 8), 0, "{}", kind.name());
            q.push_batch((0..20).collect());
            assert_eq!(q.pop_batch(&mut out, 8), 8, "{}", kind.name());
            assert_eq!(q.len(), 12, "{}", kind.name());
        }
    }
}
