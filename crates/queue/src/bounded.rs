//! Fixed-capacity queue with back-pressure.
//!
//! The paper notes that producers can outrun workers (for the hash-table
//! benchmark it doubles the number of producers so workers are never hungry,
//! and the overhead study in Figure 4 holds the producer count at six). When
//! the harness instead wants to *bound* producer run-ahead — e.g. to measure
//! steady-state behaviour rather than unbounded queue growth — it uses this
//! bounded ring buffer and treats a full queue as back-pressure.
//!
//! Batch submissions need more than a yes/no answer from a full queue: a
//! producer that handed over fifty tasks and got "full" back must know
//! whether *zero* or *thirty* of them were actually accepted before it can
//! retry the remainder. [`BoundedQueue::try_push_batch`] therefore reports
//! partial acceptance through [`PushBatchError`], which carries the accepted
//! count and hands back exactly the tasks that did not fit — fixing the
//! lossy all-or-nothing reporting of the single-item [`PushError`], which
//! cannot distinguish the two cases.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::TaskQueue;

/// Error returned by [`BoundedQueue::try_push`] when the queue is full.
///
/// A single-item push is all-or-nothing, so the error simply hands the item
/// back. Batch pushes use [`PushBatchError`] instead, which additionally
/// reports how much of the batch was accepted before the queue filled up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(
    /// The item that could not be enqueued, handed back to the caller.
    pub T,
);

impl<T> PushError<T> {
    /// Recover the rejected item.
    pub fn into_inner(self) -> T {
        self.0
    }
}

/// Error returned by [`BoundedQueue::try_push_batch`] when the queue filled
/// up before the whole batch was accepted.
///
/// Distinguishes "never accepted" ([`accepted`](PushBatchError::accepted)
/// `== 0`) from "partially accepted" (`accepted > 0`): the first `accepted`
/// items of the batch are now queued, and [`rejected`](PushBatchError::rejected)
/// holds the remainder in their original order, ready to be retried verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushBatchError<T> {
    /// Number of items from the front of the batch that were enqueued before
    /// the queue reached capacity.
    pub accepted: usize,
    /// The items that did not fit, in their original batch order.
    pub rejected: Vec<T>,
}

impl<T> PushBatchError<T> {
    /// True when some (but not all) of the batch was accepted.
    pub fn is_partial(&self) -> bool {
        self.accepted > 0
    }

    /// Recover the rejected remainder for a retry.
    pub fn into_rejected(self) -> Vec<T> {
        self.rejected
    }
}

impl<T> std::fmt::Display for PushBatchError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bounded queue accepted {} item(s), rejected {}",
            self.accepted,
            self.rejected.len()
        )
    }
}

/// A fixed-capacity FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue that holds at most `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attempt to enqueue, returning the item back when the queue is full.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock();
        if inner.len() >= self.capacity {
            Err(PushError(item))
        } else {
            inner.push_back(item);
            Ok(())
        }
    }

    /// Attempt to enqueue a whole batch under one lock acquisition.
    ///
    /// Accepts as many items from the front of the batch as capacity allows
    /// (preserving order); if the queue fills up mid-batch the error reports
    /// the accepted count and returns the remainder so the caller can retry
    /// exactly the tasks that were not taken.
    pub fn try_push_batch(&self, batch: Vec<T>) -> Result<usize, PushBatchError<T>> {
        let n = batch.len();
        if n == 0 {
            return Ok(0);
        }
        let mut inner = self.inner.lock();
        let space = self.capacity.saturating_sub(inner.len());
        if space >= n {
            inner.extend(batch);
            Ok(n)
        } else {
            let mut items = batch.into_iter();
            inner.extend(items.by_ref().take(space));
            drop(inner);
            Err(PushBatchError {
                accepted: space,
                rejected: items.collect(),
            })
        }
    }

    /// Enqueue, spinning/yielding until space is available.
    pub fn push_blocking(&self, mut item: T) {
        loop {
            match self.try_push(item) {
                Ok(()) => return,
                Err(PushError(back)) => {
                    item = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Enqueue a whole batch, spinning/yielding until every item is in. Each
    /// retry resubmits only the rejected remainder.
    pub fn push_batch_blocking(&self, mut batch: Vec<T>) {
        loop {
            match self.try_push_batch(batch) {
                Ok(_) => return,
                Err(err) => {
                    batch = err.into_rejected();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Remove the item at the head, if any.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Move up to `max` items from the head into `out` under one lock
    /// acquisition. Returns the number of items moved.
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut inner = self.inner.lock();
        let take = inner.len().min(max);
        out.extend(inner.drain(..take));
        take
    }

    /// Number of queued items.
    pub fn count(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when the queue holds `capacity` items.
    pub fn is_full(&self) -> bool {
        self.count() >= self.capacity
    }
}

impl<T: Send> TaskQueue<T> for BoundedQueue<T> {
    /// Pushing through the [`TaskQueue`] interface blocks (yielding) until
    /// space is available, so the executor can treat bounded and unbounded
    /// queues uniformly.
    fn push(&self, item: T) {
        self.push_blocking(item);
    }

    fn try_pop(&self) -> Option<T> {
        self.dequeue()
    }

    fn len(&self) -> usize {
        self.count()
    }

    /// Blocks (yielding) until the whole batch is in, retrying only the
    /// rejected remainder — mirroring the single-item [`TaskQueue::push`]
    /// contract.
    fn push_batch(&self, batch: Vec<T>) {
        self.push_batch_blocking(batch);
    }

    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(out, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn try_push_reports_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError(3)));
        assert_eq!(PushError(3).into_inner(), 3);
        assert!(q.is_full());
        assert_eq!(q.dequeue(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.count(), 2);
    }

    #[test]
    fn batch_push_reports_partial_acceptance() {
        let q = BoundedQueue::new(5);
        q.try_push(0).unwrap();
        let err = q.try_push_batch((1..=10).collect()).unwrap_err();
        assert!(err.is_partial());
        assert_eq!(err.accepted, 4, "four slots were free");
        assert_eq!(err.rejected, vec![5, 6, 7, 8, 9, 10]);
        assert!(err.to_string().contains("accepted 4"));
        // The accepted prefix is queued in order.
        for expect in 0..=4 {
            assert_eq!(q.dequeue(), Some(expect));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_push_distinguishes_never_accepted() {
        let q = BoundedQueue::new(2);
        q.try_push_batch(vec![1, 2]).unwrap();
        let err = q.try_push_batch(vec![3, 4]).unwrap_err();
        assert!(!err.is_partial(), "a full queue accepts nothing");
        assert_eq!(err.accepted, 0);
        assert_eq!(err.into_rejected(), vec![3, 4]);
    }

    #[test]
    fn retrying_the_rejected_remainder_loses_nothing() {
        let q = BoundedQueue::new(3);
        let mut pending: Vec<u32> = (0..10).collect();
        let mut received = Vec::new();
        while !pending.is_empty() {
            pending = match q.try_push_batch(pending) {
                Ok(_) => Vec::new(),
                Err(err) => err.into_rejected(),
            };
            while let Some(v) = q.dequeue() {
                received.push(v);
            }
        }
        assert_eq!(received, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_accepted_trivially() {
        let q = BoundedQueue::<u8>::new(1);
        assert_eq!(q.try_push_batch(Vec::new()), Ok(0));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn capacity_accessor() {
        let q = BoundedQueue::<u8>::new(7);
        assert_eq!(q.capacity(), 7);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..1_000u32 {
                    q.push_blocking(i);
                }
            })
        };
        let mut received = Vec::new();
        while received.len() < 1_000 {
            if let Some(v) = q.dequeue() {
                received.push(v);
            } else {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(received, (0..1_000u32).collect::<Vec<_>>());
        // The queue never exceeded its capacity (indirectly verified by the
        // bounded buffer: all items still arrived exactly once and in order).
        assert!(q.count() <= q.capacity());
    }

    #[test]
    fn blocking_batch_push_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(8));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for chunk in 0..40u32 {
                    q.push_batch_blocking((chunk * 25..(chunk + 1) * 25).collect());
                }
            })
        };
        let mut received = Vec::new();
        while received.len() < 1_000 {
            if q.dequeue_batch(&mut received, 16) == 0 {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(received, (0..1_000u32).collect::<Vec<_>>());
    }
}
