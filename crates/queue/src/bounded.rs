//! Fixed-capacity queue with back-pressure.
//!
//! The paper notes that producers can outrun workers (for the hash-table
//! benchmark it doubles the number of producers so workers are never hungry,
//! and the overhead study in Figure 4 holds the producer count at six). When
//! the harness instead wants to *bound* producer run-ahead — e.g. to measure
//! steady-state behaviour rather than unbounded queue growth — it uses this
//! bounded ring buffer and treats a full queue as back-pressure.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::TaskQueue;

/// Error returned by [`BoundedQueue::try_push`] when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(
    /// The item that could not be enqueued, handed back to the caller.
    pub T,
);

/// A fixed-capacity FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue that holds at most `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attempt to enqueue, returning the item back when the queue is full.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock();
        if inner.len() >= self.capacity {
            Err(PushError(item))
        } else {
            inner.push_back(item);
            Ok(())
        }
    }

    /// Enqueue, spinning/yielding until space is available.
    pub fn push_blocking(&self, mut item: T) {
        loop {
            match self.try_push(item) {
                Ok(()) => return,
                Err(PushError(back)) => {
                    item = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Remove the item at the head, if any.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued items.
    pub fn count(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when the queue holds `capacity` items.
    pub fn is_full(&self) -> bool {
        self.count() >= self.capacity
    }
}

impl<T: Send> TaskQueue<T> for BoundedQueue<T> {
    /// Pushing through the [`TaskQueue`] interface blocks (yielding) until
    /// space is available, so the executor can treat bounded and unbounded
    /// queues uniformly.
    fn push(&self, item: T) {
        self.push_blocking(item);
    }

    fn try_pop(&self) -> Option<T> {
        self.dequeue()
    }

    fn len(&self) -> usize {
        self.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn try_push_reports_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError(3)));
        assert!(q.is_full());
        assert_eq!(q.dequeue(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.count(), 2);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn capacity_accessor() {
        let q = BoundedQueue::<u8>::new(7);
        assert_eq!(q.capacity(), 7);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..1_000u32 {
                    q.push_blocking(i);
                }
            })
        };
        let mut received = Vec::new();
        while received.len() < 1_000 {
            if let Some(v) = q.dequeue() {
                received.push(v);
            } else {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(received, (0..1_000u32).collect::<Vec<_>>());
        // The queue never exceeded its capacity (indirectly verified by the
        // bounded buffer: all items still arrived exactly once and in order).
        assert!(q.count() <= q.capacity());
    }
}
