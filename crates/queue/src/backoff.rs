//! Truncated exponential backoff for spinning consumers.
//!
//! Worker threads poll their task queue; when it is empty they should not
//! burn a hardware thread spinning (particularly on the small machines the
//! test-suite runs on). `Backoff` implements the usual escalation: a few
//! busy spins, then scheduler yields, then short sleeps.

use std::time::Duration;

/// Escalating backoff helper.
///
/// Call [`Backoff::snooze`] each time an operation finds nothing to do and
/// [`Backoff::reset`] when it makes progress.
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    spin_limit: u32,
    yield_limit: u32,
    max_sleep: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

impl Backoff {
    /// Create a backoff with the default escalation schedule.
    pub fn new() -> Self {
        Backoff {
            step: 0,
            spin_limit: 6,
            yield_limit: 12,
            max_sleep: Duration::from_micros(500),
        }
    }

    /// Override the maximum sleep interval.
    pub fn with_max_sleep(mut self, max_sleep: Duration) -> Self {
        self.max_sleep = max_sleep;
        self
    }

    /// Record that progress was made; the next snooze starts from the
    /// cheapest level again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Current escalation step (diagnostics / tests).
    pub fn step(&self) -> u32 {
        self.step
    }

    /// True once the backoff has escalated past busy spinning, which is a
    /// hint to callers that blocking (e.g. parking) would now be appropriate.
    pub fn is_sleeping(&self) -> bool {
        self.step > self.yield_limit
    }

    /// Wait a little, escalating from spins to yields to sleeps.
    pub fn snooze(&mut self) {
        if self.step <= self.spin_limit {
            for _ in 0..(1u32 << self.step.min(10)) {
                std::hint::spin_loop();
            }
        } else if self.step <= self.yield_limit {
            std::thread::yield_now();
        } else {
            let exp = (self.step - self.yield_limit).min(10);
            let sleep = Duration::from_micros(1u64 << exp).min(self.max_sleep);
            std::thread::sleep(sleep);
        }
        self.step = self.step.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn escalates_and_resets() {
        let mut b = Backoff::new();
        assert_eq!(b.step(), 0);
        assert!(!b.is_sleeping());
        for _ in 0..20 {
            b.snooze();
        }
        assert!(b.is_sleeping());
        b.reset();
        assert_eq!(b.step(), 0);
        assert!(!b.is_sleeping());
    }

    #[test]
    fn sleep_is_bounded_by_max_sleep() {
        let mut b = Backoff::new().with_max_sleep(Duration::from_micros(100));
        for _ in 0..30 {
            b.snooze();
        }
        // One more snooze at the deepest level must not take dramatically
        // longer than max_sleep (allow generous slack for scheduling).
        let start = Instant::now();
        b.snooze();
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn early_snoozes_are_cheap() {
        let mut b = Backoff::new();
        let start = Instant::now();
        for _ in 0..4 {
            b.snooze();
        }
        assert!(start.elapsed() < Duration::from_millis(10));
    }
}
